"""Extensibility: plugging a different single-column model into Sato.

Section 6 of the paper highlights that Sato's architecture is modular: any
column-wise predictor can provide the CRF's unary potentials.  The paper
demonstrates this by swapping Sherlock for a fine-tuned BERT model; here we
swap in the offline learned-representation substitute
(:class:`repro.models.AttentionColumnModel`) and compare three systems:

* the feature-engineered Base model,
* the featurisation-free attention model alone, and
* the attention model combined with Sato's CRF layer (structured prediction
  over learned representations).
"""

from __future__ import annotations

from repro import (
    AttentionColumnModel,
    CorpusConfig,
    CorpusGenerator,
    SatoConfig,
    SatoModel,
    TrainingConfig,
)
from repro.corpus.splits import train_test_split
from repro.evaluation import classification_report
from repro.evaluation.cross_validation import collect_predictions
from repro.features import ColumnFeaturizer


def main() -> None:
    print("1. Generating corpus ...")
    corpus = CorpusGenerator(CorpusConfig(n_tables=300, seed=51, singleton_rate=0.2)).generate()
    multi_column = [t for t in corpus if t.n_columns > 1]
    train, test = train_test_split(multi_column, test_fraction=0.2, seed=0)

    training = TrainingConfig(n_epochs=25, learning_rate=3e-3, subnet_dim=32, hidden_dim=64)

    print("2. Training the feature-engineered Base model ...")
    base = SatoModel(
        config=SatoConfig(use_topic=False, use_struct=False, training=training),
        featurizer=ColumnFeaturizer(word_dim=24, para_dim=16),
    )
    base.fit(train)

    print("3. Training the featurisation-free attention column model ...")
    attention = AttentionColumnModel(
        embed_dim=24,
        hidden_dim=48,
        config=TrainingConfig(n_epochs=20, learning_rate=2e-3, batch_size=32),
    )
    attention.fit(train)

    print("4. Plugging the attention model into Sato's CRF layer ...")
    hybrid = SatoModel(
        config=SatoConfig(use_topic=False, use_struct=True, training=training),
        column_model=attention,
    )
    # The column model is already fitted; only the CRF layer needs training.
    hybrid.fit_structured(train)

    print("5. Held-out comparison:")
    for name, model in (("Base", base), ("LearnedRepr", attention), ("LearnedRepr+CRF", hybrid)):
        y_true, y_pred = collect_predictions(model, test)
        report = classification_report(y_true, y_pred)
        print(
            f"   {name:<16} macro F1={report.macro_f1:.3f}  "
            f"weighted F1={report.weighted_f1:.3f}"
        )


if __name__ == "__main__":
    main()
