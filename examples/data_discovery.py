"""Data discovery: semantic search over a data lake of unlabelled tables.

One of the motivating applications in the paper's introduction is data
discovery — answering "find me tables that contain company and sales
information" over a lake of CSV files whose headers are missing or cryptic.

This example builds a small "data lake" of tables with their headers removed,
annotates every column with Sato, builds an inverted index from semantic type
to columns, and answers type-based discovery queries, comparing the result
quality against the single-column Base model.
"""

from __future__ import annotations

from collections import defaultdict

from repro import CorpusConfig, CorpusGenerator, SatoModel, SatoConfig, TrainingConfig
from repro.corpus.splits import train_test_split
from repro.features import ColumnFeaturizer
from repro.models.base import ColumnModel
from repro.tables import Table


def build_model(use_topic: bool, use_struct: bool) -> SatoModel:
    """A Sato variant sized for this example."""
    config = SatoConfig(
        use_topic=use_topic,
        use_struct=use_struct,
        n_topics=20,
        training=TrainingConfig(n_epochs=25, learning_rate=3e-3, subnet_dim=32, hidden_dim=64),
        crf_epochs=5,
    )
    model = SatoModel(config=config, featurizer=ColumnFeaturizer(word_dim=24, para_dim=16))
    if use_topic:
        model.column_model.intent_estimator.lda.n_iterations = 12
        model.column_model.intent_estimator.lda.infer_iterations = 12
    return model


def annotate_lake(model: ColumnModel, lake: list[Table]) -> dict[str, list[tuple[str, int]]]:
    """Predict types for every column and build a type -> column index."""
    index: dict[str, list[tuple[str, int]]] = defaultdict(list)
    for table in lake:
        stripped = table.without_headers()  # headers are unavailable in the lake
        for position, predicted in enumerate(model.predict_table(stripped)):
            index[predicted].append((table.table_id or "?", position))
    return index


def evaluate_query(
    index: dict[str, list[tuple[str, int]]],
    lake: list[Table],
    wanted_types: set[str],
) -> tuple[float, float]:
    """Precision / recall of retrieving columns whose true type is wanted."""
    retrieved = {
        (table_id, position)
        for wanted in wanted_types
        for table_id, position in index.get(wanted, [])
    }
    relevant = {
        (table.table_id or "?", position)
        for table in lake
        for position, column in enumerate(table.columns)
        if column.semantic_type in wanted_types
    }
    if not retrieved or not relevant:
        return 0.0, 0.0
    hits = len(retrieved & relevant)
    return hits / len(retrieved), hits / len(relevant)


def main() -> None:
    print("1. Building the data lake (labels kept only for evaluation) ...")
    corpus = CorpusGenerator(CorpusConfig(n_tables=400, seed=29, singleton_rate=0.2)).generate()
    multi_column = [t for t in corpus if t.n_columns > 1]
    train, lake = train_test_split(multi_column, test_fraction=0.25, seed=1)
    print(f"   {len(train)} training tables, {len(lake)} tables in the lake")

    queries = {
        "business intelligence": {"company", "sales", "symbol"},
        "people search": {"name", "birthPlace", "nationality"},
        "geographic join keys": {"city", "state", "country"},
    }

    for name, use_topic, use_struct in (("Base", False, False), ("Sato", True, True)):
        print(f"2. Training the {name} annotator ...")
        model = build_model(use_topic, use_struct)
        model.fit(train)
        index = annotate_lake(model, lake)
        print(f"3. Discovery queries answered by {name}:")
        for query, wanted in queries.items():
            precision, recall = evaluate_query(index, lake, wanted)
            print(
                f"   {query:<24} types={sorted(wanted)}  "
                f"precision={precision:.2f}  recall={recall:.2f}"
            )


if __name__ == "__main__":
    main()
