"""Data cleaning: type-driven validation of dirty tables.

Automated data cleaning (Wrangler / Potter's Wheel style) depends on knowing
the semantic type of each column: once a column is known to be an ``age`` or
an ``isbn``, type-specific validation rules can flag cells that do not
conform.  This example trains Sato, predicts types for dirty tables whose
headers have been lost, and applies per-type validation rules to surface
suspicious cells.
"""

from __future__ import annotations

import re
from typing import Callable

from repro import CorpusConfig, CorpusGenerator, SatoConfig, SatoModel, TrainingConfig
from repro.corpus.config import NoiseConfig
from repro.corpus.splits import train_test_split
from repro.features import ColumnFeaturizer
from repro.tables import Table

#: Type-specific cell validators: return True when the cell looks valid.
VALIDATORS: dict[str, Callable[[str], bool]] = {
    "age": lambda v: v.strip().isdigit() and 0 < int(v) < 130,
    "year": lambda v: v.strip().isdigit() and 1000 <= int(v) <= 2100,
    "isbn": lambda v: bool(re.fullmatch(r"[\d-]{9,17}", v.strip())),
    "sex": lambda v: v.strip().lower() in {"m", "f", "male", "female"},
    "gender": lambda v: v.strip().lower() in {"m", "f", "male", "female", "non-binary", "other"},
    "currency": lambda v: bool(re.fullmatch(r"[A-Z]{3}", v.strip())),
    "symbol": lambda v: bool(re.fullmatch(r"[A-Z]{1,5}", v.strip())),
    "day": lambda v: v.strip().capitalize()[:3] in {
        "Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"
    } or (v.strip().isdigit() and 1 <= int(v) <= 31),
    "weight": lambda v: bool(re.search(r"\d", v)),
    "duration": lambda v: bool(re.search(r"\d", v)),
    "fileSize": lambda v: bool(re.search(r"\d", v)),
}


def build_model() -> SatoModel:
    """A Sato model sized for this example."""
    config = SatoConfig(
        use_topic=True,
        use_struct=True,
        n_topics=20,
        training=TrainingConfig(n_epochs=25, learning_rate=3e-3, subnet_dim=32, hidden_dim=64),
        crf_epochs=5,
    )
    model = SatoModel(config=config, featurizer=ColumnFeaturizer(word_dim=24, para_dim=16))
    model.column_model.intent_estimator.lda.n_iterations = 12
    model.column_model.intent_estimator.lda.infer_iterations = 12
    return model


def validate_table(table: Table, predicted_types: list[str]) -> list[tuple[int, int, str, str]]:
    """Return (column, row, predicted_type, value) for every suspicious cell."""
    problems = []
    for column_index, (column, semantic_type) in enumerate(zip(table.columns, predicted_types)):
        validator = VALIDATORS.get(semantic_type)
        if validator is None:
            continue
        for row_index, value in enumerate(column.values):
            if not value.strip():
                problems.append((column_index, row_index, semantic_type, "<missing>"))
            elif not validator(value):
                problems.append((column_index, row_index, semantic_type, value))
    return problems


def main() -> None:
    print("1. Generating training data and very dirty evaluation tables ...")
    clean_config = CorpusConfig(n_tables=350, seed=37, singleton_rate=0.2)
    corpus = CorpusGenerator(clean_config).generate()
    multi_column = [t for t in corpus if t.n_columns > 1]
    train, _ = train_test_split(multi_column, test_fraction=0.1, seed=0)

    dirty_config = CorpusConfig(
        n_tables=25,
        seed=99,
        singleton_rate=0.0,
        noise=NoiseConfig(
            missing_cell_rate=0.12, typo_rate=0.1, case_noise_rate=0.15, whitespace_rate=0.1
        ),
    )
    dirty_tables = CorpusGenerator(dirty_config).generate()

    print("2. Training Sato ...")
    model = build_model()
    model.fit(train)

    print("3. Annotating dirty tables and applying type-driven validators ...")
    total_flagged = 0
    for table in dirty_tables[:8]:
        stripped = table.without_headers()
        predictions = model.predict_table(stripped)
        problems = validate_table(table, predictions)
        total_flagged += len(problems)
        print(f"   table {table.table_id} predicted as {predictions}")
        for column_index, row_index, semantic_type, value in problems[:4]:
            print(
                f"      suspicious cell at column {column_index}, row {row_index} "
                f"({semantic_type}): {value!r}"
            )
    print(f"   flagged {total_flagged} suspicious cells in total")


if __name__ == "__main__":
    main()
