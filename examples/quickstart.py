"""Quickstart: train Sato on a synthetic WebTables corpus and annotate a table.

Run with::

    python examples/quickstart.py

The script generates a small corpus, trains the full Sato model (topic-aware
column model + linear-chain CRF), evaluates it on held-out tables, and then
predicts the semantic types of the two motivating tables from Figure 1 of the
paper — two tables sharing an identical city-name column whose correct types
(``birthPlace`` vs ``city``) can only be resolved from table context.
"""

from __future__ import annotations

from repro import (
    Column,
    CorpusConfig,
    CorpusGenerator,
    SatoConfig,
    SatoModel,
    Table,
    TrainingConfig,
)
from repro.corpus.splits import train_test_split
from repro.evaluation import classification_report
from repro.evaluation.cross_validation import collect_predictions
from repro.features import ColumnFeaturizer


def build_model() -> SatoModel:
    """A moderately sized Sato model that trains in well under a minute."""
    config = SatoConfig(
        use_topic=True,
        use_struct=True,
        n_topics=24,
        training=TrainingConfig(n_epochs=30, learning_rate=3e-3, subnet_dim=32, hidden_dim=64),
        crf_epochs=6,
    )
    model = SatoModel(config=config, featurizer=ColumnFeaturizer(word_dim=24, para_dim=16))
    model.column_model.intent_estimator.lda.n_iterations = 15
    model.column_model.intent_estimator.lda.infer_iterations = 16
    return model


def figure1_tables() -> tuple[Table, Table]:
    """The two ambiguous tables from Figure 1 of the paper."""
    influential_people = Table(
        columns=[
            Column(values=["Ada Lovelace", "Frederic Chopin", "Alan Turing", "Carl Gauss"]),
            Column(values=["1815-12-10", "1810-03-01", "1912-06-23", "1777-04-30"]),
            Column(values=["Florence", "Warsaw", "London", "Braunschweig"]),
        ],
        table_id="influential-people",
    )
    european_cities = Table(
        columns=[
            Column(values=["Florence", "Warsaw", "London", "Braunschweig"]),
            Column(values=["Italy", "Poland", "United Kingdom", "Germany"]),
            Column(values=["Europe", "Europe", "Europe", "Europe"]),
        ],
        table_id="european-cities",
    )
    return influential_people, european_cities


def main() -> None:
    print("1. Generating a synthetic WebTables-style corpus ...")
    corpus = CorpusGenerator(
        CorpusConfig(n_tables=400, seed=11, singleton_rate=0.2)
    ).generate()
    multi_column = [t for t in corpus if t.n_columns > 1]
    train, test = train_test_split(multi_column, test_fraction=0.2, seed=0)
    print(f"   {len(corpus)} tables generated ({len(train)} train / {len(test)} test multi-column)")

    print("2. Training the full Sato model (topic-aware + CRF) ...")
    model = build_model()
    model.fit(train)

    print("3. Evaluating on held-out tables ...")
    y_true, y_pred = collect_predictions(model, test)
    report = classification_report(y_true, y_pred)
    print(f"   macro F1    = {report.macro_f1:.3f}")
    print(f"   weighted F1 = {report.weighted_f1:.3f}")
    print(f"   accuracy    = {report.accuracy:.3f} over {report.n_samples} columns")

    print("4. Annotating the two Figure 1 tables ...")
    for table in figure1_tables():
        predictions = model.predict_table(table)
        print(f"   {table.table_id}:")
        for column, predicted in zip(table.columns, predictions):
            preview = ", ".join(column.head(3))
            print(f"      [{preview}, ...] -> {predicted}")


if __name__ == "__main__":
    main()
