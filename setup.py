"""Setuptools shim.

The offline environment has no ``wheel`` package, so PEP 517 editable
installs (``pip install -e .``) cannot build an editable wheel.  This shim
lets ``python setup.py develop`` perform the equivalent legacy editable
install; all project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
