"""Tests for the linear-chain CRF: exact inference checked against brute force."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.crf import CRFTrainer, CRFTrainingExample, LinearChainCRF


def brute_force_log_partition(crf: LinearChainCRF, unary: np.ndarray) -> float:
    scores = []
    m = unary.shape[0]
    for labels in itertools.product(range(crf.n_states), repeat=m):
        scores.append(crf.score(unary, np.array(labels)))
    return float(np.logaddexp.reduce(scores))


def brute_force_viterbi(crf: LinearChainCRF, unary: np.ndarray) -> np.ndarray:
    best_score, best_labels = -np.inf, None
    m = unary.shape[0]
    for labels in itertools.product(range(crf.n_states), repeat=m):
        score = crf.score(unary, np.array(labels))
        if score > best_score:
            best_score, best_labels = score, np.array(labels)
    return best_labels


def random_crf(n_states, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return LinearChainCRF(n_states, pairwise=rng.normal(scale=scale, size=(n_states, n_states)))


class TestConstruction:
    def test_invalid_states(self):
        with pytest.raises(ValueError):
            LinearChainCRF(0)

    def test_wrong_pairwise_shape(self):
        with pytest.raises(ValueError):
            LinearChainCRF(3, pairwise=np.zeros((2, 2)))

    def test_unary_shape_checked(self):
        crf = LinearChainCRF(3)
        with pytest.raises(ValueError):
            crf.log_partition(np.zeros((2, 4)))

    def test_from_cooccurrence(self):
        cooccurrence = np.array([[0.0, 10.0], [10.0, 2.0]])
        crf = LinearChainCRF.from_cooccurrence(cooccurrence)
        assert crf.pairwise[0, 1] > crf.pairwise[0, 0]


class TestExactInference:
    @settings(max_examples=25, deadline=None)
    @given(
        n_states=st.integers(min_value=2, max_value=4),
        length=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_partition_matches_brute_force(self, n_states, length, seed):
        crf = random_crf(n_states, seed)
        unary = np.random.default_rng(seed + 1).normal(size=(length, n_states))
        assert crf.log_partition(unary) == pytest.approx(
            brute_force_log_partition(crf, unary), rel=1e-9, abs=1e-9
        )

    @settings(max_examples=25, deadline=None)
    @given(
        n_states=st.integers(min_value=2, max_value=4),
        length=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_viterbi_matches_brute_force(self, n_states, length, seed):
        crf = random_crf(n_states, seed)
        unary = np.random.default_rng(seed + 2).normal(size=(length, n_states))
        expected = brute_force_viterbi(crf, unary)
        observed = crf.viterbi(unary)
        assert crf.score(unary, observed) == pytest.approx(crf.score(unary, expected))

    def test_forward_backward_consistency(self):
        crf = random_crf(5, seed=3)
        unary = np.random.default_rng(4).normal(size=(6, 5))
        alpha, beta, log_z = crf.forward_backward(unary)
        # Every position must reproduce the same log-partition.
        from scipy.special import logsumexp

        for i in range(unary.shape[0]):
            assert logsumexp(alpha[i] + beta[i]) == pytest.approx(log_z)

    def test_marginals_sum_to_one(self):
        crf = random_crf(4, seed=5)
        unary = np.random.default_rng(6).normal(size=(5, 4))
        marginals = crf.marginals(unary)
        assert marginals.shape == (5, 4)
        assert np.allclose(marginals.sum(axis=1), 1.0)
        assert np.all(marginals >= 0)

    def test_pairwise_marginals_consistent_with_unary_marginals(self):
        crf = random_crf(3, seed=7)
        unary = np.random.default_rng(8).normal(size=(4, 3))
        marginals = crf.marginals(unary)
        pairwise = crf.pairwise_marginals(unary)
        assert pairwise.shape == (3, 3, 3)
        assert np.allclose(pairwise.sum(axis=(1, 2)), 1.0)
        # Marginalising the pairwise distribution must recover the unaries.
        assert np.allclose(pairwise[0].sum(axis=1), marginals[0], atol=1e-9)
        assert np.allclose(pairwise[0].sum(axis=0), marginals[1], atol=1e-9)

    def test_log_likelihood_is_negative_log_probability(self):
        crf = random_crf(3, seed=9)
        unary = np.random.default_rng(10).normal(size=(3, 3))
        total = 0.0
        for labels in itertools.product(range(3), repeat=3):
            total += np.exp(crf.log_likelihood(unary, np.array(labels)))
        assert total == pytest.approx(1.0, rel=1e-9)

    def test_single_column_table(self):
        crf = random_crf(4, seed=11)
        unary = np.array([[0.1, 2.0, -1.0, 0.3]])
        assert crf.viterbi(unary).tolist() == [1]
        assert crf.log_partition(unary) == pytest.approx(
            float(np.logaddexp.reduce(unary[0]))
        )

    def test_empty_sequence_viterbi(self):
        crf = LinearChainCRF(3)
        assert crf.viterbi(np.zeros((0, 3))).size == 0

    def test_strong_pairwise_changes_decoding(self):
        # Unary prefers (0, 0); a strong pairwise coupling prefers (0, 1).
        unary = np.array([[2.0, 0.0], [0.5, 0.0]])
        weak = LinearChainCRF(2)
        assert weak.viterbi(unary).tolist() == [0, 0]
        strong = LinearChainCRF(2, pairwise=np.array([[0.0, 5.0], [0.0, 0.0]]))
        assert strong.viterbi(unary).tolist() == [0, 1]


class TestGradients:
    def test_gradient_matches_numerical(self):
        crf = random_crf(3, seed=12, scale=0.5)
        unary = np.random.default_rng(13).normal(size=(4, 3))
        labels = np.array([0, 2, 1, 0])
        analytic = crf.gradients(unary, labels)
        numeric = np.zeros_like(crf.pairwise)
        eps = 1e-6
        for i in range(3):
            for j in range(3):
                original = crf.pairwise[i, j]
                crf.pairwise[i, j] = original + eps
                upper = crf.log_likelihood(unary, labels)
                crf.pairwise[i, j] = original - eps
                lower = crf.log_likelihood(unary, labels)
                crf.pairwise[i, j] = original
                numeric[i, j] = (upper - lower) / (2 * eps)
        assert np.abs(analytic - numeric).max() < 1e-5

    def test_state_dict_round_trip(self):
        crf = random_crf(4, seed=14)
        clone = LinearChainCRF(4)
        clone.load_state_dict(crf.state_dict())
        assert np.allclose(clone.pairwise, crf.pairwise)
        assert clone.unary_weight == crf.unary_weight


class TestTrainer:
    def _make_examples(self, n=30, seed=0):
        """Tables where type 1 always follows type 0 and unaries are weak."""
        rng = np.random.default_rng(seed)
        examples = []
        for _ in range(n):
            labels = np.array([0, 1, 0, 1])
            unary = rng.normal(scale=0.1, size=(4, 3))
            examples.append(CRFTrainingExample(unary=unary, labels=labels))
        return examples

    def test_training_increases_log_likelihood(self):
        examples = self._make_examples()
        crf = LinearChainCRF(3)
        before = np.mean([crf.log_likelihood(e.unary, e.labels) for e in examples])
        CRFTrainer(crf, n_epochs=10, learning_rate=0.1).fit(examples)
        after = np.mean([crf.log_likelihood(e.unary, e.labels) for e in examples])
        assert after > before

    def test_training_learns_transition_structure(self):
        examples = self._make_examples()
        crf = LinearChainCRF(3)
        CRFTrainer(crf, n_epochs=20, learning_rate=0.2).fit(examples)
        assert crf.pairwise[0, 1] > crf.pairwise[0, 2]
        assert crf.pairwise[1, 0] > crf.pairwise[2, 0]

    def test_empty_examples_noop(self):
        crf = LinearChainCRF(3)
        original = crf.pairwise.copy()
        CRFTrainer(crf, n_epochs=3).fit([])
        assert np.allclose(crf.pairwise, original)

    def test_history_recorded(self):
        trainer = CRFTrainer(LinearChainCRF(3), n_epochs=4)
        trainer.fit(self._make_examples(n=5))
        assert len(trainer.history) == 4
