"""Tests for the per-type value generators."""

import numpy as np
import pytest

from repro.corpus import generators, vocab
from repro.types import SEMANTIC_TYPES


class TestCoverage:
    def test_every_type_has_a_generator(self):
        assert generators.missing_generators() == []

    def test_no_extra_generators(self):
        assert set(generators.VALUE_GENERATORS) == set(SEMANTIC_TYPES)


@pytest.mark.parametrize("semantic_type", SEMANTIC_TYPES)
def test_generator_produces_nonempty_strings(semantic_type):
    rng = np.random.default_rng(1)
    for _ in range(5):
        value = generators.generate_value(semantic_type, rng, {})
        assert isinstance(value, str)
        assert value.strip()


def test_unknown_type_raises():
    rng = np.random.default_rng(0)
    with pytest.raises(KeyError):
        generators.generate_value("population", rng)


class TestDeterminism:
    def test_same_seed_same_values(self):
        a = [
            generators.generate_value("city", np.random.default_rng(7), {})
            for _ in range(10)
        ]
        b = [
            generators.generate_value("city", np.random.default_rng(7), {})
            for _ in range(10)
        ]
        assert a == b


class TestEntities:
    def test_person_fields(self):
        person = generators.make_person(np.random.default_rng(3))
        assert person["full"] == f"{person['first']} {person['last']}"
        assert 1900 <= person["birth_year"] < 2005
        assert person["birth_city"] in vocab.CITY_INFO
        assert person["age"] >= 16

    def test_place_consistency(self):
        place = generators.make_place(np.random.default_rng(3))
        info = vocab.CITY_INFO[place["city"]]
        assert place["country"] == info[0]
        assert place["continent"] == info[2]

    def test_shared_context_keeps_row_coherent(self):
        rng = np.random.default_rng(11)
        context = {"person": generators.make_person(rng)}
        name = generators.generate_value("name", rng, context)
        age = generators.generate_value("age", rng, context)
        assert name == context["person"]["full"]
        assert int(age) == context["person"]["age"]

    def test_place_context_links_city_and_country(self):
        rng = np.random.default_rng(11)
        context = {"place": generators.make_place(rng)}
        city = generators.generate_value("city", rng, context)
        country = generators.generate_value("country", rng, context)
        assert city == context["place"]["city"]
        assert country == vocab.CITY_INFO[city][0]


class TestAmbiguity:
    """The shared vocabularies that make single-column prediction ambiguous."""

    def test_city_and_birthplace_share_values(self):
        rng = np.random.default_rng(0)
        cities = {generators.generate_value("city", rng, {}) for _ in range(200)}
        birthplaces = {
            generators.generate_value("birthPlace", rng, {}) for _ in range(200)
        }
        assert cities & birthplaces

    def test_name_and_person_share_values_structure(self):
        rng = np.random.default_rng(0)
        names = [generators.generate_value("name", rng, {}) for _ in range(50)]
        persons = [generators.generate_value("person", rng, {}) for _ in range(50)]
        # Both are "First Last" strings drawn from the same vocabularies.
        assert all(len(n.split()) == 2 for n in names)
        assert all(len(p.split()) == 2 for p in persons)

    def test_year_is_numeric_string(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            year = int(generators.generate_value("year", rng, {}))
            assert 1900 <= year <= 2020

    def test_isbn_contains_digits(self):
        rng = np.random.default_rng(0)
        value = generators.generate_value("isbn", rng, {})
        assert any(ch.isdigit() for ch in value)
