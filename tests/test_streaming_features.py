"""Streaming featurization parity: chunked == full-scan, bit for bit.

The streaming path (``fit_stream`` / ``transform_stream`` /
``finalize_columns``) must be *bit-identical* to the in-memory full-scan
loop oracle — not merely close.  The accumulators hold exact sufficient
statistics (integer counts, token prefixes by row position) and all
float-weighted reductions go through ``math.fsum``, so equality holds for
every chunking and every merge order.  These tests enforce that contract
over all shipped corpus-spec hard-case suites at chunk sizes
{1, 7, 1000, whole-table}.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.corpus.suites import available_suites, build_suite
from repro.features import ColumnAccumulator, TokenAccumulator
from repro.tables import Column, Table, stream_tables, table_stream

from helpers import tiny_featurizer

#: 1 = worst-case chunking, 7 = ragged (never divides row counts evenly),
#: 1000 = larger than every suite table, None = whole table in one chunk.
CHUNK_SIZES = (1, 7, 1000, None)


def _suite_tables(name: str, limit: int = 6) -> list[Table]:
    return list(build_suite(name, "tiny").tables)[:limit]


@pytest.fixture(scope="module")
def loop_featurizer(fitted_featurizer):
    return fitted_featurizer.runtime_clone(backend="loop")


class TestTransformStreamParity:
    @pytest.mark.parametrize("suite_name", sorted(available_suites()))
    def test_bit_identical_across_chunk_sizes(self, suite_name, loop_featurizer):
        for table in _suite_tables(suite_name):
            oracle = loop_featurizer.transform_table(table)
            for chunk_rows in CHUNK_SIZES:
                streamed = loop_featurizer.transform_stream(
                    table_stream(table, chunk_rows)
                )
                np.testing.assert_array_equal(
                    streamed, oracle, err_msg=f"{suite_name} chunk={chunk_rows}"
                )

    def test_hard_case_fixture_tables(self, hard_case_tables, loop_featurizer):
        for table in hard_case_tables:
            oracle = loop_featurizer.transform_table(table)
            streamed = loop_featurizer.transform_stream(table.as_stream(3))
            np.testing.assert_array_equal(streamed, oracle)

    def test_edge_case_tables(self, loop_featurizer):
        """Empty, all-missing, whitespace-only and ragged columns."""
        tables = [
            Table(columns=(Column(values=(), header="empty"),)),
            Table(columns=(Column(values=("", "  ", "\t"), header="blank"),)),
            Table(
                columns=(
                    Column(values=("a", "b", "c", "d", "e"), header="long"),
                    Column(values=("1",), header="short"),
                )
            ),
        ]
        for table in tables:
            oracle = loop_featurizer.transform_table(table)
            for chunk_rows in (1, 2, None):
                streamed = loop_featurizer.transform_stream(
                    table.as_stream(chunk_rows)
                )
                np.testing.assert_array_equal(streamed, oracle)

    def test_vectorized_backend_still_matches_streamed_oracle(
        self, fitted_featurizer, loop_featurizer, hard_case_tables
    ):
        """The fast backend's contract (allclose to the oracle) survives."""
        for table in hard_case_tables[:4]:
            streamed = loop_featurizer.transform_stream(table.as_stream(5))
            fast = fitted_featurizer.transform_table(table)
            np.testing.assert_allclose(fast, streamed, rtol=1e-6, atol=1e-8)


class TestMergeOrderInvariance:
    @pytest.mark.parametrize("seed", range(3))
    def test_shuffled_merge_is_bit_identical(self, seed, loop_featurizer):
        rng = random.Random(seed)
        for table in _suite_tables("dirty_columns", limit=4):
            oracle = loop_featurizer.transform_table(table)
            chunks = list(table.iter_chunks(3))
            merged_columns = []
            for j in range(table.n_columns):
                parts = []
                for chunk in chunks:
                    accumulator = loop_featurizer.column_accumulator()
                    accumulator.partial_fit(
                        chunk.columns[j],
                        start_row=chunk.start_row,
                        row_span=chunk.n_rows,
                    )
                    parts.append(accumulator)
                rng.shuffle(parts)
                merged = parts[0]
                for other in parts[1:]:
                    merged.merge(other)
                merged_columns.append(merged)
            streamed = loop_featurizer.finalize_columns(merged_columns)
            np.testing.assert_array_equal(streamed, oracle)

    def test_merge_preserves_token_prefix_order(self):
        """Row position, not merge order, decides the capped token prefix."""
        values = [f"tok{i}" for i in range(10)]
        forward = TokenAccumulator(max_tokens=6)
        forward.partial_fit(values)
        shuffled = TokenAccumulator(max_tokens=6)
        for start in (8, 4, 0, 6, 2):
            shuffled.merge(
                TokenAccumulator(max_tokens=6).partial_fit(
                    values[start : start + 2], start_row=start
                )
            )
        assert shuffled.tokens() == forward.tokens()
        assert len(shuffled.tokens()) == 6


class TestFitStreamParity:
    @pytest.mark.parametrize("chunk_rows", (1, 7, None))
    def test_fit_stream_state_bit_identical_to_fit(self, chunk_rows):
        tables = _suite_tables("dirty_columns", limit=10)
        full = tiny_featurizer().fit(tables)
        streamed = tiny_featurizer()
        streamed.fit_stream(stream_tables(tables, chunk_rows))
        full_state = full.state_dict()
        streamed_state = streamed.state_dict()
        assert full_state.keys() == streamed_state.keys()
        for key in full_state:
            np.testing.assert_array_equal(
                full_state[key], streamed_state[key], err_msg=key
            )

    def test_fit_stream_marks_fitted_and_transforms(self):
        tables = _suite_tables("clean_baseline", limit=6)
        featurizer = tiny_featurizer()
        assert not featurizer.is_fitted
        featurizer.fit_stream(stream_tables(tables, 4))
        assert featurizer.is_fitted
        matrix = featurizer.transform_table(tables[0])
        assert matrix.shape == (tables[0].n_columns, featurizer.n_features)


class TestAccumulatorUnits:
    def test_token_accumulator_cap(self):
        accumulator = TokenAccumulator(max_tokens=3)
        accumulator.partial_fit(["a b", "c d", "e f"])
        assert accumulator.tokens() == ["a", "b", "c"]

    def test_token_accumulator_overlap_raises(self):
        accumulator = TokenAccumulator(max_tokens=10)
        accumulator.partial_fit(["a", "b"], start_row=0)
        with pytest.raises(ValueError):
            accumulator.partial_fit(["c"], start_row=1)

    def test_token_accumulator_row_span_shorter_than_values_raises(self):
        accumulator = TokenAccumulator(max_tokens=10)
        with pytest.raises(ValueError):
            accumulator.partial_fit(["a", "b", "c"], start_row=0, row_span=2)

    def test_token_accumulator_ragged_row_span(self):
        """A short column inside a wider chunk still lines up by row."""
        accumulator = TokenAccumulator(max_tokens=10)
        accumulator.partial_fit(["a"], start_row=0, row_span=4)
        accumulator.partial_fit(["b"], start_row=4, row_span=4)
        assert accumulator.tokens() == ["a", "b"]

    def test_token_accumulator_merge_cap_mismatch_raises(self):
        with pytest.raises(ValueError):
            TokenAccumulator(max_tokens=3).merge(TokenAccumulator(max_tokens=4))

    def test_column_accumulator_matches_whole_column(self, loop_featurizer):
        values = ["Oslo", "", "  ", "Bergen 42", "café", "$1,200.50"]
        whole = ColumnAccumulator(max_tokens=64)
        whole.partial_fit(values)
        piecewise = ColumnAccumulator(max_tokens=64)
        for start in range(0, len(values), 2):
            piecewise.partial_fit(values[start : start + 2], start_row=start)
        np.testing.assert_array_equal(
            loop_featurizer._raw_from_accumulator(piecewise),
            loop_featurizer._raw_from_accumulator(whole),
        )

    def test_column_accumulator_smaller_cap_than_featurizer_raises(
        self, loop_featurizer
    ):
        with pytest.raises(ValueError):
            loop_featurizer.column_accumulator(max_tokens=1)

    def test_finalize_columns_requires_fitted(self):
        featurizer = tiny_featurizer()
        accumulator = ColumnAccumulator(max_tokens=64)
        accumulator.partial_fit(["x"])
        with pytest.raises(RuntimeError):
            featurizer.finalize_columns([accumulator])
