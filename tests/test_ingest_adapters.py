"""Ingestion adapter fidelity and failure modes.

Every adapter must round-trip a known :class:`~repro.tables.Table`
(``write_fixture`` -> ``streams`` -> ``materialize``) value-exact, and
every malformed input must surface a clear :class:`IngestError` naming
the offending file — never a raw traceback from ``csv``/``json``/
``sqlite3``.
"""

from __future__ import annotations

import sqlite3
import unicodedata

import pytest

from repro.ingest import (
    IngestError,
    adapter_for,
    discover_sources,
    open_source,
    registered_adapters,
)
from repro.tables import Column, Table

#: NFD-normalised "café" — the combining acute must survive byte-for-byte.
NFD_CAFE = unicodedata.normalize("NFD", "café")

ROUND_TRIP_ADAPTERS = ["csv", "ndjson", "sqlite", "tables-jsonl"]

SUFFIX_FOR = {
    "csv": ".csv",
    "ndjson": ".ndjson",
    "sqlite": ".sqlite",
    "tables-jsonl": ".jsonl",
}


def tricky_table() -> Table:
    """Rectangular table stressing quoting, unicode and numeric text."""
    return Table(
        columns=(
            Column(
                values=('say "hi"', "a,b", "line1\nline2", NFD_CAFE),
                header="text",
            ),
            Column(values=("1", "-2.5", "1,200", ""), header="amount"),
            Column(values=("東京", "Zürich", "מוסקבה", "Oslo"), header="city"),
        )
    )


class TestRegistry:
    def test_all_adapters_registered(self):
        assert sorted(registered_adapters()) == [
            "csv",
            "ndjson",
            "parquet",
            "sqlite",
            "tables-jsonl",
        ]

    def test_adapter_for_unknown_format(self, tmp_path):
        with pytest.raises(IngestError, match="unknown format"):
            adapter_for(tmp_path / "x.csv", format="nope")

    def test_adapter_for_unknown_suffix(self, tmp_path):
        path = tmp_path / "data.xyz"
        path.write_text("x")
        with pytest.raises(IngestError, match=r"\.xyz"):
            adapter_for(path)


class TestRoundTrip:
    @pytest.mark.parametrize("name", ROUND_TRIP_ADAPTERS)
    def test_values_and_headers_survive(self, name, tmp_path):
        adapter = registered_adapters()[name]
        table = tricky_table()
        path = adapter.write_fixture(table, tmp_path / f"fixture{SUFFIX_FOR[name]}")
        streams = list(adapter.streams(path, chunk_rows=2))
        assert len(streams) == 1
        restored = streams[0].materialize()
        assert [c.header for c in restored.columns] == ["text", "amount", "city"]
        for original, loaded in zip(table.columns, restored.columns):
            assert tuple(loaded.values) == tuple(original.values)

    @pytest.mark.parametrize("name", ROUND_TRIP_ADAPTERS)
    def test_chunking_never_changes_values(self, name, tmp_path):
        adapter = registered_adapters()[name]
        path = adapter.write_fixture(
            tricky_table(), tmp_path / f"fixture{SUFFIX_FOR[name]}"
        )
        whole = next(iter(adapter.streams(path, chunk_rows=1000))).materialize()
        tiny = next(iter(adapter.streams(path, chunk_rows=1))).materialize()
        for a, b in zip(whole.columns, tiny.columns):
            assert tuple(a.values) == tuple(b.values)


class TestCsv:
    def test_bom_is_stripped_from_first_header(self, tmp_path):
        path = tmp_path / "bom.csv"
        path.write_bytes("﻿city,pop\noslo,7\n".encode("utf-8"))
        stream = next(iter(open_source(path, chunk_rows=10)))
        assert stream.headers == ("city", "pop")
        assert tuple(stream.materialize().columns[0].values) == ("oslo",)

    def test_nfd_unicode_codepoints_preserved(self, tmp_path):
        path = tmp_path / "nfd.csv"
        path.write_text(f"name\n{NFD_CAFE}\n", encoding="utf-8")
        value = next(iter(open_source(path, 10))).materialize().columns[0].values[0]
        assert value == NFD_CAFE
        assert "́" in value  # still decomposed, not silently NFC'd

    def test_short_rows_padded(self, tmp_path):
        path = tmp_path / "short.csv"
        path.write_text("a,b\n1\n2,3\n", encoding="utf-8")
        table = next(iter(open_source(path, 10))).materialize()
        assert tuple(table.columns[1].values) == ("", "3")

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("", encoding="utf-8")
        with pytest.raises(IngestError, match="empty CSV"):
            list(open_source(path, 10))

    def test_overwide_row_raises_with_line_number(self, tmp_path):
        path = tmp_path / "wide.csv"
        path.write_text("a,b\n1,2\n1,2,3\n", encoding="utf-8")
        with pytest.raises(IngestError, match="line 3"):
            next(iter(open_source(path, 10))).materialize()

    def test_non_utf8_bytes_raise_ingest_error(self, tmp_path):
        path = tmp_path / "latin.csv"
        path.write_bytes(b"name\n\xff\xfe\n")
        with pytest.raises(IngestError, match="latin.csv"):
            next(iter(open_source(path, 10))).materialize()


class TestNdjson:
    def test_nulls_missing_and_scalars(self, tmp_path):
        path = tmp_path / "rows.ndjson"
        path.write_text(
            '{"a": "x", "b": null, "c": 1.5}\n'
            '{"a": null, "c": 7}\n'
            '{"a": "y", "b": true, "c": -0.25}\n',
            encoding="utf-8",
        )
        table = next(iter(open_source(path, 2))).materialize()
        assert tuple(table.columns[0].values) == ("x", "", "y")
        # null / missing / bool
        assert tuple(table.columns[1].values) == ("", "", "true")
        assert tuple(table.columns[2].values) == ("1.5", "7", "-0.25")

    def test_invalid_json_line_raises(self, tmp_path):
        path = tmp_path / "bad.ndjson"
        path.write_text('{"a": 1}\nnot json\n', encoding="utf-8")
        with pytest.raises(IngestError, match="line 2"):
            next(iter(open_source(path, 10))).materialize()

    def test_non_object_line_raises(self, tmp_path):
        path = tmp_path / "arr.ndjson"
        path.write_text("[1, 2]\n", encoding="utf-8")
        with pytest.raises(IngestError, match="object"):
            list(open_source(path, 10))

    def test_new_key_mid_stream_raises(self, tmp_path):
        path = tmp_path / "drift.ndjson"
        path.write_text('{"a": 1}\n{"a": 2, "b": 3}\n', encoding="utf-8")
        with pytest.raises(IngestError, match="keys not in the first object"):
            next(iter(open_source(path, 10))).materialize()

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.ndjson"
        path.write_text("", encoding="utf-8")
        with pytest.raises(IngestError):
            list(open_source(path, 10))


class TestSqlite:
    def test_type_affinity_stringification(self, tmp_path):
        path = tmp_path / "typed.sqlite"
        with sqlite3.connect(path) as connection:
            connection.execute(
                "CREATE TABLE t (n INTEGER, x REAL, s TEXT, b BLOB)"
            )
            connection.execute(
                "INSERT INTO t VALUES (7, 1.5, 'oslo', X'68690A')"
            )
            connection.execute("INSERT INTO t VALUES (NULL, NULL, NULL, NULL)")
        table = next(iter(open_source(path, 10))).materialize()
        assert tuple(table.columns[0].values) == ("7", "")
        assert tuple(table.columns[1].values) == ("1.5", "")
        assert tuple(table.columns[2].values) == ("oslo", "")
        assert tuple(table.columns[3].values) == ("hi\n", "")

    def test_one_stream_per_table_sorted_by_name(self, tmp_path):
        path = tmp_path / "multi.db"
        with sqlite3.connect(path) as connection:
            connection.execute("CREATE TABLE zeta (v TEXT)")
            connection.execute("CREATE TABLE alpha (v TEXT)")
        streams = list(open_source(path, 10))
        assert [s.table_id for s in streams] == ["multi.alpha", "multi.zeta"]

    def test_not_a_database_raises(self, tmp_path):
        path = tmp_path / "junk.sqlite"
        path.write_bytes(b"definitely not sqlite")
        with pytest.raises(IngestError, match="SQLite"):
            list(open_source(path, 10))


class TestParquet:
    def test_unavailable_backend_gives_clear_error(self, tmp_path):
        adapter = registered_adapters()["parquet"]
        path = tmp_path / "data.parquet"
        path.write_bytes(b"PAR1")
        if adapter.available:
            with pytest.raises(IngestError, match="parquet"):
                list(adapter.streams(path))
        else:
            with pytest.raises(IngestError, match="pyarrow"):
                list(adapter.streams(path))


class TestDiscovery:
    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(IngestError, match="does not exist"):
            discover_sources(tmp_path / "nope")

    def test_directory_walk_sorted_recursive_skips_unknown(self, tmp_path):
        (tmp_path / "sub").mkdir()
        (tmp_path / "b.csv").write_text("a\n1\n")
        (tmp_path / "sub" / "a.ndjson").write_text('{"a": 1}\n')
        (tmp_path / "readme.txt").write_text("ignored")
        sources = discover_sources(tmp_path)
        assert [(p.name, a.name) for p, a in sources] == [
            ("b.csv", "csv"),
            ("a.ndjson", "ndjson"),
        ]

    def test_format_override_beats_suffix(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("city\noslo\n")
        stream = next(iter(open_source(path, 10, format="csv")))
        assert stream.headers == ("city",)

    def test_error_message_names_the_source(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(IngestError) as excinfo:
            list(open_source(path, 10))
        assert "empty.csv" in str(excinfo.value)
        assert excinfo.value.source is not None
