"""Tests for corpus statistics (Figure 5 / Figure 6 data)."""

import numpy as np

from repro.corpus.statistics import (
    adjacent_cooccurrence_matrix,
    cooccurrence_matrix,
    log_cooccurrence,
    top_cooccurring_pairs,
    type_counts,
)
from repro.tables import Column, Table
from repro.types import NUM_TYPES, TYPE_TO_INDEX


def _table(*labels):
    return Table(columns=[Column(values=["x"], semantic_type=t) for t in labels])


class TestTypeCounts:
    def test_counts_simple(self):
        counts = type_counts([_table("city", "country"), _table("city")])
        assert counts["city"] == 2
        assert counts["country"] == 1

    def test_counts_corpus_long_tail(self, corpus_small):
        counts = type_counts(corpus_small)
        values = sorted(counts.values(), reverse=True)
        assert values[0] >= 3 * values[-1]

    def test_unlabeled_columns_ignored(self):
        table = Table(columns=[Column(values=["x"]), Column(values=["y"], semantic_type="city")])
        assert type_counts([table])["city"] == 1
        assert sum(type_counts([table]).values()) == 1


class TestCooccurrence:
    def test_symmetric(self, corpus_small):
        matrix = cooccurrence_matrix(corpus_small)
        assert matrix.shape == (NUM_TYPES, NUM_TYPES)
        assert np.allclose(matrix, matrix.T)

    def test_simple_pair(self):
        matrix = cooccurrence_matrix([_table("city", "state")])
        i, j = TYPE_TO_INDEX["city"], TYPE_TO_INDEX["state"]
        assert matrix[i, j] == 1
        assert matrix[j, i] == 1

    def test_diagonal_counts_repeated_types(self):
        matrix = cooccurrence_matrix([_table("name", "name")])
        i = TYPE_TO_INDEX["name"]
        assert matrix[i, i] == 1

    def test_adjacent_only_counts_neighbours(self):
        matrix = adjacent_cooccurrence_matrix([_table("city", "state", "country")])
        city, state, country = (
            TYPE_TO_INDEX["city"],
            TYPE_TO_INDEX["state"],
            TYPE_TO_INDEX["country"],
        )
        assert matrix[city, state] == 1
        assert matrix[state, country] == 1
        assert matrix[city, country] == 0

    def test_adjacent_subset_of_full(self, corpus_small):
        full = cooccurrence_matrix(corpus_small)
        adjacent = adjacent_cooccurrence_matrix(corpus_small)
        assert np.all(adjacent <= full + 1e-9)

    def test_log_cooccurrence_monotone(self):
        matrix = np.array([[0.0, 3.0], [3.0, 1.0]])
        logged = log_cooccurrence(matrix)
        assert logged[0, 0] == 0.0
        assert logged[0, 1] > logged[1, 1] > 0

    def test_top_pairs_sorted(self, corpus_small):
        matrix = cooccurrence_matrix(corpus_small)
        pairs = top_cooccurring_pairs(matrix, k=5)
        counts = [count for _, _, count in pairs]
        assert counts == sorted(counts, reverse=True)
        assert len(pairs) <= 5
