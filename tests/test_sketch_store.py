"""Tests for the persistent column-sketch store and its integrations.

The contract under test: a :class:`~repro.features.SketchStore` attached
to any featurization entry point (the streaming annotator, the serving
predictor, ``fit_stream``) changes *cost*, never *bits* — store-on
output is byte-identical to store-off output whether the run is cold
(all misses) or warm (all hits), corruption and configuration drift
degrade to recomputation with a warning (never a crash, never a wrong
hit), and GC keeps the on-disk logs bounded by the LRU capacity.
"""

from __future__ import annotations

import json
import warnings

import numpy as np
import pytest

from repro.features import sketchstore
from repro.features.sketchstore import (
    SketchStore,
    SketchStoreWarning,
    StreamSketcher,
    values_fingerprint,
)
from repro.ingest.annotate import StreamingAnnotator
from repro.serving import Predictor, save_model
from repro.tables import table_stream

from helpers import tiny_featurizer


@pytest.fixture()
def store(tmp_path):
    return SketchStore(tmp_path / "store")


def annotate_all(annotator, tables, chunk_rows=None):
    return [
        annotator.annotate_stream(table_stream(table, chunk_rows))
        for table in tables
    ]


# ------------------------------------------------------------- fingerprints


class TestFingerprints:
    def test_incremental_matches_one_shot(self):
        values = ["oslo", "", "rome", "päris", "x" * 100]
        fingerprinter = sketchstore.ColumnFingerprinter()
        for value in values:
            fingerprinter.update([value])
        assert fingerprinter.hexdigest() == values_fingerprint(values)

    def test_value_boundaries_are_unambiguous(self):
        assert values_fingerprint(["ab", "c"]) != values_fingerprint(["a", "bc"])
        assert values_fingerprint(["ab"]) != values_fingerprint(["a", "b"])

    def test_order_sensitive_and_header_blind(self):
        assert values_fingerprint(["a", "b"]) != values_fingerprint(["b", "a"])

    def test_combine_is_order_sensitive(self):
        a, b = values_fingerprint(["a"]), values_fingerprint(["b"])
        assert sketchstore.combine_fingerprints(
            [a, b]
        ) != sketchstore.combine_fingerprints([b, a])

    def test_column_fingerprint_is_the_serving_hash(self):
        from repro.serving.predictor import column_fingerprint
        from repro.tables import Column

        column = Column(values=["oslo", "", "rome"])
        assert column_fingerprint(column) == values_fingerprint(column.values)

    def test_table_fingerprint_matches_serving_predictor(
        self, trained_base, multi_column_tables
    ):
        table = multi_column_tables[0]
        fingerprints = [values_fingerprint(column.values) for column in table.columns]
        predictor = Predictor(trained_base)
        assert (
            sketchstore.combine_fingerprints(fingerprints)
            == predictor._table_fingerprint(table)
        )


# -------------------------------------------------------------- store basics


class TestStoreBasics:
    def test_roundtrip_and_reopen(self, tmp_path):
        root = tmp_path / "store"
        config = {"kind": "test", "n": 3}
        with SketchStore(root) as store:
            section = store.section(config)
            assert store.get(section, "fp1") is None
            store.put(section, "fp1", {"row": [1.5, -2.0], "n": 4})
        with SketchStore(root) as reopened:
            section = reopened.section(config)
            assert reopened.get(section, "fp1") == {"row": [1.5, -2.0], "n": 4}

    def test_unknown_section_raises(self, store):
        with pytest.raises(KeyError):
            store.get("0" * 32, "fp")

    def test_config_mismatch_is_a_miss(self, store):
        old = store.section({"kind": "test", "substrate": "aaa"})
        store.put(old, "fp1", {"row": [1.0]})
        new = store.section({"kind": "test", "substrate": "bbb"})
        assert new != old
        assert store.get(new, "fp1") is None
        assert store.get(old, "fp1") == {"row": [1.0]}

    def test_reput_shadows_older_record(self, tmp_path):
        root = tmp_path / "store"
        with SketchStore(root) as store:
            section = store.section({"kind": "test"})
            store.put(section, "fp1", {"row": [1.0]})
            store.put(section, "fp1", {"row": [2.0]})
        with SketchStore(root) as reopened:
            section = reopened.section({"kind": "test"})
            assert reopened.get(section, "fp1") == {"row": [2.0]}

    def test_capacity_bounds_the_index(self, tmp_path):
        store = SketchStore(tmp_path / "store", capacity=2)
        section = store.section({"kind": "test"})
        for index in range(4):
            store.put(section, f"fp{index}", {"row": [float(index)]})
        assert store.get(section, "fp0") is None
        assert store.get(section, "fp1") is None
        assert store.get(section, "fp3") == {"row": [3.0]}

    def test_format_mismatch_treated_as_empty(self, tmp_path):
        root = tmp_path / "store"
        with SketchStore(root) as store:
            section = store.section({"kind": "test"})
            store.put(section, "fp1", {"row": [1.0]})
        (root / "STORE.json").write_text('{"format": 99}\n', encoding="utf-8")
        with pytest.warns(SketchStoreWarning, match="format"):
            stale = SketchStore(root)
        assert stale.get(stale.section({"kind": "test"}), "fp1") is None
        # The meta file is rewritten, so the next open is clean again.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            SketchStore(root)

    def test_stats_counters(self, store):
        section = store.section({"kind": "test"})
        store.get(section, "fp1")
        store.put(section, "fp1", {"row": [1.0]})
        store.get(section, "fp1")
        stats = store.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["corrupt_records"] == 0
        assert stats["sections"] == {section: 1}


# --------------------------------------------------------------- corruption


class TestCorruption:
    def write_entries(self, root, count=3):
        with SketchStore(root) as store:
            section = store.section({"kind": "test"})
            for index in range(count):
                store.put(section, f"fp{index}", {"row": [float(index)]})
        return section

    def test_truncated_tail_keeps_readable_prefix(self, tmp_path):
        root = tmp_path / "store"
        section = self.write_entries(root)
        log = root / f"{section}.log"
        log.write_bytes(log.read_bytes()[:-5])
        store = SketchStore(root)
        with pytest.warns(SketchStoreWarning, match="truncated"):
            assert store.section({"kind": "test"}) == section
        assert store.get(section, "fp0") == {"row": [0.0]}
        assert store.get(section, "fp1") == {"row": [1.0]}
        assert store.get(section, "fp2") is None
        assert store.stats()["corrupt_records"] == 1

    def test_flipped_payload_byte_fails_checksum(self, tmp_path):
        root = tmp_path / "store"
        section = self.write_entries(root, count=2)
        log = root / f"{section}.log"
        data = bytearray(log.read_bytes())
        data[-3] ^= 0xFF
        log.write_bytes(bytes(data))
        store = SketchStore(root)
        with pytest.warns(SketchStoreWarning, match="checksum"):
            store.section({"kind": "test"})
        assert store.get(section, "fp0") == {"row": [0.0]}
        assert store.get(section, "fp1") is None

    def test_garbage_log_is_truncated_and_reusable(self, tmp_path):
        root = tmp_path / "store"
        section = self.write_entries(root, count=1)
        log = root / f"{section}.log"
        log.write_bytes(b"not a sketch log")
        store = SketchStore(root)
        with pytest.warns(SketchStoreWarning, match="magic"):
            store.section({"kind": "test"})
        assert log.read_bytes() == b""
        assert store.get(section, "fp0") is None
        store.put(section, "fp0", {"row": [7.0]})
        store.close()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            reopened = SketchStore(root)
            assert (
                reopened.get(reopened.section({"kind": "test"}), "fp0")
                == {"row": [7.0]}
            )


# ----------------------------------------------------------------------- gc


class TestGC:
    def test_gc_compacts_shadowed_records(self, tmp_path):
        root = tmp_path / "store"
        store = SketchStore(root)
        section = store.section({"kind": "test"})
        for _ in range(10):
            store.put(section, "fp1", {"row": [1.0] * 50})
        log = root / f"{section}.log"
        before = log.stat().st_size
        summary = store.gc()
        assert summary["live_entries"] == 1
        assert summary["reclaimed_bytes"] > 0
        assert log.stat().st_size < before
        with SketchStore(root) as reopened:
            section = reopened.section({"kind": "test"})
            assert reopened.get(section, "fp1") == {"row": [1.0] * 50}

    def test_gc_respects_the_lru_bound(self, tmp_path):
        root = tmp_path / "store"
        store = SketchStore(root, capacity=2)
        section = store.section({"kind": "test"})
        for index in range(5):
            store.put(section, f"fp{index}", {"row": [float(index)]})
        summary = store.gc()
        assert summary["live_entries"] == 2
        with SketchStore(root, capacity=16) as reopened:
            # Only the 2 most-recent entries survived compaction on disk.
            section = reopened.section({"kind": "test"})
            assert reopened.get(section, "fp2") is None
            assert reopened.get(section, "fp3") == {"row": [3.0]}
            assert reopened.get(section, "fp4") == {"row": [4.0]}

    def test_purge_stale_removes_unopened_sections(self, tmp_path):
        root = tmp_path / "store"
        store = SketchStore(root)
        live = store.section({"kind": "live"})
        store.put(live, "fp1", {"row": [1.0]})
        (root / ("ab" * 16 + ".log")).write_bytes(b"old section data")
        (root / ("ab" * 16 + ".json")).write_text("{}\n", encoding="utf-8")
        summary = store.gc(purge_stale=True)
        assert summary["purged_files"] == 2
        assert not (root / ("ab" * 16 + ".log")).exists()
        assert (root / "STORE.json").exists()
        assert (root / f"{live}.log").exists()
        assert store.get(live, "fp1") == {"row": [1.0]}


# ----------------------------------------------------------- stream sketcher


class TestStreamSketcher:
    def featurize(self, featurizer, sketcher):
        return featurizer.finalize_columns(
            [sketcher.accumulator(index) for index in range(sketcher.n_columns)]
        )

    def eager_oracle(self, featurizer, columns):
        """The bit-level reference: one eager accumulator per column."""
        accumulators = []
        for column in columns:
            accumulator = featurizer.column_accumulator()
            accumulator.partial_fit(
                column.values, start_row=0, row_span=len(column.values)
            )
            accumulators.append(accumulator)
        return featurizer.finalize_columns(accumulators)

    def test_deferred_replay_matches_eager_accumulation(
        self, fitted_featurizer, multi_column_tables
    ):
        table = multi_column_tables[0]
        sketcher = StreamSketcher(fitted_featurizer, table.n_columns)
        for chunk in table_stream(table, 3).chunks:
            sketcher.feed(chunk)
        assert not sketcher.flushed
        expected = self.eager_oracle(fitted_featurizer, table.columns)
        np.testing.assert_array_equal(
            self.featurize(fitted_featurizer, sketcher), expected
        )
        assert sketcher.fingerprints() == [
            values_fingerprint(column.values) for column in table.columns
        ]

    def test_flush_fallback_is_bit_identical(
        self, fitted_featurizer, multi_column_tables
    ):
        table = multi_column_tables[0]
        sketcher = StreamSketcher(fitted_featurizer, table.n_columns, defer_values=1)
        for chunk in table_stream(table, 2).chunks:
            sketcher.feed(chunk)
        assert sketcher.flushed
        expected = self.eager_oracle(fitted_featurizer, table.columns)
        np.testing.assert_array_equal(
            self.featurize(fitted_featurizer, sketcher), expected
        )
        assert sketcher.fingerprints() == [
            values_fingerprint(column.values) for column in table.columns
        ]

    def test_sample_rows_caps_featurized_values_not_fingerprints(
        self, fitted_featurizer, multi_column_tables
    ):
        table = next(t for t in multi_column_tables if t.n_rows >= 6)
        sketcher = StreamSketcher(fitted_featurizer, table.n_columns, sample_rows=2)
        for chunk in table_stream(table, 3).chunks:
            sketcher.feed(chunk)
        # Fingerprints cover the full content...
        assert sketcher.fingerprints() == [
            values_fingerprint(column.values) for column in table.columns
        ]
        # ...while featurization sees only the first 2 values per column.
        sampled = sketchstore.sampled_table(table, 2)
        expected = self.eager_oracle(fitted_featurizer, sampled.columns)
        np.testing.assert_array_equal(
            self.featurize(fitted_featurizer, sketcher), expected
        )


# -------------------------------------------------------- sketch round trips


class TestSketchCoding:
    def test_column_sketch_rebuilds_the_accumulator(
        self, fitted_featurizer, multi_column_tables
    ):
        column = multi_column_tables[0].columns[0]
        accumulator = fitted_featurizer.column_accumulator()
        accumulator.partial_fit(column.values, start_row=0, row_span=len(column.values))
        sketch = sketchstore.column_sketch(
            fitted_featurizer, accumulator, len(column.values)
        )
        # JSON round trip, exactly as the store would persist it.
        sketch = json.loads(json.dumps(sketch))
        rebuilt = sketchstore.accumulator_from_sketch(
            sketch, fitted_featurizer.max_tokens_per_column
        )
        assert rebuilt.token_list() == accumulator.token_list()
        np.testing.assert_array_equal(
            fitted_featurizer.raw_from_accumulator(rebuilt),
            fitted_featurizer.raw_from_accumulator(accumulator),
        )
        np.testing.assert_array_equal(
            sketchstore.sketch_row(sketch, fitted_featurizer.n_features),
            fitted_featurizer.raw_from_accumulator(accumulator),
        )

    def test_malformed_sketches_degrade_to_none(self, fitted_featurizer):
        n = fitted_featurizer.n_features
        assert sketchstore.accumulator_from_sketch(None, 10) is None
        assert sketchstore.accumulator_from_sketch({"n": -1}, 10) is None
        assert sketchstore.sketch_row(None, n) is None
        assert sketchstore.sketch_row({"row": [1.0]}, n) is None
        assert sketchstore.sketch_row({"row": "zzz"}, n) is None
        assert sketchstore.sketch_tokens({"tokens": [1, 2]}) is None
        assert sketchstore.topic_vector_from_sketch({"topic": [0.5]}, 3) is None


# -------------------------------------------------------- annotation parity


class TestAnnotateParity:
    def test_store_on_equals_store_off_cold_and_warm(
        self, fitted_variant, serving_split, tmp_path
    ):
        """The parity contract, across all 4 paper variants.

        One pass with no store (the eager oracle), one cold store-on pass
        (all misses) and one warm pass through a *reopened* store (all
        hits) must produce byte-identical annotation records.
        """
        _, tables = serving_split
        oracle = annotate_all(StreamingAnnotator(fitted_variant), tables, 3)

        root = tmp_path / "store"
        cold_annotator = StreamingAnnotator(fitted_variant, sketch_store=root)
        cold = annotate_all(cold_annotator, tables, 3)
        assert cold_annotator.sketch_store.stats()["misses"] > 0
        cold_annotator.close()

        warm_annotator = StreamingAnnotator(fitted_variant, sketch_store=root)
        warm = annotate_all(warm_annotator, tables, 3)
        warm_stats = warm_annotator.sketch_store.stats()
        assert warm_stats["misses"] == 0
        assert warm_stats["hits"] > 0
        warm_annotator.close()

        assert json.dumps(cold) == json.dumps(oracle)
        assert json.dumps(warm) == json.dumps(oracle)

    def test_chunk_size_does_not_change_store_keys(
        self, trained_sato, serving_split, tmp_path
    ):
        """Warm hits survive re-chunking: fingerprints span chunk bounds."""
        _, tables = serving_split
        root = tmp_path / "store"
        cold_annotator = StreamingAnnotator(trained_sato, sketch_store=root)
        cold = annotate_all(cold_annotator, tables, 7)
        cold_annotator.close()

        warm_annotator = StreamingAnnotator(trained_sato, sketch_store=root)
        warm = annotate_all(warm_annotator, tables, 2)
        stats = warm_annotator.sketch_store.stats()
        assert stats["misses"] == 0
        warm_annotator.close()
        assert json.dumps(warm) == json.dumps(cold)

    def test_corrupt_store_recomputes_with_warning(
        self, trained_sato, serving_split, tmp_path
    ):
        _, tables = serving_split
        root = tmp_path / "store"
        annotator = StreamingAnnotator(trained_sato, sketch_store=root)
        oracle = annotate_all(annotator, tables, 3)
        annotator.close()

        for log in root.glob("*.log"):
            log.write_bytes(log.read_bytes()[: log.stat().st_size // 2])
        with pytest.warns(SketchStoreWarning):
            recovered_annotator = StreamingAnnotator(trained_sato, sketch_store=root)
            recovered = annotate_all(recovered_annotator, tables, 3)
            recovered_annotator.close()
        assert json.dumps(recovered) == json.dumps(oracle)

    def test_substrate_change_misses_instead_of_wrong_hit(
        self, serving_split, tmp_path
    ):
        """Two differently-fitted models never share column sections."""
        from helpers import make_tiny_model

        train, tables = serving_split
        root = tmp_path / "store"
        model_a = make_tiny_model(use_topic=False, use_struct=False)
        model_a.fit(train[:10])
        annotator_a = StreamingAnnotator(model_a, sketch_store=root)
        annotate_all(annotator_a, tables, 3)
        annotator_a.close()

        model_b = make_tiny_model(use_topic=False, use_struct=False)
        model_b.fit(train[10:20])
        # Different fitted substrates hash to different store sections.
        assert sketchstore.substrate_hash(
            model_a.column_model.featurizer
        ) != sketchstore.substrate_hash(model_b.column_model.featurizer)
        oracle = annotate_all(StreamingAnnotator(model_b), tables, 3)
        annotator_b = StreamingAnnotator(model_b, sketch_store=root)
        got = annotate_all(annotator_b, tables, 3)
        annotator_b.close()
        assert json.dumps(got) == json.dumps(oracle)

    def test_sample_rows_annotates_all_tables(
        self, trained_sato, serving_split, tmp_path
    ):
        _, tables = serving_split
        annotator = StreamingAnnotator(
            trained_sato, sketch_store=tmp_path / "store", sample_rows=3
        )
        records = annotate_all(annotator, tables, 2)
        annotator.close()
        assert len(records) == len(tables)
        for record, table in zip(records, tables):
            assert record["n_rows"] == table.n_rows  # full row count reported
            assert len(record["columns"]) == table.n_columns

    def test_sampled_and_unsampled_sections_never_mix(self, trained_sato, tmp_path):
        featurizer = trained_sato.column_model.featurizer
        full = sketchstore.column_section_config(featurizer, "accumulator")
        sampled = sketchstore.column_section_config(
            featurizer, "accumulator", sample_rows=2
        )
        assert full != sampled
        store = SketchStore(tmp_path / "store")
        assert store.section(full) != store.section(sampled)
        store.close()

    def test_bad_sample_rows_rejected(self, trained_sato):
        with pytest.raises(ValueError, match="sample_rows"):
            StreamingAnnotator(trained_sato, sample_rows=0)


# --------------------------------------------------------- fit_stream parity


class TestFitStreamSketched:
    def fit_state(self, tables, **kwargs):
        featurizer = tiny_featurizer()
        featurizer.fit_stream([table_stream(table, 4) for table in tables], **kwargs)
        return featurizer.state_dict()

    def test_store_on_fit_is_bit_identical_cold_and_warm(
        self, multi_column_tables, tmp_path
    ):
        tables = multi_column_tables[:12]
        root = tmp_path / "store"
        oracle = self.fit_state(tables)
        cold = self.fit_state(tables, sketch_store=root)
        with SketchStore(root) as store:
            warm = self.fit_state(tables, sketch_store=store)
            assert store.stats()["hits"] > 0
            assert store.stats()["misses"] == 0
        for key in oracle:
            np.testing.assert_array_equal(cold[key], oracle[key])
            np.testing.assert_array_equal(warm[key], oracle[key])

    def test_content_sketches_survive_across_refits(
        self, multi_column_tables, tmp_path
    ):
        """No substrate in the content section: any refit can reuse it."""
        tables = multi_column_tables[:8]
        root = tmp_path / "store"
        self.fit_state(tables, sketch_store=root)
        with SketchStore(root) as store:
            featurizer = tiny_featurizer()
            featurizer.fit_stream(
                [table_stream(table, 4) for table in tables],
                sketch_store=store,
            )
            assert store.stats()["misses"] == 0


# ---------------------------------------------------------- predictor parity


class TestPredictorParity:
    def test_store_on_equals_store_off_cold_and_warm(
        self, fitted_variant, serving_split, tmp_path
    ):
        """Serving parity: full-miss cold run, then full-hit warm run.

        The warm predictor is a fresh instance (empty in-memory L1
        cache), so every column is served from the persistent store.
        """
        _, tables = serving_split
        oracle = Predictor(fitted_variant)
        expected = oracle.predict_tables(tables)

        root = tmp_path / "store"
        cold = Predictor(fitted_variant, sketch_store=root)
        assert cold.predict_tables(tables) == expected
        cold.close()

        warm = Predictor(fitted_variant, sketch_store=root)
        assert warm.predict_tables(tables) == expected
        stats = warm.cache_info()["sketch_store"]
        assert stats["hits"] > 0
        assert stats["misses"] == 0
        warm.close()

    def test_swap_model_moves_to_new_sections(self, serving_split, tmp_path):
        from helpers import make_tiny_model

        train, tables = serving_split
        model_a = make_tiny_model(use_topic=True, use_struct=False)
        model_a.fit(train[:10])
        model_b = make_tiny_model(use_topic=True, use_struct=False)
        model_b.fit(train[10:20])

        root = tmp_path / "store"
        predictor = Predictor(model_a, sketch_store=root)
        predictor.predict_tables(tables)
        predictor.swap_model(model_b)
        expected = Predictor(model_b).predict_tables(tables)
        assert predictor.predict_tables(tables) == expected
        predictor.close()

    def test_annotate_and_predict_share_topic_sections(
        self, trained_sato, serving_split, tmp_path
    ):
        """Table-topic vectors cached by annotate are hits for predict."""
        _, tables = serving_split
        root = tmp_path / "store"
        annotator = StreamingAnnotator(trained_sato, sketch_store=root)
        annotate_all(annotator, tables)
        annotator.close()

        expected = Predictor(trained_sato).predict_tables(tables)
        predictor = Predictor(trained_sato, sketch_store=root)
        assert predictor.predict_tables(tables) == expected
        assert predictor.cache_info()["sketch_store"]["hits"] > 0
        predictor.close()


# ------------------------------------------------------------------ the CLI


class TestCLI:
    @pytest.fixture(scope="class")
    def sato_bundle(self, trained_sato, tmp_path_factory):
        bundle = tmp_path_factory.mktemp("sketch") / "bundle"
        save_model(trained_sato, bundle)
        return bundle

    @pytest.fixture(scope="class")
    def source_csv(self, multi_column_tables, tmp_path_factory):
        from repro.ingest import registered_adapters

        path = tmp_path_factory.mktemp("sketch") / "a.csv"
        registered_adapters()["csv"].write_fixture(multi_column_tables[0], path)
        return path

    def run_cli(self, argv, capsys):
        from repro.cli import main

        code = main(argv)
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_parser_accepts_sketch_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "annotate", "data/", "--model", "b/",
                "--sketch-store", "sketches/",
                "--sketch-sample-rows", "64", "--sketch-gc",
            ]
        )
        assert args.sketch_store == "sketches/"
        assert args.sketch_sample_rows == 64
        assert args.sketch_gc is True

    def test_bad_sample_rows_exits_2(self, sato_bundle, source_csv, capsys):
        code, _, err = self.run_cli(
            ["annotate", str(source_csv), "--model", str(sato_bundle),
             "--sketch-sample-rows", "0"],
            capsys,
        )
        assert code == 2
        assert "--sketch-sample-rows" in err

    def test_sketch_gc_requires_store_flag(self, sato_bundle, source_csv, capsys):
        code, _, err = self.run_cli(
            ["annotate", str(source_csv), "--model", str(sato_bundle), "--sketch-gc"],
            capsys,
        )
        assert code == 2
        assert "--sketch-gc requires --sketch-store" in err

    def test_warm_annotate_is_byte_identical_and_reports_hits(
        self, sato_bundle, source_csv, tmp_path, capsys
    ):
        store = tmp_path / "sketches"
        argv = ["annotate", str(source_csv), "--model", str(sato_bundle),
                "--sketch-store", str(store)]
        code, cold_out, cold_err = self.run_cli(argv, capsys)
        assert code == 0
        assert "sketch-store:" in cold_err
        code, warm_out, warm_err = self.run_cli(argv, capsys)
        assert code == 0
        assert warm_out == cold_out
        assert "0 miss(es)" in warm_err

    def test_sketch_gc_prints_a_summary(
        self, sato_bundle, source_csv, tmp_path, capsys
    ):
        store = tmp_path / "sketches"
        code, _, err = self.run_cli(
            ["annotate", str(source_csv), "--model", str(sato_bundle),
             "--sketch-store", str(store), "--sketch-gc"],
            capsys,
        )
        assert code == 0
        assert "sketch-gc: kept" in err

    def test_predict_with_sketch_store_is_deterministic(
        self, sato_bundle, source_csv, tmp_path, capsys
    ):
        store = tmp_path / "sketches"
        plain = ["predict", "--model", str(sato_bundle), "--csv", str(source_csv)]
        code, expected, _ = self.run_cli(plain, capsys)
        assert code == 0
        argv = plain + ["--sketch-store", str(store)]
        code, cold_out, _ = self.run_cli(argv, capsys)
        assert code == 0
        code, warm_out, _ = self.run_cli(argv, capsys)
        assert code == 0
        assert cold_out == expected
        assert warm_out == expected

    def test_serve_fleet_mode_rejects_sketch_store(self, tmp_path, capsys):
        code, _, err = self.run_cli(
            ["serve", "--model", str(tmp_path / "bundle"),
             "--fleet-workers", "2", "--sketch-store", str(tmp_path / "s")],
            capsys,
        )
        assert code == 2
        assert "single-process" in err
