"""The documentation site stays internally consistent.

Checks that every relative markdown link under ``docs/`` (and in the
top-level ``README.md`` / ``ROADMAP.md``) resolves to a real file, and that
in-page anchors point at headings that exist.  External (``http``) links
are out of scope — CI must not depend on the network.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

DOCUMENTS = sorted(
    [REPO_ROOT / "README.md", REPO_ROOT / "ROADMAP.md"]
    + list((REPO_ROOT / "docs").glob("*.md"))
)

_LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.+?)\s*$", re.MULTILINE)


def _slugify(heading: str) -> str:
    """GitHub-style anchor slug for a markdown heading."""
    heading = re.sub(r"[`*_]", "", heading.strip().lower())
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def _anchors(path: Path) -> set[str]:
    return {_slugify(m.group(1)) for m in _HEADING_RE.finditer(path.read_text())}


def test_docs_directory_exists():
    assert (REPO_ROOT / "docs").is_dir()
    names = {p.name for p in (REPO_ROOT / "docs").glob("*.md")}
    assert {"architecture.md", "serving.md", "performance.md"} <= names


@pytest.mark.parametrize("document", DOCUMENTS, ids=lambda p: p.name)
def test_internal_links_resolve(document):
    text = document.read_text(encoding="utf-8")
    problems = []
    for match in _LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        resolved = (
            document if not path_part else (document.parent / path_part).resolve()
        )
        if not resolved.exists():
            problems.append(f"{target}: file {path_part} does not exist")
            continue
        if anchor and resolved.suffix == ".md" and anchor not in _anchors(resolved):
            problems.append(f"{target}: no heading for anchor #{anchor}")
    assert not problems, f"broken links in {document.name}: {problems}"
