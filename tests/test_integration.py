"""End-to-end integration tests exercising the full Sato pipeline."""

import numpy as np

from repro import CorpusConfig, CorpusGenerator
from repro.evaluation.cross_validation import collect_predictions
from repro.evaluation.metrics import classification_report
from repro.tables import Column, Table

from helpers import make_tiny_model


class TestEndToEnd:
    def test_figure1_style_disambiguation_pipeline(self, trained_sato):
        """The motivating example: identical city values in different contexts."""
        people_table = Table(
            columns=[
                Column(values=["Ada Lovelace", "Alan Turing", "Marie Curie", "Erwin Schrodinger"]),
                Column(values=["1815-12-10", "1912-06-23", "1867-11-07", "1887-08-12"]),
                Column(values=["Florence", "Warsaw", "London", "Braunschweig"]),
            ]
        )
        cities_table = Table(
            columns=[
                Column(values=["Florence", "Warsaw", "London", "Braunschweig"]),
                Column(values=["Italy", "Poland", "United Kingdom", "Germany"]),
                Column(values=["Europe", "Europe", "Europe", "Europe"]),
            ]
        )
        people_prediction = trained_sato.predict_table(people_table)
        cities_prediction = trained_sato.predict_table(cities_table)
        # Both predictions must be valid types; the full-scale model resolves
        # the ambiguity to birthPlace vs city, the tiny test model must at
        # least produce per-column predictions for both contexts.
        assert len(people_prediction) == 3
        assert len(cities_prediction) == 3

    def test_variants_rank_sensibly_on_small_corpus(self):
        """Contextual variants should not be dramatically worse than Base."""
        corpus = CorpusGenerator(
            CorpusConfig(n_tables=80, seed=21, singleton_rate=0.15, max_rows=10)
        ).generate()
        train, test = corpus[:64], corpus[64:]
        scores = {}
        for use_topic, use_struct, name in [
            (False, False, "Base"),
            (False, True, "SatoNoTopic"),
        ]:
            model = make_tiny_model(use_topic=use_topic, use_struct=use_struct)
            model.fit(train)
            y_true, y_pred = collect_predictions(model, test)
            scores[name] = classification_report(y_true, y_pred).weighted_f1
        assert scores["SatoNoTopic"] >= scores["Base"] - 0.1

    def test_predictions_are_deterministic(self, trained_sato, train_test_tables):
        _, test = train_test_tables
        first = trained_sato.predict_table(test[0])
        second = trained_sato.predict_table(test[0])
        assert first == second

    def test_crf_marginals_match_viterbi_top_choice_often(self, trained_sato, train_test_tables):
        _, test = train_test_tables
        agreements, total = 0, 0
        from repro.types import TYPE_TO_INDEX

        for table in test[:5]:
            marginal_argmax = trained_sato.predict_proba_table(table).argmax(axis=1)
            predictions = trained_sato.predict_table(table)
            viterbi_indices = [TYPE_TO_INDEX[p] for p in predictions]
            agreements += int(np.sum(np.array(viterbi_indices) == marginal_argmax))
            total += table.n_columns
        assert agreements / total > 0.5

    def test_corpus_round_trip_preserves_model_input(self, tmp_path, corpus_small, trained_base):
        from repro.tables import tables_from_jsonl, tables_to_jsonl

        path = tmp_path / "round.jsonl"
        tables_to_jsonl(corpus_small[:5], path)
        reloaded = tables_from_jsonl(path)
        for original, restored in zip(corpus_small[:5], reloaded):
            assert trained_base.predict_table(original) == trained_base.predict_table(restored)
