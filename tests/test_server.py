"""End-to-end tests for the online HTTP serving subsystem.

Every test here talks to a real ``ServingServer`` over a real TCP socket
(via ``http.client``), with the server running on a background event loop
(``serve_in_thread``).  Covered: the predict round-trip against
``Predictor.predict_table``, batch prediction, health and metrics
endpoints, the error-code contract (400/404/405/429/503), overload
behaviour under a flood, and graceful drain.
"""

from __future__ import annotations

import http.client
import json
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.serving import Predictor, serve_in_thread

TIMEOUT = 30


def _raw_request_status(port: int, raw: bytes, half_close: bool = False) -> int:
    """Send raw bytes over a socket; returns the HTTP status of the reply."""
    import socket

    with socket.create_connection(("127.0.0.1", port), timeout=TIMEOUT) as sock:
        sock.sendall(raw)
        if half_close:
            sock.shutdown(socket.SHUT_WR)  # body ends early: truncated request
        reply = b""
        while b"\r\n" not in reply:
            chunk = sock.recv(4096)
            if not chunk:
                break
            reply += chunk
    return int(reply.split()[1])


def request(port: int, method: str, path: str, payload: dict | None = None, body: bytes | None = None):
    """One HTTP request over a fresh connection; returns (status, json_body)."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=TIMEOUT)
    try:
        if body is None and payload is not None:
            body = json.dumps(payload).encode("utf-8")
        connection.request(
            method, path, body=body, headers={"Content-Type": "application/json"}
        )
        reply = connection.getresponse()
        return reply.status, json.loads(reply.read().decode("utf-8"))
    finally:
        connection.close()


@pytest.fixture(scope="module")
def predictor(trained_base):
    predictor = Predictor(trained_base, cache_size=1024)
    yield predictor
    predictor.close()


@pytest.fixture(scope="module")
def server(predictor):
    with serve_in_thread(predictor, port=0, max_batch_size=8, max_wait_ms=25.0) as handle:
        yield handle


class TestPredictEndpoint:
    def test_round_trip_matches_predict_table(self, server, predictor, serving_split):
        _, test = serving_split
        for table in test[:4]:
            status, payload = request(
                server.port, "POST", "/v1/predict", {"table": table.to_dict()}
            )
            assert status == 200
            assert payload["labels"] == predictor.predict_table(table)
            assert payload["n_columns"] == table.n_columns
            assert payload["table_id"] == table.table_id

    def test_predict_batch_matches_predict_tables(self, server, predictor, serving_split):
        _, test = serving_split
        tables = test[:3]
        status, payload = request(
            server.port,
            "POST",
            "/v1/predict_batch",
            {"tables": [table.to_dict() for table in tables]},
        )
        assert status == 200
        assert [r["labels"] for r in payload["results"]] == predictor.predict_tables(tables)

    def test_concurrent_requests_all_answered_and_coalesced(
        self, server, predictor, serving_split
    ):
        _, test = serving_split
        tables = (test * 4)[:12]
        with ThreadPoolExecutor(max_workers=12) as pool:
            replies = list(
                pool.map(
                    lambda table: request(
                        server.port, "POST", "/v1/predict", {"table": table.to_dict()}
                    ),
                    tables,
                )
            )
        assert all(status == 200 for status, _ in replies)
        expected = predictor.predict_tables(tables)
        assert [payload["labels"] for _, payload in replies] == expected
        # The micro-batcher must have put at least two tables in one batch.
        status, metrics = request(server.port, "GET", "/metrics")
        assert status == 200
        assert any(
            int(size) > 1 for size in metrics["batches"]["size_histogram"]
        ), metrics["batches"]


class TestObservabilityEndpoints:
    def test_healthz(self, server):
        status, payload = request(server.port, "GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["draining"] is False
        assert payload["uptime_seconds"] > 0

    def test_metrics_shape(self, server, serving_split):
        _, test = serving_split
        request(server.port, "POST", "/v1/predict", {"table": test[0].to_dict()})
        status, payload = request(server.port, "GET", "/metrics")
        assert status == 200
        assert payload["requests"]["completed"] >= 1
        assert payload["requests"]["qps"] > 0
        assert payload["latency_ms"]["p50"] >= 0
        assert payload["latency_ms"]["p99"] >= payload["latency_ms"]["p50"]
        assert payload["columns"]["served"] >= test[0].n_columns
        assert payload["policy"] == {
            "max_batch_size": 8, "max_wait_ms": 25.0, "max_queue": 256,
        }
        cache = payload["cache"]
        assert 0.0 <= cache["hit_rate"] <= 1.0
        assert cache["hits"] + cache["misses"] >= test[0].n_columns
        assert payload["predictor"]["batches"] >= 1


class TestErrorContract:
    def test_400_not_json(self, server):
        status, payload = request(server.port, "POST", "/v1/predict", body=b"not json")
        assert status == 400 and "JSON" in payload["error"]

    def test_400_missing_table_key(self, server):
        status, payload = request(server.port, "POST", "/v1/predict", {"nope": 1})
        assert status == 400 and "table" in payload["error"]

    def test_400_malformed_columns(self, server):
        status, payload = request(
            server.port, "POST", "/v1/predict", {"table": {"columns": [{"values": "x"}]}}
        )
        assert status == 400 and "values" in payload["error"]

    def test_400_empty_batch(self, server):
        status, _ = request(server.port, "POST", "/v1/predict_batch", {"tables": []})
        assert status == 400

    def test_404_unknown_path(self, server):
        status, _ = request(server.port, "GET", "/nope")
        assert status == 404

    def test_405_wrong_method(self, server):
        status, _ = request(server.port, "GET", "/v1/predict")
        assert status == 405
        status, _ = request(server.port, "POST", "/healthz")
        assert status == 405

    def test_400_bad_content_length_framing(self, server):
        for raw in (
            b"POST /v1/predict HTTP/1.1\r\nContent-Length: -1\r\n\r\n",
            b"POST /v1/predict HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
        ):
            status = _raw_request_status(server.port, raw)
            assert status == 400

    def test_400_truncated_body(self, server):
        raw = b"POST /v1/predict HTTP/1.1\r\nContent-Length: 500\r\n\r\n{\"tr"
        status = _raw_request_status(server.port, raw, half_close=True)
        assert status == 400

    def test_413_oversized_body_refused(self, server):
        raw = (
            b"POST /v1/predict HTTP/1.1\r\n"
            b"Content-Length: 999999999999\r\n\r\n"
        )
        status = _raw_request_status(server.port, raw)
        assert status == 413

    def test_400_tracked_in_metrics(self, server):
        before = request(server.port, "GET", "/metrics")[1]["requests"]["malformed"]
        request(server.port, "POST", "/v1/predict", body=b"broken")
        after = request(server.port, "GET", "/metrics")[1]["requests"]["malformed"]
        assert after == before + 1


class SlowPredictor:
    """Delegates to a real predictor after a delay: deterministic overload."""

    def __init__(self, predictor, delay: float):
        self._predictor = predictor
        self._delay = delay

    def predict_tables(self, tables):
        time.sleep(self._delay)
        return self._predictor.predict_tables(tables)


class TestOverload:
    def test_flood_returns_429s_drops_nothing_and_healthz_survives(
        self, predictor, serving_split
    ):
        _, test = serving_split
        table = test[0]
        n_requests = 24
        slow = SlowPredictor(predictor, delay=0.05)
        with serve_in_thread(
            slow, port=0, max_batch_size=1, max_wait_ms=0.0, max_queue=2
        ) as handle:
            with ThreadPoolExecutor(max_workers=n_requests) as pool:
                futures = [
                    pool.submit(
                        request,
                        handle.port,
                        "POST",
                        "/v1/predict",
                        {"table": table.to_dict()},
                    )
                    for _ in range(n_requests)
                ]
                # The server must stay observable *during* the flood: the
                # event loop is free while batches run on the dispatch thread.
                status, health = request(handle.port, "GET", "/healthz")
                assert status == 200 and health["status"] == "ok"
                replies = [future.result(timeout=TIMEOUT) for future in futures]

            # Every request got an answer: 200 with labels or an explicit 429.
            assert len(replies) == n_requests
            statuses = sorted({status for status, _ in replies})
            assert set(statuses) <= {200, 429}
            served = [payload for status, payload in replies if status == 200]
            rejected = [payload for status, payload in replies if status == 429]
            assert served and rejected
            expected = predictor.predict_table(table)
            assert all(payload["labels"] == expected for payload in served)
            assert all("queue" in payload["error"] for payload in rejected)

            # ... and still healthy after the flood, with honest accounting.
            status, health = request(handle.port, "GET", "/healthz")
            assert status == 200 and health["status"] == "ok"
            status, metrics = request(handle.port, "GET", "/metrics")
            assert metrics["requests"]["completed"] == len(served)
            assert metrics["requests"]["rejected_queue_full"] == len(rejected)


class TestGracefulDrain:
    def test_begin_drain_rejects_predicts_but_answers_healthz(
        self, predictor, serving_split
    ):
        _, test = serving_split
        with serve_in_thread(predictor, port=0) as handle:
            handle.begin_drain()
            status, health = request(handle.port, "GET", "/healthz")
            assert status == 200
            assert health["status"] == "draining" and health["draining"] is True
            status, payload = request(
                handle.port, "POST", "/v1/predict", {"table": test[0].to_dict()}
            )
            assert status == 503 and "draining" in payload["error"]
            status, _ = request(handle.port, "GET", "/metrics")
            assert status == 200

    def test_stop_refuses_new_connections(self, predictor):
        handle = serve_in_thread(predictor, port=0)
        port = handle.port
        status, _ = request(port, "GET", "/healthz")
        assert status == 200
        handle.stop()
        with pytest.raises(OSError):
            request(port, "GET", "/healthz")
