"""Tests for the semantic type registry and header canonicalisation."""

import pytest
from hypothesis import given, strategies as st

from repro import types


class TestRegistry:
    def test_exactly_78_types(self):
        assert types.NUM_TYPES == 78
        assert len(types.SEMANTIC_TYPES) == 78

    def test_no_duplicate_types(self):
        assert len(set(types.SEMANTIC_TYPES)) == len(types.SEMANTIC_TYPES)

    def test_index_round_trip(self):
        for name in types.SEMANTIC_TYPES:
            assert types.type_name(types.type_index(name)) == name

    def test_index_mapping_is_dense(self):
        indices = sorted(types.TYPE_TO_INDEX.values())
        assert indices == list(range(78))

    def test_known_types_present(self):
        for expected in ("name", "city", "birthPlace", "teamName", "isbn", "fileSize"):
            assert types.is_semantic_type(expected)

    def test_unknown_type_rejected(self):
        assert not types.is_semantic_type("population")
        with pytest.raises(types.UnknownSemanticTypeError):
            types.type_index("population")

    def test_type_name_out_of_range(self):
        with pytest.raises(types.UnknownSemanticTypeError):
            types.type_name(1000)

    def test_filter_supported(self):
        labels = ["city", "population", "name", ""]
        assert types.filter_supported(labels) == ["city", "name"]


class TestCanonicalizeHeader:
    @pytest.mark.parametrize(
        "raw, expected",
        [
            ("YEAR", "year"),
            ("Year", "year"),
            ("year (first occurrence)", "year"),
            ("birth place (country)", "birthPlace"),
            ("birth place", "birthPlace"),
            ("Birth Place", "birthPlace"),
            ("team name", "teamName"),
            ("file size", "fileSize"),
            ("FILE SIZE", "fileSize"),
            (" city ", "city"),
            ("city,", "city"),
            ("birth_date", "birthDate"),
            ("Birth-Date", "birthDate"),
            ("name", "name"),
        ],
    )
    def test_examples(self, raw, expected):
        assert types.canonicalize_header(raw) == expected

    def test_empty_and_none(self):
        assert types.canonicalize_header("") == ""
        assert types.canonicalize_header(None) == ""
        assert types.canonicalize_header("   ") == ""
        assert types.canonicalize_header("(only parens)") == ""

    def test_every_registered_type_is_its_own_canonical_form(self):
        # Spacing out a camelCase label and re-canonicalising must return it.
        for name in types.SEMANTIC_TYPES:
            spaced = "".join(
                (" " + c.lower()) if c.isupper() else c for c in name
            )
            assert types.canonicalize_header(spaced) == name

    def test_parenthesised_content_removed_anywhere(self):
        assert types.canonicalize_header("weight (kg) total") == "weightTotal"

    @given(st.text(max_size=30))
    def test_never_raises_and_returns_string(self, raw):
        result = types.canonicalize_header(raw)
        assert isinstance(result, str)

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=15))
    def test_idempotent_on_single_words(self, word):
        once = types.canonicalize_header(word)
        assert types.canonicalize_header(once) == once
