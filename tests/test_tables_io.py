"""Tests for CSV / JSONL table persistence."""

from repro.tables import (
    Column,
    Table,
    table_from_csv,
    table_to_csv,
    tables_from_jsonl,
    tables_to_jsonl,
)
from repro.tables.io import iter_tables_from_jsonl


def _sample_table():
    return Table(
        columns=[
            Column(values=["Alice", "Bob"], header="name", semantic_type="name"),
            Column(values=["Paris", "Rome"], header="city", semantic_type="city"),
        ],
        table_id="sample",
    )


class TestCsv:
    def test_round_trip_with_header(self, tmp_path):
        path = tmp_path / "table.csv"
        table_to_csv(_sample_table(), path)
        loaded = table_from_csv(path)
        assert loaded.n_columns == 2
        assert loaded.columns[0].values == ["Alice", "Bob"]
        assert loaded.labels == ["name", "city"]

    def test_round_trip_without_header(self, tmp_path):
        path = tmp_path / "table.csv"
        table_to_csv(_sample_table(), path, write_header=False)
        loaded = table_from_csv(path, has_header=False)
        assert loaded.n_rows == 2
        assert loaded.labels == [None, None]

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        loaded = table_from_csv(path)
        assert loaded.n_columns == 0

    def test_table_id_defaults_to_stem(self, tmp_path):
        path = tmp_path / "mytable.csv"
        table_to_csv(_sample_table(), path)
        assert table_from_csv(path).table_id == "mytable"


class TestJsonl:
    def test_round_trip(self, tmp_path, corpus_small):
        path = tmp_path / "corpus.jsonl"
        written = tables_to_jsonl(corpus_small[:20], path)
        assert written == 20
        loaded = tables_from_jsonl(path)
        assert len(loaded) == 20
        assert loaded[0].labels == corpus_small[0].labels
        assert [c.values for c in loaded[3].columns] == [
            c.values for c in corpus_small[3].columns
        ]

    def test_iter_is_lazy_and_skips_blank_lines(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        tables_to_jsonl([_sample_table()], path)
        with path.open("a", encoding="utf-8") as handle:
            handle.write("\n")
        assert len(list(iter_tables_from_jsonl(path))) == 1

    def test_metadata_preserved(self, tmp_path):
        table = _sample_table()
        table.metadata["intent"] = "people"
        path = tmp_path / "one.jsonl"
        tables_to_jsonl([table], path)
        assert tables_from_jsonl(path)[0].metadata == {"intent": "people"}
