"""Units for the CI benchmark trend gate (``benchmarks/check_trend.py``).

The script lives next to the benchmarks (it is tooling, not library code),
so it is imported here by file path.  These tests cover the three
behaviours CI depends on: metric extraction against the committed baseline,
history merging across runs, and the >30%-regression failure gate.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parent.parent / "benchmarks" / "check_trend.py"
_spec = importlib.util.spec_from_file_location("check_trend", _SCRIPT)
check_trend = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_trend)


BASELINE = {
    "_comment": "documentation entries are ignored",
    "alpha": {"speedup": 4.0, "nested.rate": 2.0},
    "beta": {"speedup": 3.0},
}


@pytest.fixture()
def results_dir(tmp_path):
    directory = tmp_path / "results"
    directory.mkdir()
    (directory / "alpha.json").write_text(
        json.dumps({"speedup": 4.5, "nested": {"rate": 2.1}})
    )
    (directory / "beta.json").write_text(json.dumps({"speedup": 2.9}))
    return directory


class TestCollectMetrics:
    def test_extracts_dotted_paths(self, results_dir):
        metrics, missing = check_trend.collect_metrics(results_dir, BASELINE)
        assert metrics == {
            "alpha.speedup": 4.5,
            "alpha.nested.rate": 2.1,
            "beta.speedup": 2.9,
        }
        assert missing == []

    def test_reports_missing_files_and_paths(self, tmp_path, results_dir):
        baseline = dict(BASELINE, gamma={"speedup": 1.0})
        (results_dir / "alpha.json").write_text(json.dumps({"other": 1.0}))
        metrics, missing = check_trend.collect_metrics(results_dir, baseline)
        assert set(missing) == {"alpha.speedup", "alpha.nested.rate", "gamma.speedup"}
        assert metrics == {"beta.speedup": 2.9}

    def test_non_numeric_values_are_missing(self, results_dir):
        (results_dir / "beta.json").write_text(json.dumps({"speedup": "fast"}))
        metrics, missing = check_trend.collect_metrics(results_dir, BASELINE)
        assert "beta.speedup" in missing
        assert "beta.speedup" not in metrics


class TestRegressionGate:
    def test_within_tolerance_passes(self):
        metrics = {"alpha.speedup": 3.0}  # 25% below baseline 4.0
        assert check_trend.find_regressions(metrics, BASELINE, 0.30) == []

    def test_regression_beyond_tolerance_fails(self):
        metrics = {"alpha.speedup": 2.7}  # >30% below baseline 4.0
        failures = check_trend.find_regressions(metrics, BASELINE, 0.30)
        assert len(failures) == 1
        assert failures[0].startswith("alpha.speedup")

    def test_untracked_metrics_are_ignored(self):
        assert check_trend.find_regressions({}, BASELINE, 0.30) == []


class TestHistoryMerge:
    def test_appends_across_runs(self, tmp_path):
        history = tmp_path / "bench-history.json"
        check_trend.merge_history(history, {"run": "1", "metrics": {"a": 1.0}})
        entries = check_trend.merge_history(
            history, {"run": "2", "metrics": {"a": 2.0}}
        )
        assert [e["run"] for e in entries] == ["1", "2"]
        assert json.loads(history.read_text()) == entries

    def test_bounded(self, tmp_path):
        history = tmp_path / "bench-history.json"
        for index in range(check_trend.MAX_HISTORY_ENTRIES + 5):
            entries = check_trend.merge_history(history, {"run": str(index)})
        assert len(entries) == check_trend.MAX_HISTORY_ENTRIES
        assert entries[-1]["run"] == str(check_trend.MAX_HISTORY_ENTRIES + 4)


class TestMain:
    def test_passes_on_current_repo_shapes(self, results_dir, tmp_path, capsys):
        baseline_path = tmp_path / "baselines.json"
        baseline_path.write_text(json.dumps(BASELINE))
        arguments = ["--results-dir", str(results_dir)]
        arguments += ["--baseline", str(baseline_path)]
        arguments += ["--history", str(tmp_path / "history.json")]
        status = check_trend.main(arguments + ["--require-all"])
        assert status == 0
        assert "benchmark trend gate: OK" in capsys.readouterr().out

    def test_fails_on_regression(self, results_dir, tmp_path, capsys):
        baseline_path = tmp_path / "baselines.json"
        baseline_path.write_text(json.dumps({"beta": {"speedup": 10.0}}))
        arguments = ["--results-dir", str(results_dir)]
        arguments += ["--baseline", str(baseline_path)]
        arguments += ["--history", str(tmp_path / "history.json")]
        status = check_trend.main(arguments)
        assert status == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_missing_results_fail_only_with_require_all(self, tmp_path):
        baseline_path = tmp_path / "baselines.json"
        baseline_path.write_text(json.dumps({"gamma": {"speedup": 1.0}}))
        empty = tmp_path / "results"
        empty.mkdir()
        common = ["--results-dir", str(empty)]
        common += ["--baseline", str(baseline_path)]
        common += ["--history", str(tmp_path / "history.json")]
        assert check_trend.main(common) == 0
        assert check_trend.main(common + ["--require-all"]) == 1

    def test_committed_baseline_file_is_well_formed(self):
        baseline = json.loads(
            (_SCRIPT.parent / "baselines.json").read_text(encoding="utf-8")
        )
        tracked = {
            stem: entry for stem, entry in baseline.items() if isinstance(entry, dict)
        }
        assert "model_inference_throughput" in tracked
        assert "featurization_throughput" in tracked
        assert "serving_throughput" in tracked
        for entry in tracked.values():
            for value in entry.values():
                assert isinstance(value, (int, float)) and value > 0
