"""Declarative corpus spec: parsing, determinism, round-trip, suites.

The spec layer's contract is *reproducible evidence*: same spec + same seed
must produce bit-identical corpora (tables, labels, split assignment), and
every shipped suite spec must survive a parse -> serialize -> parse round
trip.  These are property-style checks run over every file under
``specs/``, so adding a suite automatically extends the coverage.
"""

from __future__ import annotations

import json
import unicodedata

import pytest

from repro.corpus import (
    CorpusSpec,
    SpecError,
    SpecRNG,
    build_corpus,
    build_suite,
    derive_seed,
    load_spec,
    parse_spec,
    pick,
    scale_spec,
)
from repro.corpus.suites import (
    SUITE_PRESETS,
    available_suites,
    load_suite_spec,
    suite_manifest,
)


def minimal_payload(**overrides) -> dict:
    payload = {
        "name": "demo",
        "seed": 11,
        "tables": [
            {
                "name": "people",
                "count": 3,
                "rows": {"min": 3, "max": 6},
                "columns": [
                    {"name": "name", "dtype": "text", "label": "name",
                     "generator": "semantic", "params": {"type": "name"}},
                    {"name": "age", "dtype": "int", "label": "age",
                     "generator": "int_range", "params": {"low": 10, "high": 90}},
                ],
            }
        ],
    }
    payload.update(overrides)
    return payload


# ---------------------------------------------------------------- SpecRNG


class TestSpecRNG:
    def test_same_path_same_stream(self):
        a = SpecRNG(13).child("tables", 0)
        b = SpecRNG(13).child("tables", 0)
        assert [a.integers(0, 1000) for _ in range(5)] == [
            b.integers(0, 1000) for _ in range(5)
        ]

    def test_different_paths_diverge(self):
        draws = {
            tuple(SpecRNG(13).child(*path).integers(0, 10**9) for _ in range(3))
            for path in [("a",), ("b",), ("a", 0), ("a", 1), (0, "a")]
        }
        assert len(draws) == 5

    def test_child_is_stable_under_parent_consumption(self):
        # Deriving a child consumes nothing from the parent, and the
        # parent's own draws never shift the child's stream.
        parent = SpecRNG(7, "spec")
        parent.random()
        late_child = parent.child("t", 0).integers(0, 10**9)
        fresh_child = SpecRNG(7, "spec").child("t", 0).integers(0, 10**9)
        assert late_child == fresh_child

    def test_derive_seed_deterministic_and_distinct(self):
        assert derive_seed(13, "a", 0) == derive_seed(13, "a", 0)
        assert derive_seed(13, "a", 0) != derive_seed(13, "a", 1)
        assert derive_seed(13, "a") != derive_seed(14, "a")

    def test_pick_matches_single_integers_draw(self):
        # The consolidated choice idiom must consume exactly one integers
        # draw — this is what keeps seeded corpora bit-identical after the
        # dedup refactor.
        import numpy as np

        items = ["a", "b", "c", "d", "e"]
        lhs = np.random.default_rng(42)
        rhs = np.random.default_rng(42)
        for _ in range(20):
            assert pick(lhs, items) == items[int(rhs.integers(0, len(items)))]


# ---------------------------------------------------------------- parsing


class TestParseValidation:
    def test_minimal_spec_parses(self):
        spec = parse_spec(minimal_payload())
        assert isinstance(spec, CorpusSpec)
        assert spec.tables[0].columns[1].dtype == "int"

    def test_missing_seed_rejected(self):
        payload = minimal_payload()
        del payload["seed"]
        with pytest.raises(SpecError, match="seed"):
            parse_spec(payload)

    def test_unknown_generator_rejected(self):
        payload = minimal_payload()
        payload["tables"][0]["columns"][0]["generator"] = "nope"
        with pytest.raises(SpecError, match="unknown generator"):
            parse_spec(payload)

    def test_dtype_generator_mismatch_rejected(self):
        payload = minimal_payload()
        payload["tables"][0]["columns"][1]["dtype"] = "text"
        with pytest.raises(SpecError, match="dtype"):
            parse_spec(payload)

    def test_unknown_label_rejected(self):
        payload = minimal_payload()
        payload["tables"][0]["columns"][0]["label"] = "not_a_type"
        with pytest.raises(SpecError, match="semantic type"):
            parse_spec(payload)

    def test_unknown_semantic_params_type_rejected(self):
        payload = minimal_payload()
        payload["tables"][0]["columns"][0]["params"] = {"type": "bogus"}
        with pytest.raises(SpecError, match="semantic"):
            parse_spec(payload)

    def test_duplicate_column_names_rejected(self):
        payload = minimal_payload()
        column = dict(payload["tables"][0]["columns"][0])
        payload["tables"][0]["columns"].append(column)
        with pytest.raises(SpecError, match="duplicate column"):
            parse_spec(payload)

    def test_duplicate_table_names_rejected(self):
        payload = minimal_payload()
        payload["tables"].append(dict(payload["tables"][0]))
        with pytest.raises(SpecError, match="duplicate table"):
            parse_spec(payload)

    def test_bad_missing_rate_rejected(self):
        payload = minimal_payload()
        payload["tables"][0]["columns"][0]["missing_rate"] = 1.0
        with pytest.raises(SpecError, match="missing_rate"):
            parse_spec(payload)

    def test_bad_rows_rejected(self):
        payload = minimal_payload()
        payload["tables"][0]["rows"] = {"min": 5, "max": 2}
        with pytest.raises(SpecError, match="rows"):
            parse_spec(payload)

    def test_unknown_transform_rejected(self):
        payload = minimal_payload()
        payload["tables"][0]["columns"][0]["transforms"] = [{"name": "zap"}]
        with pytest.raises(SpecError, match="unknown transform"):
            parse_spec(payload)

    def test_unknown_script_rejected(self):
        payload = minimal_payload()
        payload["tables"][0]["columns"][0] = {
            "name": "words", "generator": "unicode_text",
            "params": {"scripts": ["klingon"]},
        }
        with pytest.raises(SpecError, match="unknown script"):
            parse_spec(payload)

    def test_nested_mixed_rejected(self):
        payload = minimal_payload()
        payload["tables"][0]["columns"][0] = {
            "name": "soup", "generator": "mixed",
            "params": {"parts": [{"generator": "mixed", "params": {}}]},
        }
        with pytest.raises(SpecError, match="mixed"):
            parse_spec(payload)

    def test_scd_validation(self):
        payload = minimal_payload()
        payload["tables"][0]["scd"] = {
            "versions": 1, "changing_columns": ["age"],
        }
        with pytest.raises(SpecError, match="versions"):
            parse_spec(payload)
        payload["tables"][0]["scd"] = {
            "versions": 2, "changing_columns": ["ghost"],
        }
        with pytest.raises(SpecError, match="unknown column"):
            parse_spec(payload)

    def test_load_spec_rejects_bad_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(SpecError, match="cannot parse"):
            load_spec(path)

    def test_yaml_gate(self, tmp_path):
        # YAML support is optional (CI has no PyYAML): with the module
        # absent, loading a .yaml spec must fail with a clear SpecError
        # rather than an ImportError; with it present, it must parse.
        path = tmp_path / "spec.yaml"
        path.write_text(
            json.dumps(minimal_payload()), encoding="utf-8"
        )  # JSON is valid YAML
        try:
            import yaml  # noqa: F401
        except ImportError:
            with pytest.raises(SpecError, match="PyYAML"):
                load_spec(path)
        else:
            assert load_spec(path).name == "demo"


# ----------------------------------------------------------- determinism


class TestDeterminism:
    def test_double_build_bit_identical(self):
        spec = parse_spec(minimal_payload())
        first, second = build_corpus(spec), build_corpus(spec)
        assert first.split == second.split
        for a, b in zip(first.tables, second.tables):
            assert a.table_id == b.table_id
            assert a.metadata == b.metadata
            for col_a, col_b in zip(a.columns, b.columns):
                assert col_a.header == col_b.header
                assert col_a.semantic_type == col_b.semantic_type
                assert col_a.values == col_b.values

    def test_adding_a_table_spec_does_not_shift_others(self):
        base = parse_spec(minimal_payload())
        extended_payload = minimal_payload()
        extended_payload["tables"].append(
            {
                "name": "extra",
                "count": 2,
                "columns": [
                    {"name": "code", "generator": "pattern",
                     "params": {"pattern": "AA-##"}},
                ],
            }
        )
        extended = parse_spec(extended_payload)
        base_tables = build_corpus(base).tables
        extended_tables = build_corpus(extended).tables[: len(base_tables)]
        for a, b in zip(base_tables, extended_tables):
            assert a.table_id == b.table_id
            assert [c.values for c in a.columns] == [c.values for c in b.columns]

    def test_split_assignment_is_deterministic_and_partitioned(self):
        spec = parse_spec(minimal_payload())
        bundle = build_corpus(spec)
        assert set(bundle.split.values()) <= {"train", "test"}
        assert sorted(bundle.split) == sorted(t.table_id for t in bundle.tables)
        assert len(bundle.train_tables) + len(bundle.test_tables) == len(
            bundle.tables
        )

    def test_extreme_test_fraction(self):
        all_test = parse_spec(
            minimal_payload(split={"test_fraction": 1.0, "seed": 1})
        )
        assert not build_corpus(all_test).train_tables
        all_train = parse_spec(
            minimal_payload(split={"test_fraction": 0.0, "seed": 1})
        )
        assert not build_corpus(all_train).test_tables

    def test_missing_rate_yields_empty_cells(self):
        payload = minimal_payload()
        payload["tables"][0]["columns"][0]["missing_rate"] = 0.5
        payload["tables"][0]["count"] = 6
        bundle = build_corpus(parse_spec(payload))
        values = [v for t in bundle.tables for v in t.columns[0].values]
        assert "" in values and any(values)


# ------------------------------------------------------------ round trip


def test_round_trip_equivalence_for_minimal_spec():
    spec = parse_spec(minimal_payload())
    assert parse_spec(spec.to_dict()) == spec


@pytest.mark.parametrize("name", sorted(available_suites()))
def test_shipped_spec_round_trips(name):
    spec = load_suite_spec(name)
    again = parse_spec(spec.to_dict())
    assert again == spec
    # And the round-tripped spec builds the identical corpus.
    first, second = build_corpus(spec), build_corpus(again)
    assert first.split == second.split
    assert [
        (t.table_id, [c.values for c in t.columns]) for t in first.tables
    ] == [(t.table_id, [c.values for c in t.columns]) for t in second.tables]


# ---------------------------------------------------------------- suites


def test_at_least_six_suites_shipped():
    assert len(available_suites()) >= 6


@pytest.mark.parametrize("name", sorted(available_suites()))
def test_suite_manifest_is_complete(name):
    manifest = suite_manifest(name)
    difficulty = manifest["difficulty"]
    assert manifest["name"] == name
    assert manifest["description"]
    assert difficulty["expected"]
    assert difficulty["axes"]
    assert 0.0 <= float(difficulty["suggested_floor"]) <= 1.0


@pytest.mark.parametrize("name", sorted(available_suites()))
def test_suite_builds_deterministically_at_tiny_preset(name):
    first = build_suite(name, "tiny")
    second = build_suite(name, "tiny")
    assert [t.table_id for t in first.tables] == [t.table_id for t in second.tables]
    assert first.split == second.split
    for a, b in zip(first.tables, second.tables):
        assert [c.values for c in a.columns] == [c.values for c in b.columns]
    # Every labelled column carries a valid semantic type for scoring.
    labelled = [
        c for t in first.tables for c in t.columns if c.semantic_type is not None
    ]
    assert labelled


def test_tiny_preset_shrinks_counts_and_caps_rows():
    for name in available_suites():
        spec = load_suite_spec(name)
        tiny = scale_spec(spec, "tiny")
        cap = SUITE_PRESETS["tiny"]["max_rows_cap"]
        for full_table, tiny_table in zip(spec.tables, tiny.tables):
            assert tiny_table.count <= full_table.count
            assert tiny_table.count >= 1
            if tiny_table.rows.choices is not None:
                assert max(tiny_table.rows.choices) <= cap
            else:
                assert tiny_table.rows.max_rows <= cap


def test_unknown_suite_and_preset_raise():
    with pytest.raises(KeyError, match="unknown suite"):
        load_suite_spec("nope")
    with pytest.raises(KeyError, match="unknown preset"):
        scale_spec(load_suite_spec("clean_baseline"), "huge")


def test_specs_dir_env_override(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SPECS_DIR", str(tmp_path))
    assert available_suites() == {}
    (tmp_path / "only.json").write_text(
        json.dumps(minimal_payload(name="only")), encoding="utf-8"
    )
    assert list(available_suites()) == ["only"]
    assert load_suite_spec("only").name == "only"


# ------------------------------------------------------------------- scd


def test_scd_versions_share_keys_and_stamp_valid_from():
    payload = minimal_payload()
    payload["tables"][0]["count"] = 2
    payload["tables"][0]["scd"] = {
        "versions": 3,
        "change_rate": 1.0,
        "key_columns": ["name"],
        "changing_columns": ["age"],
        "valid_from_column": "validFrom",
        "start_year": 2019,
    }
    bundle = build_corpus(parse_spec(payload))
    assert len(bundle.tables) == 6  # 2 base tables x 3 versions
    by_base: dict[str, list] = {}
    for table in bundle.tables:
        base_id, _, version = table.table_id.partition("@v")
        assert version in {"1", "2", "3"}
        by_base.setdefault(base_id, []).append((int(version), table))
    for versions in by_base.values():
        versions.sort()
        v1 = versions[0][1]
        for version_number, table in versions:
            # The business key column is stable across versions...
            assert table.columns[0].values == v1.columns[0].values
            # ...the validFrom column is stamped with the effective year
            # and labelled as one.
            valid_from = table.columns[-1]
            assert valid_from.header == "validFrom"
            assert valid_from.semantic_type == "year"
            assert set(valid_from.values) == {str(2018 + version_number)}
            assert table.metadata["scd_version"] == version_number
        # change_rate=1.0 regenerates the tracked column every version.
        assert versions[1][1].columns[1].values != v1.columns[1].values


# ------------------------------------------------------------ transforms


def test_accent_decompose_emits_combining_marks():
    payload = minimal_payload()
    payload["tables"][0]["columns"] = [
        {
            "name": "city", "generator": "choice",
            "params": {"values": ["montreal"]},
            "transforms": [
                {"name": "accent", "params": {"rate": 1.0, "decompose": True}}
            ],
        }
    ]
    payload["tables"][0]["count"] = 1
    bundle = build_corpus(parse_spec(payload))
    value = bundle.tables[0].columns[0].values[0]
    assert value != "montreal"
    assert any(unicodedata.combining(ch) for ch in value)


def test_wrap_transform_applies_affixes():
    payload = minimal_payload()
    payload["tables"][0]["columns"] = [
        {
            "name": "amount", "dtype": "decimal", "generator": "decimal_range",
            "params": {"low": 1, "high": 2, "scale": 1},
            "transforms": [
                {"name": "wrap", "params": {"prefix": "$", "rate": 1.0}}
            ],
        }
    ]
    bundle = build_corpus(parse_spec(payload))
    for table in bundle.tables:
        assert all(v.startswith("$") for v in table.columns[0].values)
