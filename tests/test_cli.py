"""Tests for the command line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.tables import Column, Table, table_to_csv, tables_from_jsonl


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(["generate", "--out", "x.jsonl", "--n-tables", "7"])
        assert args.command == "generate"
        assert args.n_tables == 7

    def test_evaluate_variant_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evaluate", "--corpus", "c.jsonl", "--variant", "Nope"])

    def test_serve_args_and_defaults(self):
        args = build_parser().parse_args(
            ["serve", "--model", "bundle/", "--port", "9000",
             "--max-batch-size", "16", "--max-wait-ms", "5"]
        )
        assert args.command == "serve"
        assert args.model == "bundle/"
        assert args.port == 9000
        assert args.max_batch_size == 16
        assert args.max_wait_ms == 5.0
        assert args.max_queue == 256
        assert args.cache_size == 4096
        assert args.feature_backend == "vectorized"
        assert args.workers == 0
        assert args.model_backend == "batched"
        assert args.log_format == "text"

    def test_serve_log_format_choices(self):
        args = build_parser().parse_args(
            ["serve", "--model", "bundle/", "--log-format", "json"]
        )
        assert args.log_format == "json"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "--model", "bundle/", "--log-format", "xml"]
            )

    def test_profile_args_and_defaults(self):
        args = build_parser().parse_args(["profile", "--model", "bundle/"])
        assert args.command == "profile"
        assert args.suite == "clean_baseline"
        assert args.suite_preset == "tiny"
        assert args.batch_size == 8
        assert args.json_out is None
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile"])  # --model is required

    def test_model_backend_choices(self):
        args = build_parser().parse_args(
            ["predict", "--model", "bundle/", "--csv", "t.csv",
             "--model-backend", "loop"]
        )
        assert args.model_backend == "loop"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["predict", "--model", "bundle/", "--csv", "t.csv",
                 "--model-backend", "turbo"]
            )

    def test_serve_requires_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_serve_model_and_registry_are_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "--model", "bundle/", "--registry", "reg/"]
            )

    def test_serve_registry_mode_args(self):
        args = build_parser().parse_args(
            ["serve", "--registry", "reg/", "--model-name", "sato",
             "--watch-interval", "0.5", "--shadow-version", "v0002",
             "--shadow-fraction", "0.25"]
        )
        assert args.registry == "reg/" and args.model is None
        assert args.model_name == "sato"
        assert args.watch_interval == 0.5
        assert args.shadow_version == "v0002"
        assert args.shadow_fraction == 0.25

    def test_registry_subcommands_parse(self):
        publish = build_parser().parse_args(
            ["registry", "publish", "--registry", "reg/", "--name", "sato",
             "--model", "bundle/", "--metric", "macro_f1=0.9"]
        )
        assert publish.registry_command == "publish"
        assert publish.metric == ["macro_f1=0.9"]
        promote = build_parser().parse_args(
            ["registry", "promote", "--registry", "reg/", "--name", "sato",
             "--version", "v0002", "--gate", "--eval-set", "eval.jsonl"]
        )
        assert promote.gate and promote.eval_set == "eval.jsonl"
        assert promote.min_f1 > 0 and promote.min_agreement > 0
        for command in (["rollback"], ["list"], ["gc", "--keep", "3"]):
            args = build_parser().parse_args(
                ["registry", command[0], "--registry", "reg/",
                 *([] if command[0] == "list" else ["--name", "sato"]),
                 *command[1:]]
            )
            assert args.registry_command == command[0]
        with pytest.raises(SystemExit):
            build_parser().parse_args(["registry"])

    def test_evaluate_accepts_model_bundle(self):
        args = build_parser().parse_args(
            ["evaluate", "--model", "bundle/", "--corpus", "eval.jsonl"]
        )
        assert args.model == "bundle/" and args.corpus == "eval.jsonl"

    def test_generate_spec_args(self):
        args = build_parser().parse_args(
            ["generate", "--spec", "specs/unicode_heavy.json",
             "--out", "x.jsonl", "--split-out", "x.split.json"]
        )
        assert args.spec == "specs/unicode_heavy.json"
        assert args.split_out == "x.split.json"

    def test_evaluate_suite_args(self):
        args = build_parser().parse_args(
            ["evaluate", "--model", "bundle/", "--suite", "all",
             "--suite-preset", "full", "--json", "out.json"]
        )
        assert args.suite == "all" and args.suite_preset == "full"
        assert args.json_out == "out.json"
        assert args.corpus is None  # --corpus is optional in suite mode
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["evaluate", "--model", "b/", "--suite", "all",
                 "--suite-preset", "huge"]
            )

    def test_suites_args(self):
        args = build_parser().parse_args(["suites", "--json"])
        assert args.command == "suites" and args.json_out
        assert not build_parser().parse_args(["suites"]).json_out

    def test_promote_suite_gate_args(self):
        args = build_parser().parse_args(
            ["registry", "promote", "--registry", "reg/", "--name", "sato",
             "--version", "v0002", "--gate", "--eval-set", "eval.jsonl",
             "--suite", "unicode_heavy", "--suite", "dirty_columns:0.1",
             "--suite-preset", "tiny", "--suite-tolerance", "0.02"]
        )
        assert args.suite == ["unicode_heavy", "dirty_columns:0.1"]
        assert args.suite_preset == "tiny"
        assert args.suite_tolerance == 0.02
        # Default: no suite gates configured.
        bare = build_parser().parse_args(
            ["registry", "promote", "--registry", "reg/", "--name", "sato",
             "--version", "v0002"]
        )
        assert bare.suite == []


class TestCommands:
    def test_generate_writes_corpus(self, tmp_path, capsys):
        out = tmp_path / "corpus.jsonl"
        exit_code = main(["generate", "--n-tables", "12", "--out", str(out)])
        assert exit_code == 0
        assert len(tables_from_jsonl(out)) == 12
        assert "wrote 12 tables" in capsys.readouterr().out

    def test_evaluate_small_corpus(self, tmp_path, capsys):
        out = tmp_path / "corpus.jsonl"
        main(["generate", "--n-tables", "40", "--seed", "3", "--singleton-rate", "0.1", "--out", str(out)])
        exit_code = main(
            [
                "evaluate",
                "--corpus",
                str(out),
                "--variant",
                "Base",
                "--k",
                "2",
                "--epochs",
                "3",
                "--multi-column-only",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "macro F1" in output

    def test_evaluate_model_bundle_without_retraining(self, tmp_path, capsys):
        corpus = tmp_path / "corpus.jsonl"
        main(["generate", "--n-tables", "40", "--seed", "6", "--out", str(corpus)])
        bundle = tmp_path / "bundle"
        main(["train", "--corpus", str(corpus), "--out", str(bundle),
              "--variant", "Base", "--epochs", "2"])
        capsys.readouterr()
        exit_code = main(["evaluate", "--model", str(bundle), "--corpus", str(corpus)])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "macro F1" in output and "held-out" in output

    def test_profile_replays_suite_and_writes_report(self, tmp_path, capsys):
        corpus = tmp_path / "corpus.jsonl"
        main(["generate", "--n-tables", "40", "--seed", "6", "--out", str(corpus)])
        bundle = tmp_path / "bundle"
        main(["train", "--corpus", str(corpus), "--out", str(bundle),
              "--variant", "Base", "--epochs", "2"])
        capsys.readouterr()
        report_path = tmp_path / "profile_report.json"
        exit_code = main(["profile", "--model", str(bundle),
                          "--suite", "clean_baseline", "--suite-preset", "tiny",
                          "--json", str(report_path)])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert output.startswith("stage")
        assert "featurize" in output and "coverage:" in output
        report = json.loads(report_path.read_text())
        assert report["suite"] == "clean_baseline"
        assert report["n_tables"] > 0
        assert 0.0 < report["coverage"] <= 1.0
        assert set(report["stage_shares"]) >= {"featurize", "forward", "decode"}

    def test_profile_rejects_bad_usage(self, tmp_path, capsys):
        assert main(["profile", "--model", str(tmp_path / "nope"),
                     "--suite", "not_a_suite"]) == 2
        assert "cannot build suite" in capsys.readouterr().err
        assert main(["profile", "--model", str(tmp_path / "nope"),
                     "--batch-size", "0"]) == 2
        assert main(["profile", "--model", str(tmp_path / "nope")]) == 2
        assert "cannot load model bundle" in capsys.readouterr().err

    def test_registry_lifecycle_commands(self, tmp_path, capsys):
        corpus = tmp_path / "corpus.jsonl"
        main(["generate", "--n-tables", "40", "--seed", "6", "--out", str(corpus)])
        bundle = tmp_path / "bundle"
        main(["train", "--corpus", str(corpus), "--out", str(bundle),
              "--variant", "Base", "--epochs", "2"])
        registry = str(tmp_path / "registry")
        base = ["registry", "publish", "--registry", registry, "--name", "sato",
                "--model", str(bundle)]
        assert main(base + ["--metric", "macro_f1=0.4"]) == 0
        capsys.readouterr()

        # Ungated promote, then a gate that must refuse (impossible F1).
        assert main(["registry", "promote", "--registry", registry,
                     "--name", "sato", "--version", "v0001"]) == 0
        assert main(base) == 0  # published after the promote: parent=v0001
        refused = main(["registry", "promote", "--registry", registry,
                        "--name", "sato", "--version", "v0002",
                        "--gate", "--eval-set", str(corpus),
                        "--min-f1", "1.01"])
        assert refused == 1
        # A passable gate: thresholds at zero always clear.
        assert main(["registry", "promote", "--registry", registry,
                     "--name", "sato", "--version", "v0002",
                     "--gate", "--eval-set", str(corpus),
                     "--min-f1", "0", "--min-agreement", "0"]) == 0
        capsys.readouterr()

        assert main(["registry", "list", "--registry", registry]) == 0
        listing = capsys.readouterr().out
        assert "* v0002" in listing and "parent=v0001" in listing

        assert main(["registry", "rollback", "--registry", registry,
                     "--name", "sato"]) == 0
        assert main(["registry", "gc", "--registry", registry,
                     "--name", "sato", "--keep", "0"]) == 0
        capsys.readouterr()
        assert main(["registry", "list", "--registry", registry]) == 0
        listing = capsys.readouterr().out
        assert "* v0001" in listing and "v0002" not in listing

    def test_generate_from_spec_is_deterministic(self, tmp_path, capsys):
        first = tmp_path / "first.jsonl"
        second = tmp_path / "second.jsonl"
        split_path = tmp_path / "split.json"
        assert main(["generate", "--spec", "specs/clean_baseline.json",
                     "--out", str(first), "--split-out", str(split_path)]) == 0
        assert main(["generate", "--spec", "specs/clean_baseline.json",
                     "--out", str(second)]) == 0
        assert first.read_text() == second.read_text()
        assert "spec clean_baseline" in capsys.readouterr().out
        split = json.loads(split_path.read_text())
        tables = tables_from_jsonl(first)
        assert sorted(split) == sorted(t.table_id for t in tables)
        assert set(split.values()) <= {"train", "test"}

    def test_generate_rejects_bad_spec_usage(self, tmp_path, capsys):
        assert main(["generate", "--out", str(tmp_path / "x.jsonl"),
                     "--split-out", str(tmp_path / "s.json")]) == 2
        assert "--split-out requires --spec" in capsys.readouterr().err
        assert main(["generate", "--spec", str(tmp_path / "missing.json"),
                     "--out", str(tmp_path / "x.jsonl")]) == 2
        assert "cannot load spec" in capsys.readouterr().err

    def test_suites_command_lists_manifests(self, capsys):
        assert main(["suites"]) == 0
        listing = capsys.readouterr().out
        assert "unicode_heavy" in listing and "axes:" in listing
        assert main(["suites", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) >= 6
        assert payload["dirty_columns"]["difficulty"]["expected"]

    @pytest.fixture(scope="class")
    def trained_bundle(self, tmp_path_factory):
        """One tiny trained bundle + its corpus, shared by the suite tests."""
        root = tmp_path_factory.mktemp("suite-cli")
        corpus = root / "corpus.jsonl"
        main(["generate", "--n-tables", "40", "--seed", "6", "--out", str(corpus)])
        bundle = root / "bundle"
        main(["train", "--corpus", str(corpus), "--out", str(bundle),
              "--variant", "Base", "--epochs", "2"])
        return bundle, corpus

    def test_evaluate_suite_reports_per_suite_f1(
        self, trained_bundle, tmp_path, capsys
    ):
        bundle, _ = trained_bundle
        json_out = tmp_path / "suites.json"
        capsys.readouterr()
        assert main(["evaluate", "--model", str(bundle), "--suite", "all",
                     "--suite-preset", "tiny", "--json", str(json_out)]) == 0
        output = capsys.readouterr().out
        assert output.count("macro F1=") >= 6
        payload = json.loads(json_out.read_text())
        for report in payload.values():
            assert 0.0 <= report["macro_f1"] <= 1.0
            assert report["preset"] == "tiny" and report["n_columns"] > 0
        # One named suite also works, and bad usage is rejected cleanly.
        assert main(["evaluate", "--model", str(bundle),
                     "--suite", "unicode_heavy"]) == 0
        capsys.readouterr()
        assert main(["evaluate", "--suite", "all"]) == 2
        assert "--suite requires --model" in capsys.readouterr().err
        assert main(["evaluate", "--model", str(bundle), "--suite", "nope"]) == 2
        assert "unknown suite" in capsys.readouterr().err

    def test_suite_gated_promote_lifecycle(self, trained_bundle, tmp_path, capsys):
        """End-to-end: a failing suite gate aborts atomically with evidence.

        publish v1 -> promote -> publish v2 -> gated promote with an
        impossible suite floor (refused: exit 1, pointer untouched, failed
        evidence in GATE_LOG.json) -> gated promote with a clearable floor
        (pointer flips, per-suite evidence in CURRENT.json).
        """
        bundle, corpus = trained_bundle
        registry = tmp_path / "registry"
        publish = ["registry", "publish", "--registry", str(registry),
                   "--name", "sato", "--model", str(bundle)]
        assert main(publish) == 0
        assert main(["registry", "promote", "--registry", str(registry),
                     "--name", "sato", "--version", "v0001"]) == 0
        assert main(publish) == 0
        capsys.readouterr()

        # --suite without --gate is rejected before any work happens.
        assert main(["registry", "promote", "--registry", str(registry),
                     "--name", "sato", "--version", "v0002",
                     "--suite", "clean_baseline"]) == 2
        assert "--suite requires --gate" in capsys.readouterr().err

        gated = ["registry", "promote", "--registry", str(registry),
                 "--name", "sato", "--version", "v0002",
                 "--gate", "--eval-set", str(corpus),
                 "--min-f1", "0", "--min-agreement", "0",
                 "--suite-tolerance", "1.0"]
        current_path = registry / "sato" / "CURRENT.json"
        before = current_path.read_text()

        assert main(gated + ["--suite", "unknown_suite"]) == 2
        assert "unknown suite" in capsys.readouterr().err

        refused = main(gated + ["--suite", "clean_baseline:1.01"])
        captured = capsys.readouterr()
        assert refused == 1
        assert "REFUSED" in captured.err and "below floor" in captured.err
        # Atomic abort: the promotion pointer is byte-identical.
        assert current_path.read_text() == before
        log = json.loads((registry / "sato" / "GATE_LOG.json").read_text())
        assert len(log["entries"]) == 1
        failed = log["entries"][0]
        assert failed["version"] == "v0002"
        assert not failed["gate"]["passed"]
        assert failed["gate"]["suites"][0]["suite"] == "clean_baseline"
        assert failed["gate"]["suites"][0]["reasons"]

        passed = main(gated + ["--suite", "clean_baseline:0.0",
                               "--suite", "unicode_heavy:0.0"])
        captured = capsys.readouterr()
        assert passed == 0
        assert "promoted sato/v0002" in captured.out
        assert captured.out.count("gate suite") == 2
        pointer = json.loads(current_path.read_text())
        assert pointer["version"] == "v0002"
        suites = {s["suite"]: s for s in pointer["gate"]["suites"]}
        assert set(suites) == {"clean_baseline", "unicode_heavy"}
        assert all(s["passed"] for s in suites.values())
        log = json.loads((registry / "sato" / "GATE_LOG.json").read_text())
        assert [e["gate"]["passed"] for e in log["entries"]] == [False, True]

    def test_predict_on_csv(self, tmp_path, capsys):
        corpus_path = tmp_path / "corpus.jsonl"
        main(["generate", "--n-tables", "40", "--seed", "4", "--singleton-rate", "0.1", "--out", str(corpus_path)])
        table = Table(
            columns=[
                Column(values=["Alice Smith", "Bob Jones"], header="who"),
                Column(values=["Paris", "Rome"], header="where"),
            ]
        )
        csv_path = tmp_path / "table.csv"
        table_to_csv(table, csv_path)
        exit_code = main(
            ["predict", "--corpus", str(corpus_path), "--csv", str(csv_path), "--epochs", "3"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "->" in output
        assert output.count("->") == 2
