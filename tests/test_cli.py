"""Tests for the command line interface."""

import pytest

from repro.cli import build_parser, main
from repro.tables import Column, Table, table_to_csv, tables_from_jsonl


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(["generate", "--out", "x.jsonl", "--n-tables", "7"])
        assert args.command == "generate"
        assert args.n_tables == 7

    def test_evaluate_variant_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evaluate", "--corpus", "c.jsonl", "--variant", "Nope"])

    def test_serve_args_and_defaults(self):
        args = build_parser().parse_args(
            ["serve", "--model", "bundle/", "--port", "9000",
             "--max-batch-size", "16", "--max-wait-ms", "5"]
        )
        assert args.command == "serve"
        assert args.model == "bundle/"
        assert args.port == 9000
        assert args.max_batch_size == 16
        assert args.max_wait_ms == 5.0
        assert args.max_queue == 256
        assert args.cache_size == 4096
        assert args.feature_backend == "vectorized"
        assert args.workers == 0
        assert args.model_backend == "batched"

    def test_model_backend_choices(self):
        args = build_parser().parse_args(
            ["predict", "--model", "bundle/", "--csv", "t.csv",
             "--model-backend", "loop"]
        )
        assert args.model_backend == "loop"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["predict", "--model", "bundle/", "--csv", "t.csv",
                 "--model-backend", "turbo"]
            )

    def test_serve_requires_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])


class TestCommands:
    def test_generate_writes_corpus(self, tmp_path, capsys):
        out = tmp_path / "corpus.jsonl"
        exit_code = main(["generate", "--n-tables", "12", "--out", str(out)])
        assert exit_code == 0
        assert len(tables_from_jsonl(out)) == 12
        assert "wrote 12 tables" in capsys.readouterr().out

    def test_evaluate_small_corpus(self, tmp_path, capsys):
        out = tmp_path / "corpus.jsonl"
        main(["generate", "--n-tables", "40", "--seed", "3", "--singleton-rate", "0.1", "--out", str(out)])
        exit_code = main(
            [
                "evaluate",
                "--corpus",
                str(out),
                "--variant",
                "Base",
                "--k",
                "2",
                "--epochs",
                "3",
                "--multi-column-only",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "macro F1" in output

    def test_predict_on_csv(self, tmp_path, capsys):
        corpus_path = tmp_path / "corpus.jsonl"
        main(["generate", "--n-tables", "40", "--seed", "4", "--singleton-rate", "0.1", "--out", str(corpus_path)])
        table = Table(
            columns=[
                Column(values=["Alice Smith", "Bob Jones"], header="who"),
                Column(values=["Paris", "Rome"], header="where"),
            ]
        )
        csv_path = tmp_path / "table.csv"
        table_to_csv(table, csv_path)
        exit_code = main(
            ["predict", "--corpus", str(corpus_path), "--csv", str(csv_path), "--epochs", "3"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "->" in output
        assert output.count("->") == 2
