"""Tests for the command line interface."""

import pytest

from repro.cli import build_parser, main
from repro.tables import Column, Table, table_to_csv, tables_from_jsonl


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(["generate", "--out", "x.jsonl", "--n-tables", "7"])
        assert args.command == "generate"
        assert args.n_tables == 7

    def test_evaluate_variant_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evaluate", "--corpus", "c.jsonl", "--variant", "Nope"])

    def test_serve_args_and_defaults(self):
        args = build_parser().parse_args(
            ["serve", "--model", "bundle/", "--port", "9000",
             "--max-batch-size", "16", "--max-wait-ms", "5"]
        )
        assert args.command == "serve"
        assert args.model == "bundle/"
        assert args.port == 9000
        assert args.max_batch_size == 16
        assert args.max_wait_ms == 5.0
        assert args.max_queue == 256
        assert args.cache_size == 4096
        assert args.feature_backend == "vectorized"
        assert args.workers == 0
        assert args.model_backend == "batched"

    def test_model_backend_choices(self):
        args = build_parser().parse_args(
            ["predict", "--model", "bundle/", "--csv", "t.csv",
             "--model-backend", "loop"]
        )
        assert args.model_backend == "loop"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["predict", "--model", "bundle/", "--csv", "t.csv",
                 "--model-backend", "turbo"]
            )

    def test_serve_requires_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_serve_model_and_registry_are_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "--model", "bundle/", "--registry", "reg/"]
            )

    def test_serve_registry_mode_args(self):
        args = build_parser().parse_args(
            ["serve", "--registry", "reg/", "--model-name", "sato",
             "--watch-interval", "0.5", "--shadow-version", "v0002",
             "--shadow-fraction", "0.25"]
        )
        assert args.registry == "reg/" and args.model is None
        assert args.model_name == "sato"
        assert args.watch_interval == 0.5
        assert args.shadow_version == "v0002"
        assert args.shadow_fraction == 0.25

    def test_registry_subcommands_parse(self):
        publish = build_parser().parse_args(
            ["registry", "publish", "--registry", "reg/", "--name", "sato",
             "--model", "bundle/", "--metric", "macro_f1=0.9"]
        )
        assert publish.registry_command == "publish"
        assert publish.metric == ["macro_f1=0.9"]
        promote = build_parser().parse_args(
            ["registry", "promote", "--registry", "reg/", "--name", "sato",
             "--version", "v0002", "--gate", "--eval-set", "eval.jsonl"]
        )
        assert promote.gate and promote.eval_set == "eval.jsonl"
        assert promote.min_f1 > 0 and promote.min_agreement > 0
        for command in (["rollback"], ["list"], ["gc", "--keep", "3"]):
            args = build_parser().parse_args(
                ["registry", command[0], "--registry", "reg/",
                 *([] if command[0] == "list" else ["--name", "sato"]),
                 *command[1:]]
            )
            assert args.registry_command == command[0]
        with pytest.raises(SystemExit):
            build_parser().parse_args(["registry"])

    def test_evaluate_accepts_model_bundle(self):
        args = build_parser().parse_args(
            ["evaluate", "--model", "bundle/", "--corpus", "eval.jsonl"]
        )
        assert args.model == "bundle/" and args.corpus == "eval.jsonl"


class TestCommands:
    def test_generate_writes_corpus(self, tmp_path, capsys):
        out = tmp_path / "corpus.jsonl"
        exit_code = main(["generate", "--n-tables", "12", "--out", str(out)])
        assert exit_code == 0
        assert len(tables_from_jsonl(out)) == 12
        assert "wrote 12 tables" in capsys.readouterr().out

    def test_evaluate_small_corpus(self, tmp_path, capsys):
        out = tmp_path / "corpus.jsonl"
        main(["generate", "--n-tables", "40", "--seed", "3", "--singleton-rate", "0.1", "--out", str(out)])
        exit_code = main(
            [
                "evaluate",
                "--corpus",
                str(out),
                "--variant",
                "Base",
                "--k",
                "2",
                "--epochs",
                "3",
                "--multi-column-only",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "macro F1" in output

    def test_evaluate_model_bundle_without_retraining(self, tmp_path, capsys):
        corpus = tmp_path / "corpus.jsonl"
        main(["generate", "--n-tables", "40", "--seed", "6", "--out", str(corpus)])
        bundle = tmp_path / "bundle"
        main(["train", "--corpus", str(corpus), "--out", str(bundle),
              "--variant", "Base", "--epochs", "2"])
        capsys.readouterr()
        exit_code = main(["evaluate", "--model", str(bundle), "--corpus", str(corpus)])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "macro F1" in output and "held-out" in output

    def test_registry_lifecycle_commands(self, tmp_path, capsys):
        corpus = tmp_path / "corpus.jsonl"
        main(["generate", "--n-tables", "40", "--seed", "6", "--out", str(corpus)])
        bundle = tmp_path / "bundle"
        main(["train", "--corpus", str(corpus), "--out", str(bundle),
              "--variant", "Base", "--epochs", "2"])
        registry = str(tmp_path / "registry")
        base = ["registry", "publish", "--registry", registry, "--name", "sato",
                "--model", str(bundle)]
        assert main(base + ["--metric", "macro_f1=0.4"]) == 0
        capsys.readouterr()

        # Ungated promote, then a gate that must refuse (impossible F1).
        assert main(["registry", "promote", "--registry", registry,
                     "--name", "sato", "--version", "v0001"]) == 0
        assert main(base) == 0  # published after the promote: parent=v0001
        refused = main(["registry", "promote", "--registry", registry,
                        "--name", "sato", "--version", "v0002",
                        "--gate", "--eval-set", str(corpus),
                        "--min-f1", "1.01"])
        assert refused == 1
        # A passable gate: thresholds at zero always clear.
        assert main(["registry", "promote", "--registry", registry,
                     "--name", "sato", "--version", "v0002",
                     "--gate", "--eval-set", str(corpus),
                     "--min-f1", "0", "--min-agreement", "0"]) == 0
        capsys.readouterr()

        assert main(["registry", "list", "--registry", registry]) == 0
        listing = capsys.readouterr().out
        assert "* v0002" in listing and "parent=v0001" in listing

        assert main(["registry", "rollback", "--registry", registry,
                     "--name", "sato"]) == 0
        assert main(["registry", "gc", "--registry", registry,
                     "--name", "sato", "--keep", "0"]) == 0
        capsys.readouterr()
        assert main(["registry", "list", "--registry", registry]) == 0
        listing = capsys.readouterr().out
        assert "* v0001" in listing and "v0002" not in listing

    def test_predict_on_csv(self, tmp_path, capsys):
        corpus_path = tmp_path / "corpus.jsonl"
        main(["generate", "--n-tables", "40", "--seed", "4", "--singleton-rate", "0.1", "--out", str(corpus_path)])
        table = Table(
            columns=[
                Column(values=["Alice Smith", "Bob Jones"], header="who"),
                Column(values=["Paris", "Rome"], header="where"),
            ]
        )
        csv_path = tmp_path / "table.csv"
        table_to_csv(table, csv_path)
        exit_code = main(
            ["predict", "--corpus", str(corpus_path), "--csv", str(csv_path), "--epochs", "3"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "->" in output
        assert output.count("->") == 2
