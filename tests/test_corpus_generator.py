"""Tests for the corpus generator."""

import pytest

from repro.corpus import CorpusConfig, CorpusGenerator, generate_corpus
from repro.corpus.config import NoiseConfig
from repro.corpus.schemas import schema_by_name
from repro.types import TYPE_TO_INDEX


class TestConfigValidation:
    def test_default_is_valid(self):
        CorpusConfig().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_tables": 0},
            {"min_rows": 0},
            {"min_rows": 10, "max_rows": 5},
            {"singleton_rate": 1.0},
            {"schema_weight_power": 0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CorpusConfig(**kwargs).validate()


class TestGeneration:
    def test_table_count(self):
        corpus = generate_corpus(n_tables=25, seed=3)
        assert len(corpus) == 25

    def test_determinism(self):
        a = generate_corpus(n_tables=15, seed=9)
        b = generate_corpus(n_tables=15, seed=9)
        for table_a, table_b in zip(a, b):
            assert table_a.labels == table_b.labels
            assert [c.values for c in table_a.columns] == [c.values for c in table_b.columns]

    def test_different_seeds_differ(self):
        a = generate_corpus(n_tables=15, seed=1)
        b = generate_corpus(n_tables=15, seed=2)
        assert any(
            ta.labels != tb.labels or
            [c.values for c in ta.columns] != [c.values for c in tb.columns]
            for ta, tb in zip(a, b)
        )

    def test_all_labels_valid(self, corpus_small):
        for table in corpus_small:
            for column in table.columns:
                assert column.semantic_type in TYPE_TO_INDEX

    def test_row_bounds_respected(self):
        config = CorpusConfig(n_tables=30, min_rows=5, max_rows=7, seed=0)
        for table in CorpusGenerator(config).generate():
            assert 5 <= table.n_rows <= 7

    def test_singleton_rate_zero(self):
        config = CorpusConfig(n_tables=40, singleton_rate=0.0, seed=0)
        corpus = CorpusGenerator(config).generate()
        assert all(t.n_columns >= 2 for t in corpus)

    def test_singleton_rate_high(self):
        config = CorpusConfig(n_tables=60, singleton_rate=0.8, seed=0)
        corpus = CorpusGenerator(config).generate()
        fraction = sum(t.is_singleton for t in corpus) / len(corpus)
        assert fraction > 0.5

    def test_columns_have_equal_length_within_table(self, corpus_small):
        for table in corpus_small:
            lengths = {len(c) for c in table.columns}
            assert len(lengths) == 1

    def test_intent_metadata_recorded(self, corpus_small):
        for table in corpus_small:
            assert "intent" in table.metadata
            schema = schema_by_name(table.metadata["intent"])
            for label in table.labels:
                assert label in schema.semantic_types

    def test_column_order_follows_schema_order(self, corpus_small):
        for table in corpus_small:
            schema = schema_by_name(table.metadata["intent"])
            order = {t: i for i, t in enumerate(schema.semantic_types)}
            positions = [order[label] for label in table.labels]
            assert positions == sorted(positions)

    def test_table_ids_unique(self, corpus_small):
        ids = [t.table_id for t in corpus_small]
        assert len(set(ids)) == len(ids)

    def test_clean_corpus_without_noise(self):
        config = CorpusConfig(
            n_tables=10,
            seed=2,
            noise=NoiseConfig(
                missing_cell_rate=0,
                typo_rate=0,
                case_noise_rate=0,
                whitespace_rate=0,
                header_noise_rate=0,
            ),
        )
        corpus = CorpusGenerator(config).generate()
        for table in corpus:
            for column in table.columns:
                assert column.header == column.semantic_type
                assert all(v.strip() for v in column.values)

    def test_generator_requires_schemas(self):
        with pytest.raises(ValueError):
            CorpusGenerator(CorpusConfig(n_tables=5), schemas=())

    def test_generate_overrides_count(self):
        generator = CorpusGenerator(CorpusConfig(n_tables=50, seed=1))
        assert len(generator.generate(5)) == 5
