"""Tests for dataset containers and cross-validation splits."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.corpus import Dataset, kfold_split, multi_column_only, train_test_split
from repro.tables import Column, Table


def _tables(n, n_columns=2):
    return [
        Table(
            columns=[
                Column(values=["v"], semantic_type="name") for _ in range(n_columns)
            ],
            table_id=f"t{i}",
        )
        for i in range(n)
    ]


class TestDataset:
    def test_counts(self, corpus_small):
        dataset = Dataset(tables=corpus_small, name="D")
        assert len(dataset) == len(corpus_small)
        assert dataset.n_columns == sum(t.n_columns for t in corpus_small)
        assert dataset.n_labeled_columns == dataset.n_columns

    def test_multi_column_view(self, corpus_small):
        dataset = Dataset(tables=corpus_small, name="D")
        dmult = dataset.multi_column()
        assert dmult.name == "Dmult"
        assert all(t.n_columns > 1 for t in dmult.tables)
        assert len(dmult) <= len(dataset)

    def test_multi_column_only_function(self, corpus_small):
        filtered = multi_column_only(corpus_small)
        assert all(t.n_columns > 1 for t in filtered)


class TestTrainTestSplit:
    def test_partition(self):
        tables = _tables(20)
        train, test = train_test_split(tables, test_fraction=0.25, seed=1)
        assert len(train) + len(test) == 20
        assert len(test) == 5
        train_ids = {t.table_id for t in train}
        test_ids = {t.table_id for t in test}
        assert not train_ids & test_ids

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(_tables(5), test_fraction=0.0)

    def test_deterministic(self):
        tables = _tables(12)
        a = train_test_split(tables, seed=3)
        b = train_test_split(tables, seed=3)
        assert [t.table_id for t in a[1]] == [t.table_id for t in b[1]]


class TestKFold:
    def test_every_table_tested_once(self):
        tables = _tables(23)
        splits = kfold_split(tables, k=5, seed=0)
        tested = [t.table_id for split in splits for t in split.test]
        assert sorted(tested) == sorted(t.table_id for t in tables)
        assert len(tested) == len(set(tested))

    def test_train_test_disjoint_per_fold(self):
        for split in kfold_split(_tables(17), k=4, seed=2):
            train_ids = {t.table_id for t in split.train}
            test_ids = {t.table_id for t in split.test}
            assert not train_ids & test_ids
            assert len(train_ids) + len(test_ids) == 17

    def test_fold_sizes_balanced(self):
        splits = kfold_split(_tables(22), k=5, seed=0)
        sizes = [len(s.test) for s in splits]
        assert max(sizes) - min(sizes) <= 1

    def test_errors(self):
        with pytest.raises(ValueError):
            kfold_split(_tables(10), k=1)
        with pytest.raises(ValueError):
            kfold_split(_tables(3), k=5)

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(min_value=6, max_value=40), k=st.integers(min_value=2, max_value=6))
    def test_property_partition(self, n, k):
        if n < k:
            return
        splits = kfold_split(_tables(n), k=k, seed=1)
        assert len(splits) == k
        tested = [t.table_id for split in splits for t in split.test]
        assert len(tested) == n
        assert len(set(tested)) == n
