"""Tests for dirty-data injection."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.corpus.config import NoiseConfig
from repro.corpus.noise import apply_cell_noise, apply_header_noise, corrupt_value
from repro.types import SEMANTIC_TYPES, canonicalize_header


class TestCorruptValue:
    def test_empty_string_unchanged(self):
        assert corrupt_value("", np.random.default_rng(0)) == ""

    def test_single_character_operations(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            original = "hello world"
            corrupted = corrupt_value(original, rng)
            assert abs(len(corrupted) - len(original)) <= 1

    @given(st.text(min_size=1, max_size=20))
    def test_never_raises(self, value):
        corrupt_value(value, np.random.default_rng(1))


class TestCellNoise:
    def test_zero_rates_are_identity(self):
        noise = NoiseConfig(
            missing_cell_rate=0, typo_rate=0, case_noise_rate=0, whitespace_rate=0
        )
        rng = np.random.default_rng(0)
        assert apply_cell_noise("Florence", noise, rng) == "Florence"

    def test_full_missing_rate_empties_cells(self):
        noise = NoiseConfig(missing_cell_rate=1.0)
        rng = np.random.default_rng(0)
        values = {apply_cell_noise("Florence", noise, rng) for _ in range(30)}
        assert values <= {"", "N/A", "-", "null", "unknown"}

    def test_case_noise_changes_case_only(self):
        noise = NoiseConfig(
            missing_cell_rate=0, typo_rate=0, case_noise_rate=1.0, whitespace_rate=0
        )
        rng = np.random.default_rng(0)
        for _ in range(20):
            result = apply_cell_noise("Florence", noise, rng)
            assert result.lower() == "florence"


class TestHeaderNoise:
    def test_zero_rate_keeps_header(self):
        noise = NoiseConfig(header_noise_rate=0.0)
        rng = np.random.default_rng(0)
        assert apply_header_noise("birthPlace", noise, rng) == "birthPlace"

    @pytest.mark.parametrize("semantic_type", SEMANTIC_TYPES)
    def test_noisy_header_still_canonicalises_to_type(self, semantic_type):
        noise = NoiseConfig(header_noise_rate=1.0)
        rng = np.random.default_rng(3)
        for _ in range(5):
            noisy = apply_header_noise(semantic_type, noise, rng)
            assert canonicalize_header(noisy) == semantic_type


class TestNoiseConfigValidation:
    def test_valid_config_passes(self):
        NoiseConfig().validate()

    @pytest.mark.parametrize(
        "field", ["missing_cell_rate", "typo_rate", "case_noise_rate", "whitespace_rate"]
    )
    def test_out_of_range_rejected(self, field):
        config = NoiseConfig(**{field: 1.5})
        with pytest.raises(ValueError):
            config.validate()
