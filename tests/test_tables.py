"""Tests for the Table / Column data model."""

from repro.tables import Column, Table


class TestColumn:
    def test_values_are_stringified(self):
        column = Column(values=[1, 2.5, None, "x"])
        assert column.values == ["1", "2.5", "", "x"]

    def test_label_derived_from_header(self):
        column = Column(values=["a"], header="Birth Place")
        assert column.semantic_type == "birthPlace"

    def test_unknown_header_gives_no_label(self):
        column = Column(values=["a"], header="random nonsense header")
        assert column.semantic_type is None
        assert not column.has_label

    def test_explicit_label_wins_over_header(self):
        column = Column(values=["a"], header="Year", semantic_type="city")
        assert column.semantic_type == "city"

    def test_non_empty_values(self):
        column = Column(values=["a", "", "  ", "b"])
        assert column.non_empty_values == ["a", "b"]

    def test_len_iter_head(self):
        column = Column(values=list("abcdef"))
        assert len(column) == 6
        assert list(column)[:2] == ["a", "b"]
        assert column.head(3) == ["a", "b", "c"]

    def test_dict_round_trip(self):
        column = Column(values=["x", "y"], header="City", semantic_type="city")
        restored = Column.from_dict(column.to_dict())
        assert restored.values == column.values
        assert restored.header == column.header
        assert restored.semantic_type == column.semantic_type


class TestTable:
    def make_table(self):
        return Table(
            columns=[
                Column(values=["Alice", "Bob"], semantic_type="name"),
                Column(values=["34", "27"], semantic_type="age"),
            ],
            table_id="t1",
            metadata={"intent": "people"},
        )

    def test_basic_properties(self):
        table = self.make_table()
        assert table.n_columns == 2
        assert table.n_rows == 2
        assert not table.is_singleton
        assert table.labels == ["name", "age"]
        assert table.is_fully_labeled

    def test_singleton(self):
        table = Table(columns=[Column(values=["a"])])
        assert table.is_singleton
        assert not table.is_fully_labeled

    def test_empty_table(self):
        table = Table(columns=[])
        assert table.n_rows == 0
        assert not table.is_fully_labeled
        assert table.all_values() == []
        assert table.rows() == []

    def test_all_values_skips_missing(self):
        table = Table(
            columns=[Column(values=["a", ""]), Column(values=["", "b"])]
        )
        assert sorted(table.all_values()) == ["a", "b"]

    def test_rows_pads_ragged_columns(self):
        table = Table(columns=[Column(values=["a", "b", "c"]), Column(values=["1"])])
        rows = table.rows()
        assert rows == [["a", "1"], ["b", ""], ["c", ""]]

    def test_without_headers_strips_labels(self):
        stripped = self.make_table().without_headers()
        assert stripped.labels == [None, None]
        assert stripped.columns[0].values == ["Alice", "Bob"]

    def test_dict_round_trip(self):
        table = self.make_table()
        restored = Table.from_dict(table.to_dict())
        assert restored.table_id == "t1"
        assert restored.metadata == {"intent": "people"}
        assert restored.labels == table.labels
        assert [c.values for c in restored.columns] == [c.values for c in table.columns]

    def test_from_rows(self):
        table = Table.from_rows(
            [["Alice", "34"], ["Bob", "27"]], headers=["name", "age"]
        )
        assert table.n_columns == 2
        assert table.columns[0].values == ["Alice", "Bob"]
        assert table.labels == ["name", "age"]

    def test_from_rows_ragged(self):
        table = Table.from_rows([["a"], ["b", "2"]])
        assert table.n_columns == 2
        assert table.columns[1].values == ["", "2"]

    def test_from_rows_empty(self):
        table = Table.from_rows([], headers=["name"])
        assert table.n_columns == 1
        assert table.columns[0].values == []

    def test_from_columns(self):
        table = Table.from_columns([["a", "b"], ["1", "2"]], headers=["name", "age"])
        assert table.columns[1].values == ["1", "2"]
        assert table.labels == ["name", "age"]

    def test_indexing_and_iteration(self):
        table = self.make_table()
        assert table[0].semantic_type == "name"
        assert [c.semantic_type for c in table] == ["name", "age"]
        assert len(table) == 2


class TestGeneratedTables:
    def test_generated_corpus_tables_are_labeled(self, corpus_small):
        assert all(t.is_fully_labeled for t in corpus_small)

    def test_generated_tables_have_rows(self, corpus_small):
        assert all(t.n_rows >= 4 for t in corpus_small)

    def test_labels_match_registry(self, corpus_small):
        from repro.types import TYPE_TO_INDEX

        for table in corpus_small:
            for label in table.labels:
                assert label in TYPE_TO_INDEX
