"""Shared test helpers (tiny model and featurizer builders).

These live in a plain module — imported explicitly as ``from helpers import
...`` — rather than in ``conftest.py``: conftest modules all share the bare
module name ``conftest``, so importing helpers from one is ambiguous the
moment another directory (``benchmarks/``) also has a conftest.
"""

from __future__ import annotations

from repro.features import ColumnFeaturizer
from repro.models import SatoConfig, SatoModel, TrainingConfig

__all__ = [
    "TINY_TRAINING",
    "tiny_featurizer",
    "tiny_sato_config",
    "make_tiny_model",
]


TINY_TRAINING = TrainingConfig(
    n_epochs=6,
    learning_rate=3e-3,
    batch_size=32,
    subnet_dim=16,
    hidden_dim=32,
    dropout=0.1,
    seed=0,
)


def tiny_featurizer() -> ColumnFeaturizer:
    """A small featurizer suitable for unit tests."""
    return ColumnFeaturizer(word_dim=12, para_dim=8, seed=0)


def tiny_sato_config(use_topic: bool, use_struct: bool) -> SatoConfig:
    """A small Sato configuration for unit tests."""
    return SatoConfig(
        use_topic=use_topic,
        use_struct=use_struct,
        n_topics=6,
        training=TINY_TRAINING,
        crf_epochs=3,
        seed=0,
    )


def make_tiny_model(use_topic: bool, use_struct: bool) -> SatoModel:
    """Build an unfitted tiny Sato variant."""
    model = SatoModel(
        config=tiny_sato_config(use_topic, use_struct), featurizer=tiny_featurizer()
    )
    if use_topic:
        model.column_model.intent_estimator.lda.n_iterations = 5
        model.column_model.intent_estimator.lda.infer_iterations = 5
    return model
