"""Tests for the neural network library (layers, losses, optimisers, gradients)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import (
    SGD,
    Adam,
    BatchNorm1d,
    Dropout,
    Linear,
    Parameter,
    ReLU,
    Sequential,
    Tanh,
    check_layer_gradients,
    cross_entropy_loss,
    log_softmax,
    numerical_gradient,
    softmax,
)


class TestParameter:
    def test_zero_grad(self):
        parameter = Parameter(np.ones((2, 2)))
        parameter.grad += 3.0
        parameter.zero_grad()
        assert np.allclose(parameter.grad, 0.0)

    def test_shape(self):
        assert Parameter(np.zeros((3, 4))).shape == (3, 4)


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(5, 3, rng=np.random.default_rng(0))
        output = layer.forward(np.random.default_rng(1).normal(size=(7, 5)))
        assert output.shape == (7, 3)

    def test_gradients_match_numerical(self):
        layer = Linear(4, 3, rng=np.random.default_rng(0))
        inputs = np.random.default_rng(1).normal(size=(5, 4))
        input_error, parameter_errors = check_layer_gradients(layer, inputs)
        assert input_error < 1e-5
        assert all(error < 1e-5 for error in parameter_errors.values())

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            Linear(0, 3)

    def test_state_dict_round_trip(self):
        layer = Linear(3, 2, rng=np.random.default_rng(0), name="l")
        state = layer.state_dict()
        other = Linear(3, 2, rng=np.random.default_rng(5), name="l")
        other.load_state_dict(state)
        x = np.random.default_rng(2).normal(size=(4, 3))
        assert np.allclose(layer.forward(x), other.forward(x))


class TestActivations:
    def test_relu_forward(self):
        layer = ReLU()
        output = layer.forward(np.array([[-1.0, 2.0]]))
        assert np.allclose(output, [[0.0, 2.0]])

    def test_relu_gradients(self):
        layer = ReLU()
        inputs = np.random.default_rng(0).normal(size=(6, 4)) + 0.1
        input_error, _ = check_layer_gradients(layer, inputs)
        assert input_error < 1e-5

    def test_tanh_gradients(self):
        layer = Tanh()
        inputs = np.random.default_rng(0).normal(size=(6, 4))
        input_error, _ = check_layer_gradients(layer, inputs)
        assert input_error < 1e-5


class TestDropout:
    def test_inference_is_identity(self):
        layer = Dropout(0.5)
        x = np.random.default_rng(0).normal(size=(4, 4))
        assert np.allclose(layer.forward(x, training=False), x)

    def test_training_masks_and_scales(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((200, 10))
        output = layer.forward(x, training=True)
        assert np.isclose(output.mean(), 1.0, atol=0.15)
        assert (output == 0).any()

    def test_zero_rate_is_identity_in_training(self):
        layer = Dropout(0.0)
        x = np.ones((3, 3))
        assert np.allclose(layer.forward(x, training=True), x)

    def test_backward_uses_same_mask(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((10, 10))
        output = layer.forward(x, training=True)
        grad = layer.backward(np.ones_like(x))
        assert np.allclose(grad, output)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestBatchNorm:
    def test_training_normalises_batch(self):
        layer = BatchNorm1d(3)
        x = np.random.default_rng(0).normal(loc=5.0, scale=2.0, size=(64, 3))
        output = layer.forward(x, training=True)
        assert np.allclose(output.mean(axis=0), 0.0, atol=1e-6)
        assert np.allclose(output.std(axis=0), 1.0, atol=1e-2)

    def test_running_stats_update(self):
        layer = BatchNorm1d(2, momentum=0.5)
        x = np.random.default_rng(0).normal(loc=3.0, size=(32, 2))
        layer.forward(x, training=True)
        assert not np.allclose(layer.running_mean, 0.0)

    def test_inference_uses_running_stats(self):
        layer = BatchNorm1d(2)
        x = np.random.default_rng(0).normal(size=(16, 2))
        layer.forward(x, training=True)
        single = layer.forward(x[:1], training=False)
        assert single.shape == (1, 2)
        assert np.all(np.isfinite(single))

    def test_gradients_match_numerical_inference_mode(self):
        layer = BatchNorm1d(3)
        layer.running_mean = np.array([0.5, -0.2, 0.1])
        layer.running_var = np.array([1.5, 0.7, 2.0])
        inputs = np.random.default_rng(1).normal(size=(4, 3))
        input_error, parameter_errors = check_layer_gradients(layer, inputs)
        assert input_error < 1e-5
        assert all(error < 1e-5 for error in parameter_errors.values())

    def test_state_dict_includes_running_stats(self):
        layer = BatchNorm1d(2, name="bn")
        layer.forward(np.random.default_rng(0).normal(size=(8, 2)), training=True)
        state = layer.state_dict()
        restored = BatchNorm1d(2, name="bn")
        restored.load_state_dict(state)
        assert np.allclose(restored.running_mean, layer.running_mean)
        assert np.allclose(restored.running_var, layer.running_var)


class TestSequential:
    def test_forward_backward_shapes(self):
        rng = np.random.default_rng(0)
        network = Sequential(Linear(6, 4, rng=rng), ReLU(), Linear(4, 2, rng=rng))
        x = rng.normal(size=(5, 6))
        output = network.forward(x)
        assert output.shape == (5, 2)
        grad_in = network.backward(np.ones_like(output))
        assert grad_in.shape == x.shape

    def test_parameters_collected(self):
        rng = np.random.default_rng(0)
        network = Sequential(Linear(3, 3, rng=rng), ReLU(), Linear(3, 2, rng=rng))
        assert len(network.parameters()) == 4

    def test_state_dict_round_trip(self):
        rng = np.random.default_rng(0)
        network = Sequential(Linear(3, 3, rng=rng, name="a"), Linear(3, 2, rng=rng, name="b"))
        clone = Sequential(
            Linear(3, 3, rng=np.random.default_rng(9), name="a"),
            Linear(3, 2, rng=np.random.default_rng(8), name="b"),
        )
        clone.load_state_dict(network.state_dict())
        x = rng.normal(size=(4, 3))
        assert np.allclose(network.forward(x), clone.forward(x))

    def test_add(self):
        network = Sequential()
        network.add(Linear(2, 2, rng=np.random.default_rng(0)))
        assert len(network.layers) == 1

    def test_whole_network_gradient(self):
        rng = np.random.default_rng(0)
        network = Sequential(Linear(4, 5, rng=rng), Tanh(), Linear(5, 3, rng=rng))
        inputs = rng.normal(size=(3, 4))
        input_error, parameter_errors = check_layer_gradients(network, inputs)
        assert input_error < 1e-5
        assert all(error < 1e-4 for error in parameter_errors.values())


class TestLosses:
    def test_softmax_sums_to_one(self):
        probabilities = softmax(np.random.default_rng(0).normal(size=(6, 9)))
        assert np.allclose(probabilities.sum(axis=1), 1.0)
        assert np.all(probabilities >= 0)

    def test_softmax_stability_with_large_logits(self):
        probabilities = softmax(np.array([[1000.0, 1000.0, -1000.0]]))
        assert np.all(np.isfinite(probabilities))
        assert probabilities[0, 0] == pytest.approx(0.5)

    def test_log_softmax_matches_log_of_softmax(self):
        logits = np.random.default_rng(0).normal(size=(4, 5))
        assert np.allclose(log_softmax(logits), np.log(softmax(logits)))

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, _ = cross_entropy_loss(logits, np.array([0, 1]))
        assert loss == pytest.approx(0.0, abs=1e-6)

    def test_cross_entropy_uniform(self):
        logits = np.zeros((3, 4))
        loss, _ = cross_entropy_loss(logits, np.array([0, 1, 2]))
        assert loss == pytest.approx(np.log(4))

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(4, 5))
        targets = np.array([1, 0, 3, 2])
        _, grad = cross_entropy_loss(logits, targets)
        numeric = numerical_gradient(
            lambda x: cross_entropy_loss(x, targets)[0], logits.copy()
        )
        assert np.abs(grad - numeric).max() < 1e-6

    def test_class_weights_change_loss(self):
        logits = np.random.default_rng(0).normal(size=(4, 3))
        targets = np.array([0, 1, 2, 0])
        plain, _ = cross_entropy_loss(logits, targets)
        weights = np.array([10.0, 1.0, 1.0])
        weighted, _ = cross_entropy_loss(logits, targets, class_weights=weights)
        assert weighted != pytest.approx(plain)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            cross_entropy_loss(np.zeros(3), np.array([0]))
        with pytest.raises(ValueError):
            cross_entropy_loss(np.zeros((2, 3)), np.array([0]))

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_loss_nonnegative(self, batch, n_classes, seed):
        rng = np.random.default_rng(seed)
        logits = rng.normal(size=(batch, n_classes))
        targets = rng.integers(0, n_classes, size=batch)
        loss, grad = cross_entropy_loss(logits, targets)
        assert loss >= 0
        assert np.allclose(grad.sum(axis=1), 0.0, atol=1e-9)


class TestOptimizers:
    def _quadratic_step(self, optimizer, parameter):
        for _ in range(200):
            optimizer.zero_grad()
            parameter.grad += 2 * (parameter.data - 3.0)
            optimizer.step()

    def test_sgd_converges_on_quadratic(self):
        parameter = Parameter(np.array([0.0]))
        self._quadratic_step(SGD([parameter], learning_rate=0.1), parameter)
        assert parameter.data[0] == pytest.approx(3.0, abs=1e-3)

    def test_adam_converges_on_quadratic(self):
        parameter = Parameter(np.array([0.0]))
        self._quadratic_step(Adam([parameter], learning_rate=0.1), parameter)
        assert parameter.data[0] == pytest.approx(3.0, abs=1e-2)

    def test_sgd_momentum_moves_faster(self):
        slow = Parameter(np.array([0.0]))
        fast = Parameter(np.array([0.0]))
        sgd_slow = SGD([slow], learning_rate=0.01)
        sgd_fast = SGD([fast], learning_rate=0.01, momentum=0.9)
        for _ in range(20):
            for optimizer, parameter in ((sgd_slow, slow), (sgd_fast, fast)):
                optimizer.zero_grad()
                parameter.grad += 2 * (parameter.data - 3.0)
                optimizer.step()
        assert abs(fast.data[0] - 3.0) < abs(slow.data[0] - 3.0)

    def test_weight_decay_shrinks_parameters(self):
        parameter = Parameter(np.array([5.0]))
        optimizer = Adam([parameter], learning_rate=0.1, weight_decay=0.5)
        for _ in range(50):
            optimizer.zero_grad()
            optimizer.step()
        assert abs(parameter.data[0]) < 5.0

    def test_invalid_learning_rate(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], learning_rate=0.0)

    def test_network_trains_on_toy_problem(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(200, 2))
        y = (x[:, 0] + x[:, 1] > 0).astype(np.int64)
        network = Sequential(Linear(2, 16, rng=rng), ReLU(), Linear(16, 2, rng=rng))
        optimizer = Adam(network.parameters(), learning_rate=0.01)
        first_loss = None
        for _ in range(150):
            optimizer.zero_grad()
            logits = network.forward(x, training=True)
            loss, grad = cross_entropy_loss(logits, y)
            if first_loss is None:
                first_loss = loss
            network.backward(grad)
            optimizer.step()
        final_logits = network.forward(x)
        accuracy = (final_logits.argmax(axis=1) == y).mean()
        assert loss < first_loss
        assert accuracy > 0.9
