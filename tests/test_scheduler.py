"""Unit tests for the micro-batching request scheduler.

These run against stub predictors (recording batch shapes, injecting
latency or failures) so the batching policy, admission control, drain
semantics and metrics accounting are tested in isolation from the model.
End-to-end behaviour over a real socket lives in ``test_server.py``.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.serving import (
    DrainingError,
    MicroBatcher,
    QueueFullError,
    ServingMetrics,
)
from repro.serving.scheduler import _percentile
from repro.tables import Column, Table


def make_table(n_columns: int = 2, tag: str = "t") -> Table:
    return Table(
        columns=[
            Column(values=[f"{tag}{i}a", f"{tag}{i}b"]) for i in range(n_columns)
        ],
        table_id=tag,
    )


class RecordingPredictor:
    """Counts calls and batch sizes; optionally sleeps to simulate model time."""

    def __init__(self, delay: float = 0.0):
        self.delay = delay
        self.batch_sizes: list[int] = []

    def predict_tables(self, tables):
        self.batch_sizes.append(len(tables))
        if self.delay:
            time.sleep(self.delay)
        return [["label"] * table.n_columns for table in tables]


class FailingPredictor:
    def predict_tables(self, tables):
        raise RuntimeError("model exploded")


class TestMicroBatcher:
    def test_concurrent_requests_coalesce_into_one_batch(self):
        predictor = RecordingPredictor(delay=0.01)

        async def run():
            async with MicroBatcher(
                predictor, max_batch_size=16, max_wait_ms=50.0
            ) as batcher:
                results = await asyncio.gather(
                    *[batcher.submit(make_table(tag=f"t{i}")) for i in range(8)]
                )
            return results

        results = asyncio.run(run())
        assert results == [["label", "label"]] * 8
        # All 8 landed within the wait window -> far fewer dispatches than 8.
        assert len(predictor.batch_sizes) <= 2
        assert max(predictor.batch_sizes) >= 4

    def test_max_batch_size_bounds_every_dispatch(self):
        predictor = RecordingPredictor()

        async def run():
            async with MicroBatcher(
                predictor, max_batch_size=3, max_wait_ms=20.0
            ) as batcher:
                await asyncio.gather(
                    *[batcher.submit(make_table(tag=f"t{i}")) for i in range(10)]
                )

        asyncio.run(run())
        assert sum(predictor.batch_sizes) == 10
        assert max(predictor.batch_sizes) <= 3

    def test_batch_size_one_serves_requests_individually(self):
        predictor = RecordingPredictor()

        async def run():
            async with MicroBatcher(
                predictor, max_batch_size=1, max_wait_ms=50.0
            ) as batcher:
                await asyncio.gather(
                    *[batcher.submit(make_table(tag=f"t{i}")) for i in range(5)]
                )

        asyncio.run(run())
        assert predictor.batch_sizes == [1] * 5

    def test_lone_request_is_served_after_max_wait(self):
        predictor = RecordingPredictor()

        async def run():
            async with MicroBatcher(
                predictor, max_batch_size=64, max_wait_ms=5.0
            ) as batcher:
                started = time.monotonic()
                labels = await batcher.submit(make_table())
                return labels, time.monotonic() - started

        labels, elapsed = asyncio.run(run())
        assert labels == ["label", "label"]
        assert elapsed < 2.0  # waited ~max_wait_ms, not forever

    def test_queue_bound_rejects_with_queue_full(self):
        predictor = RecordingPredictor(delay=0.05)

        async def run():
            async with MicroBatcher(
                predictor, max_batch_size=1, max_wait_ms=0.0, max_queue=2
            ) as batcher:
                tasks = [
                    asyncio.create_task(batcher.submit(make_table(tag=f"t{i}")))
                    for i in range(12)
                ]
                return await asyncio.gather(*tasks, return_exceptions=True)

        outcomes = asyncio.run(run())
        rejected = [o for o in outcomes if isinstance(o, QueueFullError)]
        served = [o for o in outcomes if isinstance(o, list)]
        assert rejected, "flooding a queue of 2 must reject something"
        assert served, "admitted requests must still be served"
        assert len(rejected) + len(served) == 12  # nothing silently dropped

    def test_draining_rejects_new_work_but_serves_queued(self):
        predictor = RecordingPredictor(delay=0.02)

        async def run():
            batcher = MicroBatcher(predictor, max_batch_size=4, max_wait_ms=1.0)
            await batcher.start()
            accepted = asyncio.create_task(batcher.submit(make_table(tag="pre")))
            await asyncio.sleep(0)  # let the submit enqueue
            await batcher.drain()
            assert await accepted == ["label", "label"]
            with pytest.raises(DrainingError):
                await batcher.submit(make_table(tag="post"))
            return batcher.metrics

        metrics = asyncio.run(run())
        assert metrics.completed == 1
        assert metrics.rejected_draining == 1

    def test_model_failure_propagates_per_request(self):
        async def run():
            async with MicroBatcher(
                FailingPredictor(), max_batch_size=4, max_wait_ms=1.0
            ) as batcher:
                with pytest.raises(RuntimeError, match="model exploded"):
                    await batcher.submit(make_table())
                return batcher.metrics

        metrics = asyncio.run(run())
        assert metrics.errors == 1
        assert metrics.completed == 0

    def test_submit_many_round_trips_order(self):
        predictor = RecordingPredictor()
        tables = [make_table(n_columns=i + 1, tag=f"t{i}") for i in range(4)]

        async def run():
            async with MicroBatcher(
                predictor, max_batch_size=8, max_wait_ms=10.0
            ) as batcher:
                return await batcher.submit_many(tables)

        results = asyncio.run(run())
        assert [len(labels) for labels in results] == [1, 2, 3, 4]

    def test_submit_many_rejected_wholesale_when_over_bound(self):
        predictor = RecordingPredictor()
        tables = [make_table(tag=f"t{i}") for i in range(5)]

        async def run():
            async with MicroBatcher(
                predictor, max_batch_size=8, max_wait_ms=1.0, max_queue=3
            ) as batcher:
                with pytest.raises(QueueFullError):
                    await batcher.submit_many(tables)

        asyncio.run(run())
        assert predictor.batch_sizes == []  # nothing was admitted

    def test_submit_many_admission_is_atomic_under_concurrent_traffic(self):
        """A rejected batch enqueues nothing, even while singles race it."""
        predictor = RecordingPredictor(delay=0.02)
        batch = [make_table(tag=f"b{i}") for i in range(3)]

        async def run():
            async with MicroBatcher(
                predictor, max_batch_size=1, max_wait_ms=0.0, max_queue=4
            ) as batcher:
                singles = [
                    asyncio.create_task(batcher.submit(make_table(tag=f"s{i}")))
                    for i in range(3)
                ]
                await asyncio.sleep(0)  # let the singles enqueue first
                outcome: list = []
                try:
                    outcome.append(await batcher.submit_many(batch))
                except QueueFullError as error:
                    outcome.append(error)
                await asyncio.gather(*singles, return_exceptions=True)
                return outcome[0], batcher.metrics

        outcome, metrics = asyncio.run(run())
        # 3 singles fill the queue to 3 of 4; the 3-table batch cannot fit,
        # so it must be rejected with not a single table of it enqueued.
        assert isinstance(outcome, QueueFullError)
        assert metrics.admitted == 3  # only the singles
        assert metrics.completed == 3
        assert sum(predictor.batch_sizes) == 3  # no batch table reached the model

    def test_policy_validation(self):
        predictor = RecordingPredictor()
        with pytest.raises(ValueError):
            MicroBatcher(predictor, max_batch_size=0)
        with pytest.raises(ValueError):
            MicroBatcher(predictor, max_wait_ms=-1.0)
        with pytest.raises(ValueError):
            MicroBatcher(predictor, max_queue=0)


class TestServingMetrics:
    def test_snapshot_shape_and_counters(self):
        metrics = ServingMetrics(window=8)
        for latency in (0.001, 0.002, 0.003):
            metrics.record_admitted()
            metrics.record_request(latency)
        metrics.record_batch(n_tables=3, n_columns=7, seconds=0.004)
        metrics.record_rejected_queue_full()
        metrics.record_rejected_draining()
        metrics.record_malformed()
        metrics.record_error()
        snap = metrics.snapshot()
        assert snap["requests"]["admitted"] == 3
        assert snap["requests"]["completed"] == 3
        assert snap["requests"]["rejected_queue_full"] == 1
        assert snap["requests"]["rejected_draining"] == 1
        assert snap["requests"]["malformed"] == 1
        assert snap["requests"]["errors"] == 1
        assert snap["requests"]["qps"] > 0
        assert snap["batches"] == {
            "count": 1,
            "mean_size": 3.0,
            "size_histogram": {"3": 1},
            "model_seconds_total": 0.004,
        }
        assert snap["columns"]["served"] == 7
        assert snap["latency_ms"]["p50"] == pytest.approx(2.0)
        assert snap["latency_ms"]["max"] == pytest.approx(3.0)

    def test_latency_window_is_bounded(self):
        metrics = ServingMetrics(window=4)
        for i in range(100):
            metrics.record_request(float(i))
        snap = metrics.snapshot()
        assert snap["latency_ms"]["window"] == 4
        assert metrics.completed == 100  # the counter is not windowed

    def test_percentile_nearest_rank(self):
        assert _percentile([], 0.5) == 0.0
        values = [1.0, 2.0, 3.0, 4.0]
        assert _percentile(values, 0.0) == 1.0
        assert _percentile(values, 1.0) == 4.0
        assert _percentile(values, 0.5) in (2.0, 3.0)

    def test_latencies_returns_raw_window_in_order(self):
        metrics = ServingMetrics(window=3)
        for latency in (0.3, 0.1, 0.2, 0.4):
            metrics.record_request(latency)
        assert metrics.latencies() == [0.1, 0.2, 0.4]
        # A copy, not the live deque: mutating it must not leak back.
        metrics.latencies().append(9.9)
        assert metrics.latencies() == [0.1, 0.2, 0.4]

    def test_concurrent_writers_lose_no_counts(self):
        """ServingMetrics is shared by the fleet's event loop, reader
        threads and worker dispatch; concurrent recording must be exact."""
        import threading

        metrics = ServingMetrics(window=256)
        n_threads, per_thread = 8, 500
        barrier = threading.Barrier(n_threads)
        snapshots: list[dict] = []

        def writer(index: int) -> None:
            barrier.wait()
            for i in range(per_thread):
                metrics.record_admitted()
                metrics.record_request(0.001 * (index + 1))
                metrics.record_batch(n_tables=1, n_columns=3, seconds=0.0005)
                if i % 50 == 0:
                    metrics.record_error()
                    metrics.record_rejected_queue_full()
                    snapshots.append(metrics.snapshot())

        threads = [
            threading.Thread(target=writer, args=(index,))
            for index in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        expected = n_threads * per_thread
        snap = metrics.snapshot()
        assert snap["requests"]["admitted"] == expected
        assert snap["requests"]["completed"] == expected
        assert snap["requests"]["errors"] == n_threads * (per_thread // 50)
        assert snap["requests"]["rejected_queue_full"] == n_threads * (
            per_thread // 50
        )
        assert snap["batches"]["count"] == expected
        assert snap["columns"]["served"] == expected * 3
        assert snap["latency_ms"]["window"] == 256
        # Mid-flight snapshots taken under contention are internally sane.
        for mid in snapshots:
            assert mid["requests"]["completed"] <= expected
            assert mid["batches"]["count"] <= expected
