"""Tests for the experiment harness (configs, pipeline, reporting, ablations)."""

from repro.experiments import ExperimentConfig, build_corpus, make_model_factories, reporting
from repro.experiments.pipeline import MODEL_VARIANTS


class TestExperimentConfig:
    def test_presets_are_hashable_and_distinct(self):
        assert hash(ExperimentConfig.tiny()) != hash(ExperimentConfig.fast())
        assert ExperimentConfig.tiny() == ExperimentConfig.tiny()

    def test_paper_preset_documents_paper_scale(self):
        paper = ExperimentConfig.paper()
        assert paper.n_tables == 80000
        assert paper.n_topics == 400
        assert paper.k_folds == 5
        assert paper.nn_epochs == 100

    def test_tiny_smaller_than_fast(self):
        tiny, fast = ExperimentConfig.tiny(), ExperimentConfig.fast()
        assert tiny.n_tables < fast.n_tables
        assert tiny.nn_epochs < fast.nn_epochs


class TestPipeline:
    def test_build_corpus_size(self):
        config = ExperimentConfig.tiny()
        dataset = build_corpus(config)
        assert len(dataset) == config.n_tables
        assert dataset.name == "D"
        assert len(dataset.multi_column()) < len(dataset)

    def test_factories_cover_all_variants(self):
        factories = make_model_factories(ExperimentConfig.tiny())
        assert set(factories) == set(MODEL_VARIANTS)
        for name, factory in factories.items():
            model = factory()
            assert model.name == name

    def test_factory_settings_propagate(self):
        config = ExperimentConfig.tiny()
        model = make_model_factories(config)["Sato"]()
        assert model.config.n_topics == config.n_topics
        assert model.config.training.n_epochs == config.nn_epochs
        assert model.column_model.intent_estimator.lda.n_iterations == config.lda_iterations


class TestReporting:
    def test_format_figure5(self):
        text = reporting.format_figure5({"name": 50, "city": 20, "isbn": 1})
        assert "name" in text and "#" in text

    def test_format_figure6(self, corpus_small):
        from repro.corpus.statistics import cooccurrence_matrix

        text = reporting.format_figure6(cooccurrence_matrix(corpus_small), k=5)
        assert text.startswith("Figure 6")

    def test_format_table3(self):
        from repro.topic.analysis import TopicSummary

        text = reporting.format_table3(
            [TopicSummary(topic=3, saliency=0.5, top_types=["city", "country"])]
        )
        assert "topic #3" in text

    def test_format_table4(self):
        from repro.evaluation.qualitative import CorrectionExample

        example = CorrectionExample(
            table_id="t1", true_types=["code"], before=["symbol"], after=["code"]
        )
        text = reporting.format_table4({"base_to_notopic": [example], "nostruct_to_sato": []})
        assert "t1" in text

    def test_format_per_type_figure(self):
        from repro.evaluation.per_type import per_type_comparison

        comparison = per_type_comparison(
            ["a", "b"], ["a", "b"], ["a", "b"], ["a", "a"], name_a="Sato", name_b="Base"
        )
        text = reporting.format_per_type_figure(comparison, "Figure 7a")
        assert "Figure 7a" in text
        assert "improved types" in text

    def test_format_ablation(self):
        from repro.experiments.ablations import AblationPoint

        text = reporting.format_ablation(
            [AblationPoint("topics=4", 0.5, 0.6)], "Ablation: topics"
        )
        assert "topics=4" in text

    def test_format_learned_repr(self):
        text = reporting.format_learned_repr(
            {"Base": {"macro_f1": 0.5, "weighted_f1": 0.6}}
        )
        assert "Base" in text
