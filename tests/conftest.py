"""Shared fixtures.

Expensive objects (corpus, fitted featurizer, trained models) are
session-scoped and use deliberately tiny configurations so the whole suite
stays fast while still exercising every component end to end.  Plain helper
functions live in ``helpers.py`` so test modules can import them explicitly
without colliding with ``benchmarks/conftest.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus import CorpusConfig, CorpusGenerator

from helpers import make_tiny_model, tiny_featurizer


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(123)


@pytest.fixture(scope="session")
def corpus_small():
    """~90 tables, mixed singleton/multi-column, with noise."""
    config = CorpusConfig(n_tables=90, seed=5, singleton_rate=0.3, max_rows=12)
    return CorpusGenerator(config).generate()


@pytest.fixture(scope="session")
def multi_column_tables(corpus_small):
    return [t for t in corpus_small if t.n_columns > 1]


@pytest.fixture(scope="session")
def train_test_tables(multi_column_tables):
    split = int(len(multi_column_tables) * 0.8)
    return multi_column_tables[:split], multi_column_tables[split:]


@pytest.fixture(scope="session")
def fitted_featurizer(multi_column_tables):
    featurizer = tiny_featurizer()
    featurizer.fit(multi_column_tables)
    return featurizer


@pytest.fixture(scope="session")
def trained_base(train_test_tables):
    train, _ = train_test_tables
    model = make_tiny_model(use_topic=False, use_struct=False)
    model.fit(train)
    return model


#: The four paper variants: name -> (use_topic, use_struct).
MODEL_VARIANTS = {
    "Base": (False, False),
    "Sato": (True, True),
    "SatoNoStruct": (True, False),
    "SatoNoTopic": (False, True),
}


@pytest.fixture(scope="session")
def serving_split(train_test_tables):
    train, test = train_test_tables
    return train[:30], test[:8]


@pytest.fixture(scope="session", params=sorted(MODEL_VARIANTS))
def fitted_variant(request, serving_split):
    """One fitted model per paper variant, shared across test modules."""
    train, _ = serving_split
    use_topic, use_struct = MODEL_VARIANTS[request.param]
    model = make_tiny_model(use_topic=use_topic, use_struct=use_struct)
    model.fit(train)
    assert model.name == request.param
    return model


@pytest.fixture(scope="session")
def hard_case_tables():
    """Adversarial tables from the shipped hard-case suites (tiny preset).

    Unicode-heavy values (non-BMP, combining marks, RTL) plus dirty and
    mixed-type columns — the inputs where a vectorized or batched backend
    is most likely to drift from its reference loop.
    """
    from repro.corpus.suites import build_suite

    tables = []
    for name in ("unicode_heavy", "dirty_columns"):
        tables.extend(build_suite(name, "tiny").tables)
    return tables


@pytest.fixture(scope="session")
def trained_sato(train_test_tables):
    train, _ = train_test_tables
    model = make_tiny_model(use_topic=True, use_struct=True)
    model.fit(train)
    return model
