"""Shared fixtures.

Expensive objects (corpus, fitted featurizer, trained models) are
session-scoped and use deliberately tiny configurations so the whole suite
stays fast while still exercising every component end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus import CorpusConfig, CorpusGenerator
from repro.features import ColumnFeaturizer
from repro.models import SatoConfig, SatoModel, TrainingConfig


TINY_TRAINING = TrainingConfig(
    n_epochs=6,
    learning_rate=3e-3,
    batch_size=32,
    subnet_dim=16,
    hidden_dim=32,
    dropout=0.1,
    seed=0,
)


def tiny_featurizer() -> ColumnFeaturizer:
    """A small featurizer suitable for unit tests."""
    return ColumnFeaturizer(word_dim=12, para_dim=8, seed=0)


def tiny_sato_config(use_topic: bool, use_struct: bool) -> SatoConfig:
    """A small Sato configuration for unit tests."""
    return SatoConfig(
        use_topic=use_topic,
        use_struct=use_struct,
        n_topics=6,
        training=TINY_TRAINING,
        crf_epochs=3,
        seed=0,
    )


def make_tiny_model(use_topic: bool, use_struct: bool) -> SatoModel:
    """Build an unfitted tiny Sato variant."""
    model = SatoModel(
        config=tiny_sato_config(use_topic, use_struct), featurizer=tiny_featurizer()
    )
    if use_topic:
        model.column_model.intent_estimator.lda.n_iterations = 5
        model.column_model.intent_estimator.lda.infer_iterations = 5
    return model


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(123)


@pytest.fixture(scope="session")
def corpus_small():
    """~90 tables, mixed singleton/multi-column, with noise."""
    config = CorpusConfig(n_tables=90, seed=5, singleton_rate=0.3, max_rows=12)
    return CorpusGenerator(config).generate()


@pytest.fixture(scope="session")
def multi_column_tables(corpus_small):
    return [t for t in corpus_small if t.n_columns > 1]


@pytest.fixture(scope="session")
def train_test_tables(multi_column_tables):
    split = int(len(multi_column_tables) * 0.8)
    return multi_column_tables[:split], multi_column_tables[split:]


@pytest.fixture(scope="session")
def fitted_featurizer(multi_column_tables):
    featurizer = tiny_featurizer()
    featurizer.fit(multi_column_tables)
    return featurizer


@pytest.fixture(scope="session")
def trained_base(train_test_tables):
    train, _ = train_test_tables
    model = make_tiny_model(use_topic=False, use_struct=False)
    model.fit(train)
    return model


@pytest.fixture(scope="session")
def trained_sato(train_test_tables):
    train, _ = train_test_tables
    model = make_tiny_model(use_topic=True, use_struct=True)
    model.fit(train)
    return model
