"""Batched model-core inference: parity with the per-table loop oracle.

The ``batched`` model backend must be a pure performance knob: for any
fitted model and any batch of tables it decodes exactly the labels the
per-table loop does.  These tests sweep the CRF batch decode over table
counts, column counts, tie-breaking unaries and hostile padding values, and
check the end-to-end path across all four paper variants and the serving
``Predictor``.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.crf import LinearChainCRF
from repro.models import MODEL_BACKENDS, pad_unaries
from repro.serving import Predictor

#: Property-style sweep axes for the CRF parity fixtures.
TABLE_COUNTS = (1, 7)
COLUMN_COUNTS = (1, 2, 40)
N_STATES = (2, 9)
PAD_VALUES = (0.0, np.nan, -np.inf)


def make_crf(n_states: int, seed: int) -> LinearChainCRF:
    rng = np.random.default_rng(seed)
    return LinearChainCRF(
        n_states,
        pairwise=rng.normal(size=(n_states, n_states)),
        unary_weight=1.0 if seed % 2 else 1.7,
    )


def make_unaries(
    n_tables: int, n_columns: int, n_states: int, seed: int, style: str
) -> list[np.ndarray]:
    """Per-table unary matrices: random, tied, or mixed-length batches."""
    rng = np.random.default_rng(seed)
    unaries = []
    for index in range(n_tables):
        columns = n_columns if style != "mixed" else 1 + (index * 7) % n_columns
        unary = rng.normal(size=(columns, n_states))
        if style == "ties":
            # Coarse rounding plus duplicated states force argmax ties both
            # in the recurrence and in the final-state selection.
            unary = np.round(unary)
            unary[:, -1] = unary[:, 0]
        unaries.append(unary)
    return unaries


def pad_batch(unaries: list[np.ndarray], n_states: int, pad: float) -> tuple:
    lengths = np.array([u.shape[0] for u in unaries], dtype=np.int64)
    padded = np.full((len(unaries), int(lengths.max()), n_states), pad)
    for row, unary in enumerate(unaries):
        padded[row, : unary.shape[0]] = unary
    return padded, lengths


class TestViterbiBatchParity:
    @pytest.mark.parametrize(
        "n_tables,n_columns,n_states,style",
        [
            (t, c, s, style)
            for t, c, s in itertools.product(TABLE_COUNTS, COLUMN_COUNTS, N_STATES)
            for style in ("random", "ties", "mixed")
        ],
    )
    def test_bit_identical_to_loop(self, n_tables, n_columns, n_states, style):
        crf = make_crf(n_states, seed=n_tables * 100 + n_columns)
        unaries = make_unaries(n_tables, n_columns, n_states, seed=7, style=style)
        expected = [crf.viterbi(u) for u in unaries]
        padded, lengths = pad_batch(unaries, n_states, pad=0.0)
        decoded = crf.viterbi_batch(padded, lengths)
        assert len(decoded) == n_tables
        for want, got in zip(expected, decoded):
            assert got.dtype == np.int64
            assert np.array_equal(want, got)

    @pytest.mark.parametrize("pad", PAD_VALUES, ids=["zeros", "nan", "-inf"])
    def test_padding_value_is_never_read(self, pad):
        """NaN-free masking: hostile padding cannot change any decoded label."""
        crf = make_crf(5, seed=3)
        unaries = make_unaries(7, 40, 5, seed=11, style="mixed")
        expected = [crf.viterbi(u) for u in unaries]
        padded, lengths = pad_batch(unaries, 5, pad=pad)
        with np.errstate(invalid="raise"):  # masking must not compute on padding
            decoded = crf.viterbi_batch(padded, lengths)
        for want, got in zip(expected, decoded):
            assert np.array_equal(want, got)
            assert np.all(got >= 0) and np.all(got < 5)

    def test_empty_batch_and_zero_length_rows(self):
        crf = make_crf(4, seed=0)
        assert crf.viterbi_batch(np.zeros((0, 3, 4)), np.zeros(0, dtype=int)) == []
        decoded = crf.viterbi_batch(np.zeros((2, 0, 4)), np.array([0, 0]))
        assert [d.shape for d in decoded] == [(0,), (0,)]
        # A zero-length chain mixed into a real batch decodes to an empty row.
        unaries = make_unaries(3, 4, 4, seed=5, style="random")
        padded, lengths = pad_batch(unaries, 4, pad=np.nan)
        lengths[1] = 0
        decoded = crf.viterbi_batch(padded, lengths)
        assert decoded[1].shape == (0,)
        assert np.array_equal(decoded[0], crf.viterbi(unaries[0]))
        assert np.array_equal(decoded[2], crf.viterbi(unaries[2]))

    def test_rejects_malformed_inputs(self):
        crf = make_crf(3, seed=0)
        with pytest.raises(ValueError):
            crf.viterbi_batch(np.zeros((2, 4)), np.array([2, 2]))  # not 3-D
        with pytest.raises(ValueError):
            crf.viterbi_batch(np.zeros((2, 4, 5)), np.array([2, 2]))  # bad states
        with pytest.raises(ValueError):
            crf.viterbi_batch(np.zeros((2, 4, 3)), np.array([2]))  # bad lengths
        with pytest.raises(ValueError):
            crf.viterbi_batch(np.zeros((2, 4, 3)), np.array([2, 5]))  # > max_cols


class TestPadUnaries:
    def test_layout_and_log_values(self):
        probas = [np.full((2, 3), 0.5), np.full((4, 3), 0.125)]
        unaries, lengths = pad_unaries(probas, n_states=3)
        assert unaries.shape == (2, 4, 3)
        assert lengths.tolist() == [2, 4]
        assert np.array_equal(unaries[0, :2], np.log(probas[0] + 1e-12))
        assert np.all(unaries[0, 2:] == 0.0)

    def test_matches_loop_log_epsilon(self):
        """The padded unaries must equal the loop path's log(p + eps) exactly."""
        rng = np.random.default_rng(0)
        proba = rng.random((5, 4))
        unaries, _ = pad_unaries([proba], n_states=4)
        assert np.array_equal(unaries[0], np.log(proba + 1e-12))

    def test_empty(self):
        unaries, lengths = pad_unaries([], n_states=3)
        assert unaries.shape == (0, 0, 3)
        assert lengths.shape == (0,)
        unaries, lengths = pad_unaries([np.zeros((0, 3))], n_states=3)
        assert unaries.shape == (1, 0, 3)
        assert lengths.tolist() == [0]


class TestEndToEndParity:
    def test_variant_batch_matches_loop(self, fitted_variant, corpus_small):
        """All four paper variants decode identical labels on both backends."""
        serve = corpus_small[:40]  # mixed singleton and multi-column tables
        loop = [fitted_variant.predict_table(t) for t in serve]
        assert fitted_variant.set_model_backend("loop").predict_tables(serve) == loop
        fitted_variant.set_model_backend("batched")
        assert fitted_variant.predict_tables(serve) == loop

    def test_variant_proba_batch_matches_loop(self, fitted_variant, corpus_small):
        serve = corpus_small[:12]
        loop = [fitted_variant.predict_proba_table(t) for t in serve]
        fitted_variant.set_model_backend("batched")
        batched = fitted_variant.predict_proba_tables(serve)
        for want, got in zip(loop, batched):
            assert want.shape == got.shape
            assert np.allclose(want, got, rtol=1e-9, atol=1e-12)

    def test_labels_from_proba_batch(self, trained_sato, corpus_small):
        """The decode-only batch API matches per-table labels_from_proba."""
        probas = trained_sato.column_model.predict_proba_tables(corpus_small[:25])
        loop = [trained_sato.labels_from_proba(p) for p in probas]
        assert trained_sato.labels_from_proba_batch(probas) == loop

    def test_single_table_and_single_column_batches(self, trained_sato, corpus_small):
        singles = [t for t in corpus_small if t.n_columns == 1][:2]
        multi = [t for t in corpus_small if t.n_columns > 1][:2]
        trained_sato.set_model_backend("batched")
        for batch in ([multi[0]], singles[:1], singles + multi):
            loop = [trained_sato.predict_table(t) for t in batch]
            assert trained_sato.predict_tables(batch) == loop

    def test_invalid_backend_rejected(self, trained_sato):
        with pytest.raises(ValueError):
            trained_sato.set_model_backend("gpu")
        assert trained_sato.model_backend in MODEL_BACKENDS


class TestHardCaseSuiteParity:
    """Loop vs batched labels on the shipped adversarial suites.

    Unicode-heavy and dirty-column tables stress padding, masking and the
    featurizer -> unary pipeline with hostile values; the batched backend
    must still decode labels bit-identical to the per-table loop.
    """

    def test_batched_matches_loop_on_hard_cases(self, trained_sato, hard_case_tables):
        loop = [trained_sato.predict_table(t) for t in hard_case_tables]
        assert (
            trained_sato.set_model_backend("loop").predict_tables(hard_case_tables)
            == loop
        )
        trained_sato.set_model_backend("batched")
        assert trained_sato.predict_tables(hard_case_tables) == loop

    def test_predictor_backends_agree_on_hard_cases(
        self, trained_sato, hard_case_tables
    ):
        loop = Predictor(trained_sato, model_backend="loop")
        batched = Predictor(trained_sato, model_backend="batched")
        assert loop.predict_tables(hard_case_tables) == batched.predict_tables(
            hard_case_tables
        )


class TestPredictorBackends:
    def test_predictor_backends_agree(self, trained_sato, serving_split):
        _, test = serving_split
        loop = Predictor(trained_sato, model_backend="loop")
        batched = Predictor(trained_sato, model_backend="batched")
        expected = [trained_sato.predict_table(t) for t in test]
        assert loop.predict_tables(test) == expected
        assert batched.predict_tables(test) == expected
        assert batched.predict_info()["model_backend"] == "batched"

    def test_predictor_rejects_unknown_backend(self, trained_sato):
        with pytest.raises(ValueError):
            Predictor(trained_sato, model_backend="vectorized")

    def test_default_backend_is_batched(self, trained_sato):
        assert Predictor(trained_sato).model_backend == "batched"
