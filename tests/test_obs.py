"""Tests for the observability layer (``repro.obs``) and its serving wiring.

Units first — span nesting, cross-thread propagation, stage aggregates,
Prometheus rendering, structured logs, the profiling reducer — then two
end-to-end layers against real sockets: a single-process ``ServingServer``
(trace header, ``/metrics.prom``, queue-wait percentiles, JSON request
logs) and a two-worker prefork fleet, where one request must come back as
ONE trace whose worker-recorded spans were shipped over the pipe and
re-parented on the front end.  Worker crash (SIGKILL) mid-traffic must
never corrupt the front-end trace buffer, and spans recorded after the
supervisor restarts the worker must carry the new pid in their worker tag.
"""

from __future__ import annotations

import http.client
import io
import json
import os
import signal
import threading
import time

import pytest

from repro.obs import (
    COVERAGE_STAGES,
    RequestLogger,
    StageAggregates,
    Tracer,
    profile_predictor,
    render_flame,
    render_prometheus,
    get_tracer,
)
from repro.serving import Predictor, save_model, serve_in_thread
from repro.serving.fleet import ServingFleet
from repro.tables import Column, Table

TIMEOUT = 30


def request(port, method, path, payload=None):
    """One HTTP request; returns (status, json body, response headers)."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=TIMEOUT)
    try:
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        connection.request(
            method, path, body=body, headers={"Content-Type": "application/json"}
        )
        reply = connection.getresponse()
        raw = reply.read()
        content_type = reply.getheader("Content-Type", "")
        parsed = raw.decode("utf-8")
        if content_type.startswith("application/json"):
            parsed = json.loads(parsed)
        return reply.status, parsed, dict(reply.getheaders())
    finally:
        connection.close()


# ------------------------------------------------------------------ tracer


class TestTracer:
    def test_nesting_follows_the_code(self):
        tracer = Tracer()
        with tracer.span("request") as root:
            with tracer.span("featurize") as outer:
                with tracer.span("featurize.char") as inner:
                    pass
            with tracer.span("decode") as sibling:
                pass
        spans = {span.name: span for span in tracer.trace(root.trace_id)}
        assert set(spans) == {"request", "featurize", "featurize.char", "decode"}
        assert spans["featurize"].parent_id == root.span_id
        assert spans["featurize.char"].parent_id == outer.span_id
        assert spans["decode"].parent_id == root.span_id
        assert inner.trace_id == sibling.trace_id == root.trace_id
        assert root.duration >= outer.duration >= inner.duration >= 0.0

    def test_attach_carries_a_trace_across_threads(self):
        tracer = Tracer()
        recorded = {}

        def worker(context):
            token = tracer.attach(tuple(context))  # wire form: plain tuple
            try:
                with tracer.span("forward") as span:
                    recorded["span"] = span
            finally:
                tracer.detach(token)
            recorded["after"] = tracer.current()

        with tracer.span("request") as root:
            thread = threading.Thread(target=worker, args=(root.context(),))
            thread.start()
            thread.join()
        assert recorded["span"].trace_id == root.trace_id
        assert recorded["span"].parent_id == root.span_id
        assert recorded["after"] is None  # detach restored the blank context

    def test_take_removes_one_trace_and_adopt_restores_it(self):
        worker_side, front_side = Tracer(), Tracer()
        with worker_side.span("worker.batch") as batch:
            pass
        with worker_side.span("unrelated"):
            pass
        wire = worker_side.take(batch.trace_id)
        assert [w[3] for w in wire] == ["worker.batch"]
        assert worker_side.trace(batch.trace_id) == []  # shipped exactly once
        assert [s.name for s in worker_side.spans()] == ["unrelated"]

        adopted = front_side.adopt(wire, worker="w1:4242")
        assert [span.worker for span in adopted] == ["w1:4242"]
        merged = front_side.trace(batch.trace_id)
        assert [span.name for span in merged] == ["worker.batch"]
        assert merged[0].span_id == batch.span_id  # identity survives the wire

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("request") as handle:
            handle.meta = {"still": "writable"}  # the shared no-op handle
        tracer.observe("queue.wait", 1.0)
        assert tracer.spans() == []
        assert tracer.stages.snapshot() == {}

    def test_span_buffer_is_bounded(self):
        tracer = Tracer(max_spans=4)
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        assert [span.name for span in tracer.spans()] == ["s6", "s7", "s8", "s9"]


class TestStageAggregates:
    def test_share_is_relative_to_the_request_root(self):
        stages = StageAggregates(window=8)
        for _ in range(4):
            stages.observe("request", 0.010)
            stages.observe("forward", 0.004)
        snap = stages.snapshot()
        assert snap["forward"]["share"] == pytest.approx(0.4)
        assert snap["request"]["share"] == pytest.approx(1.0)
        assert list(snap) == ["request", "forward"]  # sorted by total time

    def test_percentiles_track_the_bounded_window_only(self):
        stages = StageAggregates(window=4)
        for seconds in (1.0, 1.0, 1.0, 0.002, 0.002, 0.002, 0.002):
            stages.observe("decode", seconds)
        snap = stages.snapshot()["decode"]
        assert snap["count"] == 7  # cumulative count keeps everything
        assert snap["window"] == 4
        assert snap["p99_ms"] == pytest.approx(2.0)  # old 1s spikes evicted


# ------------------------------------------------- prometheus + request logs


class TestPrometheusRendering:
    def test_real_shape_renders_grouped_gauges(self):
        text = render_prometheus(
            {
                "uptime_seconds": 12.5,
                "requests": {"completed": 3, "rejected": 0},
                "draining": False,
                "model_version": "v0001",  # strings are skipped
                "stages": {
                    "request": {"count": 3, "p99_ms": 4.0},
                    "forward": {"count": 3, "p99_ms": 1.0},
                },
            }
        )
        lines = text.splitlines()
        assert "repro_uptime_seconds 12.5" in lines
        assert "repro_requests_completed 3.0" in lines
        assert "repro_draining 0" in lines
        assert 'repro_stage_p99_ms{stage="request"} 4.0' in lines
        assert 'repro_stage_p99_ms{stage="forward"} 1.0' in lines
        assert not any("v0001" in line for line in lines)
        # Both stage samples sit in one group directly under their TYPE line.
        start = lines.index("# TYPE repro_stage_p99_ms gauge")
        assert lines[start + 1].startswith("repro_stage_p99_ms{")
        assert lines[start + 2].startswith("repro_stage_p99_ms{")

    def test_label_values_are_escaped(self):
        text = render_prometheus({"stages": {'a"b\\c': {"count": 1}}})
        assert 'stage="a\\"b\\\\c"' in text


class TestRequestLogger:
    def test_one_json_line_per_event(self):
        buffer = io.StringIO()
        logger = RequestLogger(stream=buffer)
        logger.log("request", clock=lambda: 1.0, trace_id="t1", status=200)
        logger.log("request", clock=lambda: 2.0, trace_id="t2", status=400)
        records = [json.loads(line) for line in buffer.getvalue().splitlines()]
        assert [r["trace_id"] for r in records] == ["t1", "t2"]
        assert records[0]["ts"] == 1.0 and records[1]["status"] == 400

    def test_disabled_logger_writes_nothing(self):
        buffer = io.StringIO()
        RequestLogger(stream=buffer, enabled=False).log("request", status=200)
        assert buffer.getvalue() == ""

    def test_unserialisable_fields_degrade_to_repr(self):
        buffer = io.StringIO()
        RequestLogger(stream=buffer).log("request", weird={1, 2})
        assert json.loads(buffer.getvalue())["weird"] == repr({1, 2})


# ---------------------------------------------------------------- profiling


class _SleepyPredictor:
    """Deterministic stand-in: every stage sleeps a known amount."""

    def predict_tables(self, tables):
        tracer = get_tracer()
        with tracer.span("featurize"):
            time.sleep(0.004)
        with tracer.span("forward"):
            time.sleep(0.002)
        with tracer.span("decode"):
            with tracer.span("decode.viterbi"):
                time.sleep(0.001)
        return [["name"] * table.n_columns for table in tables]


class TestProfileReport:
    def test_report_shape_shares_and_tree(self):
        table = Table(columns=[Column(values=["x", "y"]), Column(values=["z"])])
        report = profile_predictor(_SleepyPredictor(), [table] * 6, batch_size=2)
        assert report["n_tables"] == 6 and report["n_columns"] == 12
        assert set(report["stage_shares"]) <= set(COVERAGE_STAGES)
        # Sleeps dominate this fake, so the accounting must be near-total.
        assert report["coverage"] > 0.9
        shares = report["stage_shares"]
        assert shares["featurize"] > shares["forward"] > shares["decode"]
        tree = report["tree"]
        assert tree["request"] is None
        assert tree["featurize"] == "request"
        assert tree["decode.viterbi"] == "decode"

    def test_flame_table_renders_every_stage_row(self):
        table = Table(columns=[Column(values=["x"])])
        report = profile_predictor(_SleepyPredictor(), [table] * 2, batch_size=1)
        text = render_flame(report)
        lines = text.splitlines()
        assert lines[0].startswith("stage")
        assert lines[-1].startswith("coverage:")
        for name in ("request", "featurize", "forward", "decode.viterbi"):
            assert any(name in line for line in lines), text
        # Nesting shows as indentation: decode.viterbi sits under decode.
        viterbi = next(line for line in lines if "decode.viterbi" in line)
        decode = next(line for line in lines if line.lstrip().startswith("decode "))
        indent = lambda line: len(line) - len(line.lstrip())
        assert indent(viterbi) > indent(decode)


# ------------------------------------------------- single-process server e2e


@pytest.fixture(scope="module")
def obs_server(trained_base):
    predictor = Predictor(trained_base, cache_size=1024)
    with serve_in_thread(
        predictor, port=0, max_batch_size=8, max_wait_ms=5.0, log_format="json"
    ) as handle:
        yield handle
    predictor.close()


class TestServerObservability:
    def test_predict_returns_trace_header_and_a_complete_trace(
        self, obs_server, serving_split
    ):
        _, test = serving_split
        status, _, headers = request(
            obs_server.port, "POST", "/v1/predict", {"table": test[0].to_dict()}
        )
        assert status == 200
        trace_id = headers["X-Trace-Id"]
        names = {span.name for span in get_tracer().trace(trace_id)}
        # One trace covers admission to encode, through the dispatch thread.
        for stage in (
            "request",
            "request.parse",
            "batch.predict",
            "featurize",
            "forward",
            "decode",
            "encode.json",
        ):
            assert stage in names, (stage, sorted(names))

    def test_metrics_exposes_stage_aggregates_and_queue_waits(
        self, obs_server, serving_split
    ):
        _, test = serving_split
        request(obs_server.port, "POST", "/v1/predict", {"table": test[0].to_dict()})
        status, metrics, _ = request(obs_server.port, "GET", "/metrics")
        assert status == 200
        stages = metrics["stages"]
        assert stages["request"]["count"] >= 1
        assert stages["forward"]["p95_ms"] >= 0.0
        assert 0.0 < stages["forward"]["share"] <= 1.0
        waits = metrics["queue_wait_ms"]
        assert waits["window"] >= 1
        assert 0.0 <= waits["p50"] <= waits["p99"] <= metrics["latency_ms"]["p99"]

    def test_healthz_reports_uptime_and_wall_clock_start(self, obs_server):
        before = time.time()
        status, health, _ = request(obs_server.port, "GET", "/healthz")
        assert status == 200
        assert health["uptime_seconds"] > 0.0
        assert 0.0 < health["started_at"] <= before

    def test_metrics_prom_is_scrapable_text(self, obs_server, serving_split):
        _, test = serving_split
        request(obs_server.port, "POST", "/v1/predict", {"table": test[0].to_dict()})
        status, text, headers = request(obs_server.port, "GET", "/metrics.prom")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert isinstance(text, str)
        lines = text.splitlines()
        assert any(line.startswith("repro_uptime_seconds ") for line in lines)
        assert any(line.startswith("repro_latency_ms_p99 ") for line in lines)
        assert any(line.startswith('repro_stage_p50_ms{stage="request"}') for line in lines)
        for line in lines:
            assert line.startswith("#") or line.startswith("repro_"), line

    def test_json_request_log_carries_trace_and_outcome(
        self, obs_server, serving_split
    ):
        _, test = serving_split
        buffer = io.StringIO()
        obs_server.server.logger.stream = buffer
        try:
            status, _, headers = request(
                obs_server.port, "POST", "/v1/predict", {"table": test[0].to_dict()}
            )
            request(obs_server.port, "POST", "/v1/predict", {"table": 3})
        finally:
            obs_server.server.logger.stream = io.StringIO()
        assert status == 200
        records = [json.loads(line) for line in buffer.getvalue().splitlines()]
        ok = next(r for r in records if r.get("outcome") == "ok")
        assert ok["trace_id"] == headers["X-Trace-Id"]
        assert ok["status"] == 200 and ok["method"] == "POST"
        assert ok["path"] == "/v1/predict"
        assert ok["batch_size"] >= 1 and ok["duration_ms"] > 0.0
        bad = next(r for r in records if r.get("outcome") == "malformed")
        assert bad["status"] == 400


# --------------------------------------------------------------- fleet e2e


@pytest.fixture(scope="module")
def obs_bundle(tmp_path_factory, trained_base):
    return save_model(trained_base, tmp_path_factory.mktemp("obs-fleet") / "bundle")


@pytest.fixture(scope="module")
def obs_fleet_server(obs_bundle):
    fleet = ServingFleet(2, bundle_path=obs_bundle, max_wait_ms=5.0, max_queue=64)
    with serve_in_thread(fleet, port=0, batcher=fleet) as handle:
        yield handle


def _worker_spans(trace_id):
    return [s for s in get_tracer().trace(trace_id) if s.worker is not None]


class TestFleetTraceAssembly:
    def test_one_request_yields_one_reassembled_trace(
        self, obs_fleet_server, serving_split
    ):
        _, test = serving_split
        status, _, headers = request(
            obs_fleet_server.port, "POST", "/v1/predict", {"table": test[0].to_dict()}
        )
        assert status == 200
        trace_id = headers["X-Trace-Id"]
        spans = get_tracer().trace(trace_id)
        by_name = {span.name: span for span in spans}
        # Front-end spans and worker-recorded spans, one trace ID.
        for stage in (
            "request",
            "route",
            "worker.batch",
            "featurize",
            "forward",
            "decode",
            "encode.json",
        ):
            assert stage in by_name, (stage, sorted(by_name))
        assert all(span.trace_id == trace_id for span in spans)
        # The worker half was re-parented under this request: worker.batch's
        # parent is the request span itself, and the pipeline stages hang
        # off worker.batch.
        assert by_name["worker.batch"].parent_id == by_name["request"].span_id
        assert by_name["featurize"].parent_id == by_name["worker.batch"].span_id
        # Adopted spans carry the wid:pid tag of a live fleet worker.
        _, health, _ = request(obs_fleet_server.port, "GET", "/healthz")
        live = {
            f"{worker['worker']}:{worker['pid']}"
            for worker in health["fleet"]["workers"]
        }
        tags = {span.worker for span in spans if span.worker is not None}
        assert tags and tags <= live

    def test_fleet_metrics_merge_worker_stage_aggregates(
        self, obs_fleet_server, serving_split
    ):
        _, test = serving_split
        for table in test[:3]:
            request(
                obs_fleet_server.port,
                "POST",
                "/v1/predict",
                {"table": table.to_dict()},
            )
        status, metrics, _ = request(obs_fleet_server.port, "GET", "/metrics")
        assert status == 200
        assert metrics["fleet"]["queue_wait_ms"]["window"] >= 1
        per_worker = [w["stages"] for w in metrics["fleet"]["workers"] if "stages" in w]
        assert per_worker and any("forward" in stages for stages in per_worker)

    def test_sigkill_mid_traffic_never_corrupts_front_end_traces(
        self, obs_fleet_server, serving_split
    ):
        _, test = serving_split
        status, _, headers = request(
            obs_fleet_server.port, "POST", "/v1/predict", {"table": test[0].to_dict()}
        )
        assert status == 200
        surviving_trace = headers["X-Trace-Id"]
        before = {s.span_id: s.name for s in get_tracer().trace(surviving_trace)}

        _, health, _ = request(obs_fleet_server.port, "GET", "/healthz")
        victim = health["fleet"]["workers"][0]["pid"]
        os.kill(victim, signal.SIGKILL)

        # Hammer requests across the crash + restart window: every reply is
        # either served (200) or honestly refused, never a broken trace.
        deadline = time.monotonic() + TIMEOUT
        recovered = False
        while time.monotonic() < deadline:
            status, _, headers = request(
                obs_fleet_server.port,
                "POST",
                "/v1/predict",
                {"table": test[1].to_dict()},
            )
            assert status in (200, 429, 500, 503)
            if status == 200:
                spans = get_tracer().trace(headers["X-Trace-Id"])
                assert {s.name for s in spans} >= {"request", "route"}
            _, health, _ = request(obs_fleet_server.port, "GET", "/healthz")
            fleet = health["fleet"]
            if fleet["alive"] == 2 and fleet["restarts"] >= 1 and status == 200:
                recovered = True
                break
            time.sleep(0.05)
        assert recovered
        # The pre-crash trace is byte-for-byte what it was: no span lost,
        # none re-written by the dying worker's half-shipped state.
        after = {s.span_id: s.name for s in get_tracer().trace(surviving_trace)}
        assert after == before

    def test_restarted_worker_spans_carry_the_new_pid(
        self, obs_fleet_server, serving_split
    ):
        # Runs after the SIGKILL test restarted a worker (module-scoped
        # fixture), but re-checks the restart invariant independently so
        # ordering only affects coverage, not correctness.
        _, test = serving_split
        _, health, _ = request(obs_fleet_server.port, "GET", "/healthz")
        live = {
            f"{worker['worker']}:{worker['pid']}"
            for worker in health["fleet"]["workers"]
        }
        dead_pids = set()
        for table in test[:4]:
            status, _, headers = request(
                obs_fleet_server.port,
                "POST",
                "/v1/predict",
                {"table": table.to_dict()},
            )
            if status != 200:
                continue
            for span in _worker_spans(headers["X-Trace-Id"]):
                assert span.worker in live
                dead_pids.add(span.worker)
        assert dead_pids  # at least one traced batch landed on a live worker
