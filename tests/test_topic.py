"""Tests for the topic modelling substrate (dictionary, LDA, intent, analysis)."""

import numpy as np
import pytest

from repro.tables import Column, Table
from repro.topic import (
    Dictionary,
    LatentDirichletAllocation,
    TableIntentEstimator,
    top_salient_topics,
    topic_saliency,
    topic_type_distribution,
)


def _documents():
    sports = [["team", "score", "goal", "win", "league"] for _ in range(15)]
    finance = [["stock", "price", "market", "share", "profit"] for _ in range(15)]
    return sports + finance


class TestDictionary:
    def test_fit_and_lookup(self):
        dictionary = Dictionary(no_below=1).fit([["a", "b"], ["a", "c"]])
        assert "a" in dictionary
        assert len(dictionary) >= 2

    def test_no_below_filters_rare(self):
        dictionary = Dictionary(no_below=2).fit([["a", "b"], ["a", "c"]])
        assert "a" in dictionary
        assert "b" not in dictionary

    def test_no_above_filters_ubiquitous(self):
        documents = [["the", f"w{i}"] for i in range(10)]
        dictionary = Dictionary(no_below=1, no_above=0.5).fit(documents)
        assert "the" not in dictionary

    def test_doc2bow(self):
        dictionary = Dictionary(no_below=1).fit([["a", "b", "a"]])
        bow = dict(dictionary.doc2bow(["a", "a", "b", "zzz"]))
        assert bow[dictionary.token_to_id["a"]] == 2
        assert len(bow) == 2

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            Dictionary(no_below=0)
        with pytest.raises(ValueError):
            Dictionary(no_above=0.0)

    def test_max_size(self):
        documents = [[f"w{i}" for i in range(50)]] * 2
        dictionary = Dictionary(no_below=1, max_size=10).fit(documents)
        assert len(dictionary) == 10


class TestLDA:
    @pytest.fixture(scope="class")
    def fitted(self):
        return LatentDirichletAllocation(n_topics=4, n_iterations=20, seed=0).fit(_documents())

    def test_transform_is_distribution(self, fitted):
        vector = fitted.transform(["team", "goal", "win"])
        assert vector.shape == (4,)
        assert vector.sum() == pytest.approx(1.0)
        assert np.all(vector >= 0)

    def test_empty_document_uniform(self, fitted):
        vector = fitted.transform([])
        assert np.allclose(vector, 0.25)

    def test_related_documents_have_similar_topics(self, fitted):
        sports_a = fitted.transform(["team", "goal", "league"])
        sports_b = fitted.transform(["win", "score", "team"])
        finance = fitted.transform(["stock", "market", "profit"])
        sim_same = float(sports_a @ sports_b)
        sim_diff = float(sports_a @ finance)
        assert sim_same > sim_diff

    def test_topic_top_tokens(self, fitted):
        tokens = fitted.topic_top_tokens(0, k=3)
        assert len(tokens) <= 3
        assert all(isinstance(t, str) for t in tokens)

    def test_topic_word_distribution_normalised(self, fitted):
        distribution = fitted.topic_word_distribution()
        assert np.allclose(distribution.sum(axis=1), 1.0)

    def test_transform_many_shape(self, fitted):
        matrix = fitted.transform_many([["team"], ["stock"]])
        assert matrix.shape == (2, 4)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LatentDirichletAllocation(n_topics=3).transform(["a"])

    def test_invalid_topics(self):
        with pytest.raises(ValueError):
            LatentDirichletAllocation(n_topics=0)

    def test_deterministic_given_seed(self):
        a = LatentDirichletAllocation(n_topics=3, n_iterations=10, seed=1).fit(_documents())
        b = LatentDirichletAllocation(n_topics=3, n_iterations=10, seed=1).fit(_documents())
        assert np.allclose(a.transform(["team", "goal"]), b.transform(["team", "goal"]))


class TestIntentEstimator:
    @pytest.fixture(scope="class")
    def estimator(self, corpus_small):
        estimator = TableIntentEstimator(n_topics=6, n_iterations=6, infer_iterations=6, seed=0)
        estimator.fit([t.without_headers() for t in corpus_small[:60]])
        return estimator

    # Note: the fixture request for corpus_small at class scope works because
    # corpus_small is session-scoped.

    def test_topic_vector_is_distribution(self, estimator, corpus_small):
        vector = estimator.topic_vector(corpus_small[0])
        assert vector.shape == (6,)
        assert vector.sum() == pytest.approx(1.0)

    def test_topic_vectors_batch(self, estimator, corpus_small):
        matrix = estimator.topic_vectors(corpus_small[:4])
        assert matrix.shape == (4, 6)

    def test_unfitted_raises(self, corpus_small):
        estimator = TableIntentEstimator(n_topics=4)
        with pytest.raises(RuntimeError):
            estimator.topic_vector(corpus_small[0])

    def test_table_document_ignores_headers(self, estimator):
        table = Table(
            columns=[Column(values=["Paris", "Rome"], header="city", semantic_type="city")]
        )
        document = estimator.table_document(table)
        assert "city" not in document
        assert "paris" in document


class TestTopicAnalysis:
    @pytest.fixture(scope="class")
    def setup(self, corpus_small):
        estimator = TableIntentEstimator(n_topics=5, n_iterations=6, infer_iterations=5, seed=0)
        tables = [t for t in corpus_small if t.n_columns > 1][:40]
        estimator.fit([t.without_headers() for t in tables])
        return estimator, tables

    def test_type_topic_distribution_shape(self, setup):
        estimator, tables = setup
        matrix = topic_type_distribution(estimator, tables)
        assert matrix.shape == (78, 5)
        assert np.all(matrix >= 0)

    def test_saliency_scores(self, setup):
        estimator, tables = setup
        matrix = topic_type_distribution(estimator, tables)
        saliency = topic_saliency(matrix, k=3)
        assert saliency.shape == (5,)
        assert np.all(saliency >= 0)

    def test_top_salient_topics(self, setup):
        estimator, tables = setup
        summaries = top_salient_topics(estimator, tables, n_topics=3, k_types=4)
        assert len(summaries) == 3
        assert summaries[0].saliency >= summaries[-1].saliency
        for summary in summaries:
            assert len(summary.top_types) == 4
