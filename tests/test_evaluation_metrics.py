"""Tests for the classification metrics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.evaluation import (
    classification_report,
    f1_scores,
    macro_f1,
    support_weighted_f1,
)


class TestClassificationReport:
    def test_perfect_predictions(self):
        labels = ["city", "name", "city", "year"]
        report = classification_report(labels, labels)
        assert report.macro_f1 == pytest.approx(1.0)
        assert report.weighted_f1 == pytest.approx(1.0)
        assert report.accuracy == pytest.approx(1.0)

    def test_all_wrong(self):
        report = classification_report(["city", "city"], ["name", "name"])
        assert report.macro_f1 == pytest.approx(0.0)
        assert report.weighted_f1 == pytest.approx(0.0)

    def test_known_values(self):
        y_true = ["a", "a", "a", "b"]
        y_pred = ["a", "a", "b", "b"]
        report = classification_report(y_true, y_pred)
        # type a: precision 1.0, recall 2/3 -> F1 = 0.8
        assert report.per_type["a"].f1 == pytest.approx(0.8)
        # type b: precision 0.5, recall 1.0 -> F1 = 2/3
        assert report.per_type["b"].f1 == pytest.approx(2 / 3)
        assert report.macro_f1 == pytest.approx((0.8 + 2 / 3) / 2)
        assert report.weighted_f1 == pytest.approx((0.8 * 3 + (2 / 3) * 1) / 4)
        assert report.accuracy == pytest.approx(0.75)

    def test_weighted_emphasises_frequent_types(self):
        y_true = ["a"] * 9 + ["b"]
        y_pred = ["a"] * 9 + ["c"]
        report = classification_report(y_true, y_pred)
        assert report.weighted_f1 > report.macro_f1

    def test_macro_emphasises_rare_types(self):
        # Frequent type perfect, rare type missed entirely.
        y_true = ["a"] * 9 + ["b"]
        y_pred = ["a"] * 10
        report = classification_report(y_true, y_pred)
        # type a: precision 0.9, recall 1.0 -> F1 = 18/19; type b: F1 = 0.
        f1_a = 2 * 0.9 * 1.0 / 1.9
        assert report.macro_f1 == pytest.approx(f1_a / 2)
        assert report.macro_f1 < report.weighted_f1

    def test_support_counts(self):
        report = classification_report(["a", "a", "b"], ["a", "b", "b"])
        assert report.per_type["a"].support == 2
        assert report.per_type["b"].support == 1

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            classification_report(["a"], ["a", "b"])

    def test_empty_inputs(self):
        report = classification_report([], [])
        assert report.macro_f1 == 0.0
        assert report.n_samples == 0

    def test_predicted_only_types_ignored_in_averages(self):
        # "c" never appears in y_true: it has no support and is excluded.
        report = classification_report(["a", "b"], ["a", "c"])
        assert "c" not in report.per_type
        assert report.macro_f1 == pytest.approx(0.5)

    def test_explicit_type_list(self):
        report = classification_report(["a", "b"], ["a", "b"], types=["a", "b", "z"])
        assert report.per_type["z"].support == 0
        assert report.macro_f1 == pytest.approx(1.0)

    def test_f1_lookup_helper(self):
        report = classification_report(["a"], ["a"])
        assert report.f1("a") == pytest.approx(1.0)
        assert report.f1("zzz") == 0.0

    def test_helper_functions(self):
        y_true, y_pred = ["a", "b", "a"], ["a", "b", "b"]
        scores = f1_scores(y_true, y_pred)
        assert set(scores) == {"a", "b"}
        assert macro_f1(y_true, y_pred) == classification_report(y_true, y_pred).macro_f1
        assert support_weighted_f1(y_true, y_pred) == pytest.approx(
            classification_report(y_true, y_pred).weighted_f1
        )


class TestMetricProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.sampled_from(["city", "name", "year", "age"]), min_size=1, max_size=40
        ),
        st.lists(
            st.sampled_from(["city", "name", "year", "age"]), min_size=1, max_size=40
        ),
    )
    def test_scores_bounded(self, y_true, y_pred):
        n = min(len(y_true), len(y_pred))
        report = classification_report(y_true[:n], y_pred[:n])
        assert 0.0 <= report.macro_f1 <= 1.0
        assert 0.0 <= report.weighted_f1 <= 1.0
        assert 0.0 <= report.accuracy <= 1.0

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=30))
    def test_perfect_prediction_scores_one(self, labels):
        report = classification_report(labels, labels)
        assert report.macro_f1 == pytest.approx(1.0)
        assert report.weighted_f1 == pytest.approx(1.0)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.sampled_from(["a", "b", "c"]), min_size=2, max_size=30),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_permutation_invariance(self, labels, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        predictions = [labels[(i + 1) % len(labels)] for i in range(len(labels))]
        order = rng.permutation(len(labels))
        report_a = classification_report(labels, predictions)
        report_b = classification_report(
            [labels[i] for i in order], [predictions[i] for i in order]
        )
        assert report_a.macro_f1 == pytest.approx(report_b.macro_f1)
        assert report_a.weighted_f1 == pytest.approx(report_b.weighted_f1)
