"""Tests for evaluation analyses: per-type comparison, importance, timing,
t-SNE, embeddings, qualitative corrections and cross-validation."""

import numpy as np
import pytest

from repro.evaluation import (
    cluster_separation,
    collect_column_embeddings,
    evaluate_model_cv,
    find_corrections,
    pca_project,
    per_type_comparison,
    permutation_importance,
    time_model,
    tsne_project,
)
from repro.evaluation.cross_validation import collect_predictions
from repro.evaluation.embeddings import project_jointly
from repro.evaluation.qualitative import CorrectionExample

from helpers import make_tiny_model


class TestPerTypeComparison:
    def test_comparison_fields(self):
        comparison = per_type_comparison(
            ["a", "b", "a"], ["a", "b", "b"],
            ["a", "b", "a"], ["a", "a", "a"],
            name_a="ModelA", name_b="ModelB",
        )
        assert comparison.model_a == "ModelA"
        assert set(comparison.types) == {"a", "b"}
        assert comparison.delta("b") > 0
        assert "b" in comparison.improved_types

    def test_identical_models_unchanged(self):
        comparison = per_type_comparison(["a", "b"], ["a", "b"], ["a", "b"], ["a", "b"])
        assert comparison.improved_types == []
        assert comparison.degraded_types == []
        assert set(comparison.unchanged_types) == {"a", "b"}


class TestCollectPredictions:
    def test_alignment(self, trained_base, train_test_tables):
        _, test = train_test_tables
        y_true, y_pred = collect_predictions(trained_base, test)
        assert len(y_true) == len(y_pred)
        assert len(y_true) == sum(t.n_columns for t in test)


class TestCrossValidation:
    def test_cv_runs_and_aggregates(self, multi_column_tables):
        result = evaluate_model_cv(
            lambda: make_tiny_model(use_topic=False, use_struct=False),
            multi_column_tables[:30],
            k=2,
            model_name="Base",
        )
        assert result.model_name == "Base"
        assert len(result.folds) == 2
        assert 0.0 <= result.macro_f1 <= 1.0
        assert 0.0 <= result.weighted_f1 <= 1.0
        assert result.confidence_interval("macro") >= 0.0
        y_true, y_pred = result.pooled_true_pred()
        assert len(y_true) == len(y_pred) > 0


class TestPermutationImportance:
    def test_groups_and_scores(self, trained_base, train_test_tables):
        _, test = train_test_tables
        importances = permutation_importance(trained_base, test, n_repeats=1, seed=0)
        assert set(importances) == {"char", "word", "para", "stat"}
        for importance in importances.values():
            assert np.isfinite(importance.macro_drop)
            assert np.isfinite(importance.weighted_drop)

    def test_topic_group_for_sato(self, trained_sato, train_test_tables):
        _, test = train_test_tables
        importances = permutation_importance(trained_sato, test, n_repeats=1, seed=0)
        assert "topic" in importances

    def test_unsupported_model_raises(self):
        with pytest.raises(TypeError):
            permutation_importance(object(), [])


class TestTiming:
    def test_time_model_records_trials(self, train_test_tables):
        train, test = train_test_tables
        result = time_model(
            lambda: make_tiny_model(use_topic=False, use_struct=False),
            train[:10],
            test[:5],
            n_trials=1,
        )
        assert len(result.train_times) == 1
        assert result.train_time[0] > 0
        assert result.predict_time[0] >= 0
        assert result.crf_train_times == []

    def test_sato_crf_time_measured_separately(self, train_test_tables):
        train, test = train_test_tables
        result = time_model(
            lambda: make_tiny_model(use_topic=False, use_struct=True),
            train[:10],
            test[:5],
            n_trials=1,
        )
        assert len(result.crf_train_times) == 1


class TestProjections:
    def test_pca_shape(self):
        data = np.random.default_rng(0).normal(size=(20, 6))
        assert pca_project(data).shape == (20, 2)

    def test_pca_single_point(self):
        assert pca_project(np.zeros((1, 4))).shape == (1, 2)

    def test_tsne_shape(self):
        data = np.random.default_rng(0).normal(size=(25, 5))
        projected = tsne_project(data, n_iterations=50)
        assert projected.shape == (25, 2)
        assert np.all(np.isfinite(projected))

    def test_tsne_small_input_falls_back(self):
        data = np.random.default_rng(0).normal(size=(3, 4))
        assert tsne_project(data).shape == (3, 2)

    def test_tsne_separates_clear_clusters(self):
        rng = np.random.default_rng(0)
        a = rng.normal(loc=0.0, scale=0.1, size=(15, 5))
        b = rng.normal(loc=8.0, scale=0.1, size=(15, 5))
        projected = tsne_project(np.vstack([a, b]), n_iterations=150, seed=1)
        center_a = projected[:15].mean(axis=0)
        center_b = projected[15:].mean(axis=0)
        spread = max(projected[:15].std(), projected[15:].std(), 1e-6)
        assert np.linalg.norm(center_a - center_b) > spread


class TestClusterSeparation:
    def test_well_separated_scores_high(self):
        rng = np.random.default_rng(0)
        a = rng.normal(loc=0.0, scale=0.1, size=(10, 3))
        b = rng.normal(loc=5.0, scale=0.1, size=(10, 3))
        embeddings = np.vstack([a, b])
        labels = ["x"] * 10 + ["y"] * 10
        assert cluster_separation(embeddings, labels) > 0.8

    def test_mixed_clusters_score_low(self):
        rng = np.random.default_rng(0)
        embeddings = rng.normal(size=(30, 3))
        labels = ["x", "y"] * 15
        assert abs(cluster_separation(embeddings, labels)) < 0.3

    def test_single_class_returns_zero(self):
        assert cluster_separation(np.zeros((5, 2)), ["x"] * 5) == 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            cluster_separation(np.zeros((3, 2)), ["x"])


class TestCollectEmbeddings:
    def test_collects_only_requested_types(self, trained_base, train_test_tables):
        _, test = train_test_tables
        embedding_set = collect_column_embeddings(
            trained_base, test, types=("name", "city")
        )
        assert set(embedding_set.labels) <= {"name", "city"}
        assert embedding_set.embeddings.shape[0] == len(embedding_set.labels)

    def test_project_jointly_shapes(self, trained_base, trained_sato, train_test_tables):
        _, test = train_test_tables
        set_a = collect_column_embeddings(trained_sato.column_model, test, types=("name", "city", "age"))
        set_b = collect_column_embeddings(trained_base.column_model, test, types=("name", "city", "age"))
        if len(set_a) and len(set_b):
            projected_a, projected_b = project_jointly(set_a, set_b)
            assert projected_a.shape == (len(set_a), 2)
            assert projected_b.shape == (len(set_b), 2)


class TestQualitative:
    def test_correction_example_counts(self):
        example = CorrectionExample(
            table_id="t",
            true_types=["code", "name", "city"],
            before=["symbol", "team", "city"],
            after=["code", "name", "city"],
        )
        assert example.n_corrected == 2
        assert example.n_broken == 0

    def test_find_corrections_runs(self, trained_base, trained_sato, train_test_tables):
        _, test = train_test_tables
        examples = find_corrections(trained_base, trained_sato, test, max_examples=5)
        for example in examples:
            assert example.n_corrected > example.n_broken
            assert len(example.before) == len(example.after) == len(example.true_types)

    def test_identical_models_produce_no_corrections(self, trained_base, train_test_tables):
        _, test = train_test_tables
        assert find_corrections(trained_base, trained_base, test) == []
