"""Tests for the model layer: multi-input network, Sherlock, topic-aware, Sato, attention."""

import numpy as np
import pytest

from repro.models import (
    AttentionColumnModel,
    MultiInputClassifier,
    SatoModel,
    TrainingConfig,
)
from repro.models.column_network import GroupSpec, NetworkTrainer
from repro.tables import Column, Table
from repro.types import NUM_TYPES, SEMANTIC_TYPES

from helpers import make_tiny_model


def _toy_inputs(batch, rng):
    return {
        "a": rng.normal(size=(batch, 10)),
        "b": rng.normal(size=(batch, 6)),
        "stat": rng.normal(size=(batch, 4)),
    }


def _toy_network(seed=0):
    groups = [
        GroupSpec("a", 10, compress=True),
        GroupSpec("b", 6, compress=True),
        GroupSpec("stat", 4, compress=False),
    ]
    return MultiInputClassifier(groups, n_classes=5, subnet_dim=8, hidden_dim=12, seed=seed)


class TestMultiInputClassifier:
    def test_forward_shape(self):
        network = _toy_network()
        rng = np.random.default_rng(0)
        logits = network.forward(_toy_inputs(7, rng))
        assert logits.shape == (7, 5)

    def test_predict_proba_normalised(self):
        network = _toy_network()
        probabilities = network.predict_proba(_toy_inputs(4, np.random.default_rng(1)))
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_penultimate_shape(self):
        network = _toy_network()
        hidden = network.penultimate(_toy_inputs(3, np.random.default_rng(2)))
        assert hidden.shape == (3, 12)

    def test_missing_group_raises(self):
        network = _toy_network()
        with pytest.raises(KeyError):
            network.forward({"a": np.zeros((2, 10))})

    def test_requires_groups(self):
        with pytest.raises(ValueError):
            MultiInputClassifier([], n_classes=3)

    def test_backward_before_forward_raises(self):
        network = _toy_network()
        with pytest.raises(RuntimeError):
            network.backward(np.zeros((2, 5)))

    def test_parameters_exist_for_each_subnet(self):
        network = _toy_network()
        # Two compressed subnets (2 Linear layers each) + primary (2 Linear +
        # BatchNorm) + output layer.
        assert len(network.parameters()) == 8 + 6 + 2

    def test_state_dict_round_trip(self):
        network = _toy_network(seed=0)
        clone = _toy_network(seed=99)
        clone.load_state_dict(network.state_dict())
        inputs = _toy_inputs(3, np.random.default_rng(3))
        assert np.allclose(network.forward(inputs), clone.forward(inputs))

    def test_training_reduces_loss(self):
        rng = np.random.default_rng(0)
        network = _toy_network()
        inputs = _toy_inputs(120, rng)
        # Target depends on the passthrough group so the task is learnable.
        targets = (inputs["stat"][:, 0] > 0).astype(np.int64)
        trainer = NetworkTrainer(
            network, learning_rate=5e-3, n_epochs=15, batch_size=32, seed=0
        )
        trainer.fit(inputs, targets)
        assert trainer.history[-1] < trainer.history[0]

    def test_trainer_handles_empty_input(self):
        network = _toy_network()
        trainer = NetworkTrainer(network, n_epochs=2)
        trainer.fit(_toy_inputs(0, np.random.default_rng(0)), np.zeros(0, dtype=np.int64))
        assert trainer.history == []


class TestSherlockModel:
    def test_unfitted_raises(self, multi_column_tables):
        model = make_tiny_model(use_topic=False, use_struct=False)
        with pytest.raises(RuntimeError):
            model.column_model.predict_proba_table(multi_column_tables[0])

    def test_predict_proba_shape(self, trained_base, train_test_tables):
        _, test = train_test_tables
        table = test[0]
        probabilities = trained_base.predict_proba_table(table)
        assert probabilities.shape == (table.n_columns, NUM_TYPES)
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_predict_table_labels(self, trained_base, train_test_tables):
        _, test = train_test_tables
        predictions = trained_base.predict_table(test[0])
        assert len(predictions) == test[0].n_columns
        assert all(p in SEMANTIC_TYPES for p in predictions)

    def test_empty_table(self, trained_base):
        assert trained_base.predict_proba_table(Table(columns=[])).shape == (0, NUM_TYPES)

    def test_column_embeddings_shape(self, trained_base, train_test_tables):
        _, test = train_test_tables
        embeddings = trained_base.column_embeddings(test[0])
        assert embeddings.shape[0] == test[0].n_columns
        assert embeddings.shape[1] > 0

    def test_better_than_chance(self, trained_base, train_test_tables):
        _, test = train_test_tables
        correct = total = 0
        for table in test:
            for column, predicted in zip(table.columns, trained_base.predict_table(table)):
                total += 1
                correct += int(predicted == column.semantic_type)
        assert correct / total > 0.15  # chance is ~1/78


class TestTopicAwareAndSato:
    def test_sato_variants_names(self):
        assert SatoModel.full().name == "Sato"
        assert SatoModel.base().name == "Base"
        assert SatoModel.no_topic().name == "SatoNoTopic"
        assert SatoModel.no_struct().name == "SatoNoStruct"

    def test_sato_crf_trained(self, trained_sato):
        assert trained_sato.crf is not None
        assert trained_sato.crf.pairwise.shape == (NUM_TYPES, NUM_TYPES)

    def test_sato_predictions_valid(self, trained_sato, train_test_tables):
        _, test = train_test_tables
        for table in test[:5]:
            predictions = trained_sato.predict_table(table)
            assert len(predictions) == table.n_columns
            assert all(p in SEMANTIC_TYPES for p in predictions)

    def test_sato_marginals_normalised(self, trained_sato, train_test_tables):
        _, test = train_test_tables
        probabilities = trained_sato.predict_proba_table(test[0])
        assert np.allclose(probabilities.sum(axis=1), 1.0, atol=1e-6)

    def test_topic_aware_predict_from_features_defaults_topics(self, trained_sato):
        column_model = trained_sato.column_model
        features = np.zeros((2, column_model.featurizer.n_features))
        probabilities = column_model.predict_proba_from_features(features)
        assert probabilities.shape == (2, NUM_TYPES)

    def test_sato_column_embeddings(self, trained_sato, train_test_tables):
        _, test = train_test_tables
        embeddings = trained_sato.column_embeddings(test[0])
        assert embeddings.shape[0] == test[0].n_columns

    def test_singleton_table_bypasses_crf(self, trained_sato):
        table = Table(columns=[Column(values=["Paris", "London"], semantic_type="city")])
        predictions = trained_sato.predict_table(table)
        assert len(predictions) == 1

    def test_better_than_chance(self, trained_sato, train_test_tables):
        _, test = train_test_tables
        correct = total = 0
        for table in test:
            for column, predicted in zip(table.columns, trained_sato.predict_table(table)):
                total += 1
                correct += int(predicted == column.semantic_type)
        assert correct / total > 0.15


class TestAttentionColumnModel:
    @pytest.fixture(scope="class")
    def trained(self, train_test_tables):
        train, _ = train_test_tables
        model = AttentionColumnModel(
            embed_dim=12,
            hidden_dim=16,
            max_tokens=24,
            config=TrainingConfig(n_epochs=4, learning_rate=3e-3, batch_size=32, seed=0),
        )
        model.fit(train)
        return model

    def test_unfitted_raises(self, multi_column_tables):
        model = AttentionColumnModel()
        with pytest.raises(RuntimeError):
            model.predict_proba_table(multi_column_tables[0])

    def test_fit_requires_labels(self):
        model = AttentionColumnModel()
        with pytest.raises(ValueError):
            model.fit([Table(columns=[Column(values=["a"])])])

    def test_predict_proba(self, trained, train_test_tables):
        _, test = train_test_tables
        probabilities = trained.predict_proba_table(test[0])
        assert probabilities.shape == (test[0].n_columns, NUM_TYPES)
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_column_embeddings(self, trained, train_test_tables):
        _, test = train_test_tables
        embeddings = trained.column_embeddings(test[0])
        assert embeddings.shape == (test[0].n_columns, 16)

    def test_empty_column_handled(self, trained):
        table = Table(columns=[Column(values=["", ""])])
        assert trained.predict_proba_table(table).shape == (1, NUM_TYPES)
