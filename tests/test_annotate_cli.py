"""End-to-end tests for ``repro-sato annotate``.

The CLI is exercised in-process through :func:`repro.cli.main` over a
fixture directory of mixed-format sources.  The output contract under
test: deterministic JSONL (byte-identical across runs and chunk sizes),
predictions bit-identical to the in-memory loop-backend oracle, partial
output plus a non-zero exit when one source is corrupt, and usage errors
exiting 2 before any work happens.
"""

from __future__ import annotations

import json
import sqlite3

import pytest

from repro.cli import build_parser, main
from repro.ingest import open_source, registered_adapters
from repro.registry import ModelRegistry
from repro.serving import save_model
from repro.types import TYPE_TO_INDEX


@pytest.fixture(scope="module")
def sato_bundle(trained_sato, tmp_path_factory):
    bundle = tmp_path_factory.mktemp("annotate") / "bundle"
    save_model(trained_sato, bundle)
    return bundle


@pytest.fixture(scope="module")
def fixture_dir(multi_column_tables, tmp_path_factory):
    """A directory with one source per adapter, built from corpus tables."""
    directory = tmp_path_factory.mktemp("annotate") / "sources"
    directory.mkdir()
    adapters = registered_adapters()
    adapters["csv"].write_fixture(multi_column_tables[0], directory / "a.csv")
    adapters["ndjson"].write_fixture(multi_column_tables[1], directory / "b.ndjson")
    adapters["sqlite"].write_fixture(multi_column_tables[2], directory / "c.sqlite")
    adapters["tables-jsonl"].write_fixture(
        multi_column_tables[3], directory / "d.jsonl"
    )
    return directory


def run_annotate(argv, capsys):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestParserArgs:
    def test_annotate_args(self):
        args = build_parser().parse_args(
            ["annotate", "data/", "--model", "bundle/", "--chunk-rows", "64"]
        )
        assert args.command == "annotate"
        assert args.sources == ["data/"]
        assert args.chunk_rows == 64
        assert args.out == "-"
        assert args.format is None

    def test_model_and_registry_are_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["annotate", "x.csv", "--model", "b/", "--registry", "r/"]
            )

    def test_one_of_model_or_registry_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["annotate", "x.csv"])


class TestBundleMode:
    def test_directory_to_jsonl(self, fixture_dir, sato_bundle, tmp_path, capsys):
        out = tmp_path / "schemas.jsonl"
        code, _, err = run_annotate(
            ["annotate", str(fixture_dir), "--model", str(sato_bundle),
             "--out", str(out)],
            capsys,
        )
        assert code == 0
        assert "annotated 4 table(s) from 4 source file(s)" in err
        records = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(records) == 4
        # Deterministic ordering: sorted by file name within the directory.
        assert [r["source"].rsplit("/", 1)[-1] for r in records] == [
            "a.csv", "b.ndjson", "c.sqlite", "d.jsonl",
        ]
        for record in records:
            assert record["n_columns"] == len(record["columns"])
            assert record["n_rows"] > 0
            for column in record["columns"]:
                assert column["predicted_type"] in TYPE_TO_INDEX
                assert 0.0 <= column["confidence"] <= 1.0

    def test_output_is_deterministic_across_runs_and_chunk_sizes(
        self, fixture_dir, sato_bundle, tmp_path, capsys
    ):
        outputs = []
        for name, extra in [
            ("r1.jsonl", []),
            ("r2.jsonl", []),
            ("r3.jsonl", ["--chunk-rows", "1"]),
            ("r4.jsonl", ["--chunk-rows", "3"]),
        ]:
            out = tmp_path / name
            code, _, _ = run_annotate(
                ["annotate", str(fixture_dir), "--model", str(sato_bundle),
                 "--out", str(out), *extra],
                capsys,
            )
            assert code == 0
            outputs.append(out.read_bytes())
        assert outputs[0] == outputs[1] == outputs[2] == outputs[3]

    def test_bit_identical_to_in_memory_loop_oracle(
        self, fixture_dir, sato_bundle, trained_sato, tmp_path, capsys
    ):
        """CLI output == predicting each materialized table in memory."""
        out = tmp_path / "schemas.jsonl"
        code, _, _ = run_annotate(
            ["annotate", str(fixture_dir), "--model", str(sato_bundle),
             "--out", str(out)],
            capsys,
        )
        assert code == 0
        records = [json.loads(line) for line in out.read_text().splitlines()]
        tables = [
            stream.materialize() for stream in open_source(fixture_dir, 4096)
        ]
        trained_sato.set_feature_backend("loop")
        try:
            for record, table in zip(records, tables, strict=True):
                proba = trained_sato.column_model.predict_proba_table(table)
                labels = trained_sato.labels_from_proba(proba)
                marginals = trained_sato.marginals_from_proba(proba)
                assert [c["predicted_type"] for c in record["columns"]] == labels
                for column, label in zip(record["columns"], labels):
                    expected = float(marginals[column["index"], TYPE_TO_INDEX[label]])
                    assert column["confidence"] == round(expected, 6)
        finally:
            trained_sato.set_feature_backend("vectorized")

    def test_stdout_output(self, fixture_dir, sato_bundle, capsys):
        code, out, _ = run_annotate(
            ["annotate", str(fixture_dir / "a.csv"), "--model", str(sato_bundle)],
            capsys,
        )
        assert code == 0
        (record,) = [json.loads(line) for line in out.splitlines()]
        assert record["table_id"] == "a"

    def test_unreadable_bundle_exits_2(self, fixture_dir, tmp_path, capsys):
        code, out, err = run_annotate(
            ["annotate", str(fixture_dir), "--model", str(tmp_path / "nope")],
            capsys,
        )
        assert code == 2
        assert out == ""
        assert "cannot load model bundle" in err


class TestRegistryMode:
    @pytest.fixture(scope="class")
    def registry_root(self, sato_bundle, tmp_path_factory):
        root = tmp_path_factory.mktemp("annotate") / "registry"
        registry = ModelRegistry(root)
        info = registry.publish(sato_bundle, "sato")
        registry.promote("sato", info.version)
        return root

    def test_promoted_version_annotates(self, fixture_dir, registry_root, capsys):
        code, out, _ = run_annotate(
            ["annotate", str(fixture_dir / "a.csv"),
             "--registry", str(registry_root), "--model-name", "sato"],
            capsys,
        )
        assert code == 0
        assert json.loads(out.splitlines()[0])["table_id"] == "a"

    def test_matches_bundle_mode_output(
        self, fixture_dir, registry_root, sato_bundle, capsys
    ):
        source = str(fixture_dir / "b.ndjson")
        code_a, out_a, _ = run_annotate(
            ["annotate", source, "--model", str(sato_bundle)], capsys
        )
        code_b, out_b, _ = run_annotate(
            ["annotate", source, "--registry", str(registry_root),
             "--model-name", "sato"],
            capsys,
        )
        assert code_a == code_b == 0
        assert out_a == out_b

    def test_registry_without_model_name_exits_2(
        self, fixture_dir, registry_root, capsys
    ):
        code, _, err = run_annotate(
            ["annotate", str(fixture_dir), "--registry", str(registry_root)],
            capsys,
        )
        assert code == 2
        assert "--model-name" in err

    def test_model_name_without_registry_exits_2(
        self, fixture_dir, sato_bundle, capsys
    ):
        code, _, err = run_annotate(
            ["annotate", str(fixture_dir), "--model", str(sato_bundle),
             "--model-name", "sato"],
            capsys,
        )
        assert code == 2
        assert "--registry" in err

    def test_unknown_model_name_exits_2(self, fixture_dir, registry_root, capsys):
        code, _, err = run_annotate(
            ["annotate", str(fixture_dir), "--registry", str(registry_root),
             "--model-name", "nope"],
            capsys,
        )
        assert code == 2
        assert "cannot load from registry" in err


class TestFailureModes:
    def test_corrupt_source_gives_partial_output_and_exit_1(
        self, multi_column_tables, sato_bundle, tmp_path, capsys
    ):
        directory = tmp_path / "mixed"
        directory.mkdir()
        registered_adapters()["csv"].write_fixture(
            multi_column_tables[0], directory / "good.csv"
        )
        (directory / "bad.sqlite").write_bytes(b"not a database")
        out = tmp_path / "schemas.jsonl"
        code, _, err = run_annotate(
            ["annotate", str(directory), "--model", str(sato_bundle),
             "--out", str(out)],
            capsys,
        )
        assert code == 1
        assert "bad.sqlite" in err
        assert "annotated 1 table(s) from 2 source file(s), 1 failed" in err
        records = [json.loads(line) for line in out.read_text().splitlines()]
        assert [r["table_id"] for r in records] == ["good"]

    def test_missing_source_exits_1(self, sato_bundle, tmp_path, capsys):
        code, out, err = run_annotate(
            ["annotate", str(tmp_path / "nope.csv"), "--model", str(sato_bundle)],
            capsys,
        )
        assert code == 1
        assert out == ""
        assert "does not exist" in err

    def test_bad_chunk_rows_exits_2(self, fixture_dir, sato_bundle, capsys):
        code, _, err = run_annotate(
            ["annotate", str(fixture_dir), "--model", str(sato_bundle),
             "--chunk-rows", "0"],
            capsys,
        )
        assert code == 2
        assert "--chunk-rows" in err

    def test_sqlite_multi_table_db_yields_one_record_per_table(
        self, multi_column_tables, sato_bundle, tmp_path, capsys
    ):
        path = tmp_path / "multi.sqlite"
        registered_adapters()["sqlite"].write_fixture(multi_column_tables[0], path)
        with sqlite3.connect(path) as connection:
            connection.execute("CREATE TABLE zz_view_target (v TEXT)")
            connection.execute("INSERT INTO zz_view_target VALUES ('x')")
        out = tmp_path / "schemas.jsonl"
        code, _, _ = run_annotate(
            ["annotate", str(path), "--model", str(sato_bundle),
             "--out", str(out)],
            capsys,
        )
        assert code == 0
        records = [json.loads(line) for line in out.read_text().splitlines()]
        assert [r["table_id"] for r in records] == [
            "multi.data", "multi.zz_view_target",
        ]
