"""Tests for the vectorized featurization engine.

The loop backend is the oracle: every batched code path must agree with it
``allclose`` (rtol 1e-6), worker sharding must be bit-identical to the
in-process engine, and bundles written before the backend existed must keep
loading.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.corpus import CorpusConfig, CorpusGenerator
from repro.features import (
    ColumnFeaturizer,
    char_features,
    char_features_batch,
    column_statistics,
    stats_features_batch,
)
from repro.serving import MANIFEST_NAME, Predictor, save_model
import repro.serving.predictor as predictor_module
from repro.tables import Column, Table

from helpers import tiny_featurizer

RTOL, ATOL = 1e-6, 1e-9

EDGE_COLUMNS = [
    ["Paris", "Rome", "New York"],
    ["12", "94", "-3.5", "$1,000", "50%", "1e4"],
    ["", "  ", "\t", "a b  c"],
    [],
    ["", ""],
    ["same", "same", "same", "other"],
    ["ABC", "DeF", "ǅungla", "İstanbul", "ΣΙΓΜΑΣ", "ümlaut"],
    ["inf", "nan", "0", "000"],
    ["x"],
    ["emoji 🎉 mix 123", "line\nbreak", "  padded  "],
    ["a\ud800b", "lone\udfffsurrogate"],  # reachable via JSONL corpora
]


class TestBatchOracles:
    def test_char_features_batch_matches_oracle(self):
        batch = char_features_batch(EDGE_COLUMNS)
        for row, values in zip(batch, EDGE_COLUMNS):
            np.testing.assert_allclose(
                row, char_features(values), rtol=RTOL, atol=ATOL
            )

    def test_stats_features_batch_matches_oracle(self):
        batch = stats_features_batch(EDGE_COLUMNS)
        for row, values in zip(batch, EDGE_COLUMNS):
            np.testing.assert_allclose(
                row, column_statistics(values), rtol=RTOL, atol=ATOL
            )

    def test_empty_batch(self):
        assert char_features_batch([]).shape[0] == 0
        assert stats_features_batch([]).shape[0] == 0

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_tables_property_parity(self, seed):
        """Property-style: random corpora agree between the two backends."""
        tables = CorpusGenerator(
            CorpusConfig(n_tables=25, seed=seed, max_rows=9)
        ).generate()
        value_lists = [c.values for t in tables for c in t.columns]
        chars = char_features_batch(value_lists)
        stats = stats_features_batch(value_lists)
        for i, values in enumerate(value_lists):
            np.testing.assert_allclose(
                chars[i], char_features(values), rtol=RTOL, atol=ATOL
            )
            np.testing.assert_allclose(
                stats[i], column_statistics(values), rtol=RTOL, atol=ATOL
            )


class TestFeaturizerBackends:
    @pytest.fixture(scope="class")
    def backends(self, multi_column_tables):
        featurizer = tiny_featurizer().set_backend("loop")
        featurizer.fit(multi_column_tables)
        columns = [c for t in multi_column_tables for c in t.columns]
        loop = featurizer.transform_columns(columns)
        featurizer.set_backend("vectorized")
        vectorized = featurizer.transform_columns(columns)
        return featurizer, columns, loop, vectorized

    def test_vectorized_matches_loop(self, backends):
        _, _, loop, vectorized = backends
        np.testing.assert_allclose(vectorized, loop, rtol=RTOL, atol=ATOL)

    def test_transform_tables_uses_batched_path(self, backends, multi_column_tables):
        featurizer, columns, _, vectorized = backends
        matrix = featurizer.transform_tables(multi_column_tables)
        assert matrix.matrix.shape == (len(columns), featurizer.n_features)
        np.testing.assert_array_equal(matrix.matrix, vectorized)

    def test_workers_bit_identical_and_stable_order(self, backends):
        featurizer, columns, _, vectorized = backends
        try:
            featurizer.set_backend("vectorized", workers=1)
            one = featurizer.transform_columns(columns)
            featurizer.set_backend("vectorized", workers=4)
            four = featurizer.transform_columns(columns)
        finally:
            featurizer.set_backend("vectorized", workers=0)
            featurizer.close()
        np.testing.assert_array_equal(one, four)
        np.testing.assert_array_equal(vectorized, four)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            ColumnFeaturizer(backend="gpu")
        with pytest.raises(ValueError):
            tiny_featurizer().set_backend("gpu")

    def test_engine_reset_on_refit(self, multi_column_tables):
        featurizer = tiny_featurizer()
        featurizer.fit(multi_column_tables[:10])
        first_engine = featurizer.engine
        featurizer.fit(multi_column_tables[:10])
        assert featurizer.engine is not first_engine

    def test_trailing_tokenless_columns_do_not_truncate_segments(
        self, multi_column_tables
    ):
        """Regression: a batch ending in token-less columns must not drop
        the last token of the preceding column from its Word/Para sums."""
        featurizer = tiny_featurizer().set_backend("loop")
        featurizer.fit(multi_column_tables)
        batch = [
            Column(values=["12", "345", "6789", "12345"]),
            Column(values=[" "]),       # whitespace only: zero tokens
            Column(values=["...", ""]),  # punctuation only: zero tokens
        ]
        loop = featurizer.transform_columns(batch)
        featurizer.set_backend("vectorized")
        np.testing.assert_allclose(
            featurizer.transform_columns(batch), loop, rtol=RTOL, atol=ATOL
        )

    def test_fit_with_workers_enabled(self, multi_column_tables):
        """Regression: training with sharding configured must not crash on
        the standardiser pass (the pool serialises a half-fitted featurizer)."""
        tables = multi_column_tables[:12]
        sharded = ColumnFeaturizer(word_dim=8, para_dim=4, workers=2)
        try:
            sharded.fit(tables)
        finally:
            sharded.close()
        inline = ColumnFeaturizer(word_dim=8, para_dim=4).fit(tables)
        columns = [c for t in tables for c in t.columns]
        np.testing.assert_array_equal(
            sharded.transform_columns(columns), inline.transform_columns(columns)
        )
        sharded.close()


class TestHardCaseSuiteParity:
    """Backend parity on the shipped adversarial suites.

    The hard-case suites concentrate exactly the inputs where a vectorized
    engine can drift from the reference loop — non-BMP codepoints, NFD
    combining marks, RTL scripts, injected dirt and mixed-type cells — so
    parity is asserted over them explicitly, not just random corpora.
    """

    def test_vectorized_matches_loop_on_hard_cases(self, hard_case_tables):
        featurizer = tiny_featurizer().set_backend("loop")
        featurizer.fit(hard_case_tables)
        columns = [c for t in hard_case_tables for c in t.columns]
        loop = featurizer.transform_columns(columns)
        featurizer.set_backend("vectorized")
        vectorized = featurizer.transform_columns(columns)
        np.testing.assert_allclose(vectorized, loop, rtol=RTOL, atol=ATOL)

    def test_raw_batch_kernels_match_oracles_on_hard_cases(self, hard_case_tables):
        value_lists = [c.values for t in hard_case_tables for c in t.columns]
        chars = char_features_batch(value_lists)
        stats = stats_features_batch(value_lists)
        for i, values in enumerate(value_lists):
            np.testing.assert_allclose(
                chars[i], char_features(values), rtol=RTOL, atol=ATOL
            )
            np.testing.assert_allclose(
                stats[i], column_statistics(values), rtol=RTOL, atol=ATOL
            )


class TestVariantParity:
    """The vectorized backend serves all four variants like the loop does."""

    def test_all_variants_predict_identically(self, fitted_variant, serving_split):
        _, test = serving_split
        predictor = Predictor(fitted_variant)
        featurizer = fitted_variant.column_model.featurizer
        featurizer.set_backend("loop")
        loop_proba = [fitted_variant.predict_proba_table(t) for t in test]
        loop_labels = [fitted_variant.predict_table(t) for t in test]
        featurizer.set_backend("vectorized")
        for table, proba, labels in zip(test, loop_proba, loop_labels):
            np.testing.assert_allclose(
                fitted_variant.predict_proba_table(table), proba, rtol=1e-6, atol=1e-9
            )
            assert predictor.predict_table(table) == labels


class TestBundleCompatibility:
    def test_pre_backend_bundle_still_loads(self, trained_base, tmp_path, corpus_small):
        """A bundle written before backend/workers existed keeps loading."""
        bundle = save_model(trained_base, tmp_path / "bundle")
        manifest_path = bundle / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        featurizer_config = manifest["model"]["column_model"]["featurizer"]
        # Simulate the format-version-1 manifest of PR 1: no backend keys.
        featurizer_config.pop("backend")
        featurizer_config.pop("workers")
        manifest_path.write_text(json.dumps(manifest, indent=2, sort_keys=True))

        predictor = Predictor.from_bundle(bundle)
        assert predictor.featurizer.backend in ColumnFeaturizer.BACKENDS
        table = corpus_small[0]
        assert predictor.predict_table(table) == trained_base.predict_table(table)


class TestRuntimeIsolation:
    def test_bundle_never_persists_a_worker_count(self, trained_base, tmp_path):
        trained_base.column_model.featurizer.set_backend("vectorized", workers=8)
        try:
            bundle = save_model(trained_base, tmp_path / "bundle")
        finally:
            trained_base.column_model.featurizer.set_backend("vectorized", workers=0)
        manifest = json.loads((bundle / MANIFEST_NAME).read_text())
        assert manifest["model"]["column_model"]["featurizer"]["workers"] == 0

    def test_predictors_do_not_share_runtime_settings(self, trained_base):
        sharded = Predictor(trained_base, workers=4)
        looped = Predictor(trained_base, feature_backend="loop")
        assert sharded.featurizer.workers == 4
        assert sharded.featurizer.backend == "vectorized"
        assert looped.featurizer.backend == "loop"
        assert trained_base.column_model.featurizer.workers == 0
        looped.close()  # must not touch the other predictor's settings
        assert sharded.featurizer.workers == 4

    def test_failed_standardizer_pass_leaves_featurizer_unfitted(
        self, multi_column_tables, monkeypatch
    ):
        featurizer = tiny_featurizer()
        monkeypatch.setattr(
            type(featurizer),
            "_raw_from_accumulator",
            lambda self, accumulator: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        with pytest.raises(RuntimeError, match="boom"):
            featurizer.fit(multi_column_tables[:5])
        assert not featurizer.is_fitted


class TestFingerprintMemo:
    def test_cache_hit_columns_skip_fingerprinting(
        self, trained_base, corpus_small, monkeypatch
    ):
        predictor = Predictor(trained_base)
        table = corpus_small[0]
        calls = {"n": 0}
        original = predictor_module.column_fingerprint

        def counting(column):
            calls["n"] += 1
            return original(column)

        monkeypatch.setattr(predictor_module, "column_fingerprint", counting)
        predictor.predict_table(table)
        first = calls["n"]
        assert first == table.n_columns
        predictor.predict_table(table)  # same Column objects: memo hits
        assert calls["n"] == first

    def test_equal_but_distinct_columns_share_feature_cache(self, trained_base):
        predictor = Predictor(trained_base)
        def make() -> Table:
            return Table(
                columns=[
                    Column(values=["alpha", "beta", "gamma"]),
                    Column(values=["1", "2", "3"]),
                ]
            )
        predictor.predict_table(make())
        before = predictor.cache_info()
        predictor.predict_table(make())  # new objects, same content
        after = predictor.cache_info()
        assert after["misses"] == before["misses"]
        assert after["hits"] >= before["hits"] + 2

    def test_memo_evicted_when_columns_are_collected(self, trained_base):
        predictor = Predictor(trained_base)
        predictor.predict_table(
            Table(columns=[Column(values=["x", "y"]), Column(values=["1", "2"])])
        )
        import gc

        gc.collect()
        assert predictor.cache_info()["fingerprints"] == 0
