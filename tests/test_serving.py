"""Tests for the serving subsystem: persistence bundles, batched prediction
and the column-feature LRU cache."""

import json

import numpy as np
import pytest

from repro.serving import (
    FORMAT_VERSION,
    MANIFEST_NAME,
    TENSORS_NAME,
    BundleFormatError,
    LRUCache,
    Predictor,
    StatefulComponent,
    column_fingerprint,
    load_model,
    save_model,
)
from repro.tables import Column, Table

from helpers import make_tiny_model


class TestBundleRoundTrip:
    def test_bundle_files_and_manifest_version(self, fitted_variant, tmp_path):
        bundle = save_model(fitted_variant, tmp_path / "bundle")
        assert (bundle / MANIFEST_NAME).is_file()
        assert (bundle / TENSORS_NAME).is_file()
        manifest = json.loads((bundle / MANIFEST_NAME).read_text())
        assert manifest["format_version"] == FORMAT_VERSION
        assert manifest["model"]["variant"] == fitted_variant.name

    def test_identical_predictions_after_reload(
        self, fitted_variant, serving_split, tmp_path
    ):
        _, test = serving_split
        save_model(fitted_variant, tmp_path / "bundle")
        # A freshly constructed model restored purely from the on-disk
        # bundle: nothing is shared with the in-memory original.
        loaded = load_model(tmp_path / "bundle")
        assert loaded is not fitted_variant
        assert loaded.name == fitted_variant.name
        for table in test:
            assert loaded.predict_table(table) == fitted_variant.predict_table(table)
            np.testing.assert_array_equal(
                loaded.predict_proba_table(table),
                fitted_variant.predict_proba_table(table),
            )

    def test_state_dict_round_trips_exactly(self, fitted_variant):
        state = fitted_variant.state_dict()
        restored = {key: value.copy() for key, value in state.items()}
        fitted_variant.load_state_dict(restored)
        for key, value in fitted_variant.state_dict().items():
            np.testing.assert_array_equal(value, state[key])

    def test_components_satisfy_protocol(self, fitted_variant):
        assert isinstance(fitted_variant, StatefulComponent)
        assert isinstance(fitted_variant.column_model, StatefulComponent)
        assert isinstance(fitted_variant.column_model.featurizer, StatefulComponent)
        assert isinstance(fitted_variant.column_model.network, StatefulComponent)
        if fitted_variant.crf is not None:
            assert isinstance(fitted_variant.crf, StatefulComponent)

    def test_manifest_records_network_architecture(self, fitted_variant, tmp_path):
        bundle = save_model(fitted_variant, tmp_path / "bundle")
        manifest = json.loads((bundle / MANIFEST_NAME).read_text())
        network = manifest["model"]["column_model"]["network"]
        group_names = [g["name"] for g in network["groups"]]
        assert group_names[:4] == ["char", "word", "para", "stat"]
        if fitted_variant.config.use_topic:
            assert "topic" in group_names


class TestBundleValidation:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(BundleFormatError, match="manifest"):
            load_model(tmp_path)

    def test_rejects_future_format_version(self, trained_base, tmp_path):
        bundle = save_model(trained_base, tmp_path / "bundle")
        manifest = json.loads((bundle / MANIFEST_NAME).read_text())
        manifest["format_version"] = FORMAT_VERSION + 1
        (bundle / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(BundleFormatError, match="format version"):
            load_model(bundle)

    def test_rejects_mismatched_type_vocabulary(self, trained_base, tmp_path):
        bundle = save_model(trained_base, tmp_path / "bundle")
        manifest = json.loads((bundle / MANIFEST_NAME).read_text())
        manifest["semantic_types"] = manifest["semantic_types"][:-1]
        (bundle / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(BundleFormatError, match="vocabulary"):
            load_model(bundle)

    def test_rejects_corrupt_manifest(self, trained_base, tmp_path):
        bundle = save_model(trained_base, tmp_path / "bundle")
        (bundle / MANIFEST_NAME).write_text('{"format_version": 1, "trunc')
        with pytest.raises(BundleFormatError, match="corrupt"):
            load_model(bundle)

    def test_rejects_missing_tensor(self, trained_base, tmp_path):
        bundle = save_model(trained_base, tmp_path / "bundle")
        with np.load(bundle / TENSORS_NAME) as archive:
            state = {key: archive[key] for key in archive.files}
        dropped = sorted(state)[0]
        del state[dropped]
        np.savez(bundle / TENSORS_NAME, **state)
        with pytest.raises(BundleFormatError, match="does not match the manifest"):
            load_model(bundle)

    def test_unfitted_model_cannot_be_saved(self, tmp_path):
        model = make_tiny_model(use_topic=False, use_struct=False)
        with pytest.raises(RuntimeError):
            save_model(model, tmp_path / "bundle")

    def test_model_save_load_convenience(self, trained_base, serving_split, tmp_path):
        _, test = serving_split
        trained_base.save(tmp_path / "bundle")
        loaded = type(trained_base).load(tmp_path / "bundle")
        assert loaded.predict_table(test[0]) == trained_base.predict_table(test[0])


class TestPredictor:
    def test_batched_matches_per_table(self, fitted_variant, serving_split):
        _, test = serving_split
        predictor = Predictor(fitted_variant)
        batched = predictor.predict_tables(test)
        assert batched == [fitted_variant.predict_table(t) for t in test]

    def test_proba_batched_matches_per_table(self, fitted_variant, serving_split):
        _, test = serving_split
        predictor = Predictor(fitted_variant)
        for proba, table in zip(predictor.predict_proba_tables(test), test):
            assert proba.shape == (table.n_columns, fitted_variant.column_model.n_classes)
            np.testing.assert_allclose(
                proba, fitted_variant.predict_proba_table(table), atol=1e-12
            )

    def test_empty_batch_and_empty_table(self, trained_base):
        predictor = Predictor(trained_base)
        assert predictor.predict_tables([]) == []
        empty = Table(columns=[])
        assert predictor.predict_table(empty) == []
        assert predictor.predict_proba_table(empty).shape[0] == 0

    def test_cache_hits_on_repeat_traffic(self, trained_base, serving_split):
        _, test = serving_split
        predictor = Predictor(trained_base, cache_size=1024)
        predictor.predict_tables(test)
        first = predictor.cache_info()
        assert first["misses"] > 0
        predictor.predict_tables(test)
        second = predictor.cache_info()
        assert second["misses"] == first["misses"]
        assert second["hits"] >= first["hits"] + first["misses"]

    def test_cache_info_counters_advance_across_predict_table_calls(
        self, trained_base, serving_split
    ):
        _, test = serving_split
        table = test[0]
        predictor = Predictor(trained_base, cache_size=1024)
        start = predictor.cache_info()
        assert start["hits"] == 0 and start["misses"] == 0 and start["size"] == 0

        predictor.predict_table(table)
        cold = predictor.cache_info()
        assert cold["misses"] == table.n_columns  # one lookup per column, all cold
        assert cold["hits"] == 0
        assert cold["size"] > 0
        assert cold["capacity"] == 1024

        predictor.predict_table(table)
        warm = predictor.cache_info()
        assert warm["misses"] == cold["misses"]  # nothing refeaturized
        assert warm["hits"] == cold["hits"] + table.n_columns

    def test_topic_cache_hits_on_repeat_traffic_and_stays_exact(
        self, trained_sato, serving_split
    ):
        _, test = serving_split
        predictor = Predictor(trained_sato, cache_size=1024)
        cold = predictor.predict_tables(test)
        first = predictor.cache_info()
        served = sum(1 for t in test if t.n_columns)
        # One topic lookup per non-empty table; all distinct content is a miss.
        assert first["topic_hits"] + first["topic_misses"] == served
        assert first["topic_misses"] >= 1
        warm = predictor.predict_tables(test)
        second = predictor.cache_info()
        assert second["topic_hits"] == first["topic_hits"] + served
        assert second["topic_misses"] == first["topic_misses"]
        # Cached topic vectors must be bit-identical to recomputation.
        assert warm == cold
        assert warm == [trained_sato.predict_table(t) for t in test]

    def test_predict_info_tracks_batches_and_columns(self, trained_base, serving_split):
        _, test = serving_split
        predictor = Predictor(trained_base)
        fresh = predictor.predict_info()
        assert fresh["batches"] == 0 and fresh["tables"] == 0
        assert fresh["columns"] == 0 and fresh["predict_seconds"] == 0.0
        assert fresh["model_backend"] == "batched"
        assert fresh["swap_count"] == 0
        assert fresh["model_version"] == fresh["model_fingerprint"][:12]
        predictor.predict_tables(test)
        predictor.predict_table(test[0])
        info = predictor.predict_info()
        assert info["batches"] == 2
        assert info["tables"] == len(test) + 1
        assert info["columns"] == sum(t.n_columns for t in test) + test[0].n_columns
        assert info["predict_seconds"] > 0

    def test_cached_results_stay_correct(self, trained_base, serving_split):
        _, test = serving_split
        predictor = Predictor(trained_base, cache_size=1024)
        cold = predictor.predict_tables(test)
        warm = predictor.predict_tables(test)
        assert cold == warm

    def test_unfitted_model_rejected(self):
        with pytest.raises(RuntimeError):
            Predictor(make_tiny_model(use_topic=False, use_struct=False))

    def test_from_bundle(self, trained_base, serving_split, tmp_path):
        _, test = serving_split
        save_model(trained_base, tmp_path / "bundle")
        predictor = Predictor.from_bundle(tmp_path / "bundle")
        assert predictor.predict_tables(test) == [
            trained_base.predict_table(t) for t in test
        ]


class TestColumnFingerprint:
    def test_sensitive_to_values_and_order(self):
        a = Column(values=["x", "y"])
        b = Column(values=["y", "x"])
        assert column_fingerprint(a) != column_fingerprint(b)

    def test_value_boundaries_are_unambiguous(self):
        a = Column(values=["ab", "c"])
        b = Column(values=["a", "bc"])
        assert column_fingerprint(a) != column_fingerprint(b)

    def test_headers_are_ignored(self):
        a = Column(values=["x"], header="foo")
        b = Column(values=["x"], header="bar")
        assert column_fingerprint(a) == column_fingerprint(b)


class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(capacity=2)
        cache.put("a", np.array([1.0]))
        cache.put("b", np.array([2.0]))
        assert cache.get("a") is not None
        cache.put("c", np.array([3.0]))
        assert "b" not in cache
        assert "a" in cache and "c" in cache

    def test_zero_capacity_never_stores(self):
        cache = LRUCache(capacity=0)
        cache.put("a", np.array([1.0]))
        assert len(cache) == 0
        assert cache.get("a") is None

    def test_clear_resets_stats(self):
        cache = LRUCache(capacity=4)
        cache.put("a", np.array([1.0]))
        cache.get("a")
        cache.get("missing")
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0
