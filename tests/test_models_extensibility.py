"""Tests for the extensibility path: plugging an external column model into Sato."""

import pytest

from repro.models import SatoConfig, SatoModel
from repro.types import SEMANTIC_TYPES

from helpers import TINY_TRAINING


class TestFitStructured:
    def test_requires_struct_enabled(self, trained_base):
        model = SatoModel(
            config=SatoConfig(use_topic=False, use_struct=False, training=TINY_TRAINING),
            column_model=trained_base.column_model,
        )
        with pytest.raises(ValueError):
            model.fit_structured([])

    def test_trains_crf_over_external_column_model(self, trained_base, train_test_tables):
        train, test = train_test_tables
        hybrid = SatoModel(
            config=SatoConfig(
                use_topic=False, use_struct=True, training=TINY_TRAINING, crf_epochs=2
            ),
            column_model=trained_base.column_model,
        )
        hybrid.fit_structured(train[:20])
        assert hybrid.crf is not None
        predictions = hybrid.predict_table(test[0])
        assert len(predictions) == test[0].n_columns
        assert all(p in SEMANTIC_TYPES for p in predictions)

    def test_external_model_keeps_its_training(self, trained_base, train_test_tables):
        train, _ = train_test_tables
        hybrid = SatoModel(
            config=SatoConfig(
                use_topic=False, use_struct=True, training=TINY_TRAINING, crf_epochs=2
            ),
            column_model=trained_base.column_model,
        )
        hybrid.fit_structured(train[:20])
        # The wrapped column model is the very same fitted object.
        assert hybrid.column_model is trained_base.column_model
