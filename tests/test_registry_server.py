"""End-to-end tests: registry-backed serving with zero-downtime hot swap.

Everything here talks to a real ``ServingServer`` over real TCP sockets.
The flagship scenarios:

* the full lifecycle demo — publish v1 → serve → publish v2 → shadow
  evaluate over live traffic → gated promote → watcher hot-swap →
  rollback → watcher swaps back — with every transition observable through
  the admin API,
* concurrent hot-swap under load — a flood of ``/v1/predict`` requests
  while the model is swapped twice, asserting **zero** 5xx responses, a
  serving-version header on every response, and that each response's
  labels are bit-identical to what the model named in its header produces.
"""

from __future__ import annotations

import http.client
import json
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.registry import ModelRegistry, run_gate
from repro.serving import Predictor, serve_in_thread

TIMEOUT = 30


def request(port: int, method: str, path: str, payload: dict | None = None):
    """One HTTP request; returns (status, json_body, headers)."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=TIMEOUT)
    try:
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        connection.request(
            method, path, body=body, headers={"Content-Type": "application/json"}
        )
        reply = connection.getresponse()
        headers = dict(reply.getheaders())
        return reply.status, json.loads(reply.read().decode("utf-8")), headers
    finally:
        connection.close()


@pytest.fixture()
def registry_v1_v2(trained_base, trained_sato, tmp_path):
    """A registry holding two published versions, v0001 promoted."""
    registry = ModelRegistry(tmp_path / "registry")
    v1 = registry.publish(trained_base, "sato", train_metrics={"variant": "Base"})
    registry.promote("sato", v1.version)
    v2 = registry.publish(trained_sato, "sato", train_metrics={"variant": "Sato"})
    return registry, v1, v2


def wait_until(condition, timeout: float = 10.0, interval: float = 0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if condition():
            return True
        time.sleep(interval)
    return False


class TestLifecycleDemo:
    def test_publish_serve_shadow_gate_promote_swap_rollback(
        self, registry_v1_v2, serving_split
    ):
        registry, v1, v2 = registry_v1_v2
        _, test = serving_split
        table = test[0]
        expected = {
            v1.version: Predictor.from_registry(
                registry, "sato", v1.version
            ).predict_table(table),
            v2.version: Predictor.from_registry(
                registry, "sato", v2.version
            ).predict_table(table),
        }

        predictor = Predictor.from_registry(registry, "sato")
        with serve_in_thread(
            predictor,
            port=0,
            registry=registry,
            model_name="sato",
            watch_interval=0.1,
        ) as handle:
            port = handle.port
            # --- serve v1 -------------------------------------------------
            status, body, headers = request(
                port, "POST", "/v1/predict", {"table": table.to_dict()}
            )
            assert status == 200
            assert headers["X-Model-Version"] == v1.version
            assert body["labels"] == expected[v1.version]

            status, admin, _ = request(port, "GET", "/v1/admin/status")
            assert status == 200
            assert admin["model"] == {
                "name": "sato",
                "version": v1.version,
                "fingerprint": predictor.fingerprint,
            }
            assert admin["swap_count"] == 0
            assert admin["registry"]["watching"] is True

            # --- shadow-evaluate the candidate on live traffic -----------
            status, body, _ = request(
                port,
                "POST",
                "/v1/admin/shadow",
                {"version": v2.version, "fraction": 1.0},
            )
            assert status == 200 and body["shadow"]["version"] == v2.version
            for sample in test[:4]:
                status, _, _ = request(
                    port, "POST", "/v1/predict", {"table": sample.to_dict()}
                )
                assert status == 200
            assert wait_until(
                lambda: request(port, "GET", "/metrics")[1]
                .get("shadow", {})
                .get("completed", 0)
                >= 4
            )
            _, metrics, _ = request(port, "GET", "/metrics")
            shadow = metrics["shadow"]
            assert shadow["mirrored"] >= 4 and shadow["errors"] == 0
            assert 0.0 <= shadow["agreement_rate"] <= 1.0

            # --- gated promote (API twin of `registry promote --gate`) ---
            candidate = Predictor.from_registry(registry, "sato", v2.version)
            gate = run_gate(
                candidate,
                list(test),
                min_macro_f1=0.0,
                min_agreement=0.0,
                shadow_agreement=shadow["agreement_rate"],
            )
            assert gate.passed
            registry.promote("sato", v2.version, gate=gate.to_dict())
            candidate.close()

            # --- the watcher hot-swaps the live server -------------------
            assert wait_until(
                lambda: request(port, "GET", "/v1/admin/status")[1]["model"][
                    "version"
                ]
                == v2.version
            )
            status, body, headers = request(
                port, "POST", "/v1/predict", {"table": table.to_dict()}
            )
            assert status == 200
            assert headers["X-Model-Version"] == v2.version
            assert body["labels"] == expected[v2.version]

            # --- rollback: the watcher swaps back ------------------------
            rolled = registry.rollback("sato")
            assert rolled.version == v1.version
            assert wait_until(
                lambda: request(port, "GET", "/v1/admin/status")[1]["model"][
                    "version"
                ]
                == v1.version
            )
            status, body, headers = request(
                port, "POST", "/v1/predict", {"table": table.to_dict()}
            )
            assert status == 200
            assert headers["X-Model-Version"] == v1.version
            assert body["labels"] == expected[v1.version]

            status, admin, _ = request(port, "GET", "/v1/admin/status")
            assert admin["swap_count"] == 2

    def test_admin_reload_pins_a_version_and_caches_survive_identity_swap(
        self, registry_v1_v2, serving_split
    ):
        registry, v1, v2 = registry_v1_v2
        _, test = serving_split
        predictor = Predictor.from_registry(registry, "sato")
        with serve_in_thread(
            predictor, port=0, registry=registry, model_name="sato"
        ) as handle:
            port = handle.port
            # Explicit reload to the unpromoted candidate.
            status, body, _ = request(
                port, "POST", "/v1/admin/reload", {"version": v2.version}
            )
            assert status == 200
            assert body["version"] == v2.version and body["cache_cleared"]

            # Warm the cache, then reload the same version: the swap happens
            # but the fingerprint is unchanged, so the caches survive.
            request(port, "POST", "/v1/predict", {"table": test[0].to_dict()})
            before = request(port, "GET", "/metrics")[1]["cache"]
            status, body, _ = request(
                port, "POST", "/v1/admin/reload", {"version": v2.version}
            )
            assert status == 200 and body["changed"] is False
            assert body["cache_cleared"] is False
            after = request(port, "GET", "/metrics")[1]["cache"]
            assert after["size"] == before["size"] >= 1

    def test_admin_error_contract(self, registry_v1_v2, trained_base, tmp_path):
        registry, _, _ = registry_v1_v2
        predictor = Predictor.from_registry(registry, "sato")
        with serve_in_thread(
            predictor, port=0, registry=registry, model_name="sato"
        ) as handle:
            port = handle.port
            status, _, _ = request(port, "GET", "/v1/admin/reload")
            assert status == 405
            status, body, _ = request(
                port, "POST", "/v1/admin/reload", {"version": "v9999"}
            )
            assert status == 500 and "reload failed" in body["error"]
            status, body, _ = request(
                port, "POST", "/v1/admin/shadow", {"version": "v9999"}
            )
            assert status == 400 and "candidate" in body["error"]
            status, body, _ = request(port, "POST", "/v1/admin/shadow", {})
            assert status == 400

        # Without a registry, reload needs a bundle path to re-read.
        from repro.serving import save_model

        bundle = save_model(trained_base, tmp_path / "loose-bundle")
        loose = Predictor.from_bundle(bundle)
        with serve_in_thread(loose, port=0) as handle:
            status, body, _ = request(handle.port, "POST", "/v1/admin/reload", {})
            assert status == 400 and "no reload source" in body["error"]
        rereadable = Predictor.from_bundle(bundle)
        with serve_in_thread(
            rereadable, port=0, bundle_path=str(bundle)
        ) as handle:
            status, body, _ = request(handle.port, "POST", "/v1/admin/reload", {})
            assert status == 200 and body["changed"] is False


class TestConcurrentHotSwapUnderLoad:
    def test_flood_survives_two_swaps_with_versioned_bit_identical_replies(
        self, registry_v1_v2, serving_split
    ):
        """The acceptance scenario: swap twice under fire, drop nothing.

        40 workers hammer ``/v1/predict`` with the same table while the
        main thread hot-swaps v1 -> v2 -> v1 through the admin API.  Every
        reply must be a 200, must name the model version that served it,
        and must carry exactly that version's (precomputed, bit-identical)
        labels — i.e. no torn batches, no half-swapped predictions.
        """
        registry, v1, v2 = registry_v1_v2
        _, test = serving_split
        table = test[0]
        expected = {
            v1.version: Predictor.from_registry(
                registry, "sato", v1.version
            ).predict_table(table),
            v2.version: Predictor.from_registry(
                registry, "sato", v2.version
            ).predict_table(table),
        }

        predictor = Predictor.from_registry(registry, "sato")
        with serve_in_thread(
            predictor,
            port=0,
            registry=registry,
            model_name="sato",
            max_batch_size=8,
            max_wait_ms=1.0,
        ) as handle:
            port = handle.port
            payload = {"table": table.to_dict()}

            def client(_index: int):
                replies = []
                for _ in range(6):
                    replies.append(request(port, "POST", "/v1/predict", payload))
                return replies

            def completed() -> int:
                return request(port, "GET", "/metrics")[1]["requests"]["completed"]

            with ThreadPoolExecutor(max_workers=40) as pool:
                futures = [pool.submit(client, index) for index in range(40)]
                # Two hot swaps while the flood is in full flight; the swap
                # points are anchored on observed progress (not wall-clock)
                # so both models demonstrably serve part of the flood on any
                # machine speed.
                assert wait_until(lambda: completed() >= 20)
                status, body, _ = request(
                    port, "POST", "/v1/admin/reload", {"version": v2.version}
                )
                assert status == 200 and body["version"] == v2.version
                assert wait_until(lambda: completed() >= 120)
                status, body, _ = request(
                    port, "POST", "/v1/admin/reload", {"version": v1.version}
                )
                assert status == 200 and body["version"] == v1.version
                replies = [
                    reply
                    for future in futures
                    for reply in future.result(timeout=TIMEOUT)
                ]

            assert len(replies) == 240
            # Zero 5xx and zero rejections: admission was never exceeded and
            # the swap never broke a request.
            assert {status for status, _, _ in replies} == {200}
            versions_seen = set()
            for status, body, headers in replies:
                version = headers.get("X-Model-Version")
                assert version in expected, headers
                assert body["model_version"] == version
                assert body["labels"] == expected[version], version
                versions_seen.add(version)
            # The flood straddled the swaps: both models actually served.
            assert versions_seen == {v1.version, v2.version}

            status, admin, _ = request(port, "GET", "/v1/admin/status")
            assert admin["swap_count"] == 2
            _, metrics, _ = request(port, "GET", "/metrics")
            assert metrics["requests"]["completed"] >= 240
            assert metrics["requests"]["errors"] == 0
