"""Tests for the prefork serving fleet and its shared-memory bundles.

Three layers are covered:

* ``repro.serving.shm`` — the packed tensor store round-trips every model
  variant bit-exactly and hands out read-only views,
* ``repro.serving.fleet`` routing units — consistent-hash ring
  determinism/coverage and the spill policy, without any processes,
* end-to-end fleets — real worker processes behind a real HTTP server:
  prediction parity with the single-process predictor, aggregated
  ``/metrics``/``/healthz``, crash-restart supervision, graceful drain,
  and a request flood across a mid-flight fleet-wide promote (zero 5xx,
  every response attributed to a version that was live when its batch
  dispatched).
"""

from __future__ import annotations

import asyncio
import http.client
import json
import os
import signal
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from types import SimpleNamespace

import numpy as np
import pytest

from repro.registry import ModelRegistry
from repro.serving import (
    Predictor,
    ServingFleet,
    SharedTensorStore,
    ShmFormatError,
    read_state,
    save_model,
    serve_in_thread,
)
from repro.serving.fleet import HashRing, table_routing_key
from repro.serving.scheduler import DrainingError, QueueFullError
from repro.serving.shm import pack_bundle
from repro.tables import Column, Table

TIMEOUT = 60


def request(port, method, path, payload=None):
    """One HTTP request; returns (status, json body, response headers)."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=TIMEOUT)
    try:
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        connection.request(
            method, path, body=body, headers={"Content-Type": "application/json"}
        )
        reply = connection.getresponse()
        return (
            reply.status,
            json.loads(reply.read().decode("utf-8")),
            dict(reply.getheaders()),
        )
    finally:
        connection.close()


# ---------------------------------------------------------------- shared store


class TestSharedTensorStore:
    def test_round_trip_is_bit_identical(self, tmp_path):
        state = {
            "w": np.arange(12, dtype=np.float64).reshape(3, 4),
            "b": np.array([1.5, -2.5]),
            "empty": np.zeros((0, 3)),
        }
        path = SharedTensorStore.pack(state, tmp_path / "tensors.bin")
        store = SharedTensorStore.open(path)
        try:
            views = store.state_dict()
            assert sorted(views) == sorted(state)
            for key, tensor in state.items():
                assert views[key].dtype == tensor.dtype
                assert views[key].shape == tensor.shape
                assert np.array_equal(views[key], tensor)
        finally:
            store.close()

    def test_views_are_read_only(self, tmp_path):
        path = SharedTensorStore.pack(
            {"w": np.ones((2, 2))}, tmp_path / "tensors.bin"
        )
        store = SharedTensorStore.open(path)
        try:
            view = store.state_dict()["w"]
            assert not view.flags.writeable
            with pytest.raises(ValueError):
                view[0, 0] = 99.0
        finally:
            store.close()

    def test_open_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "tensors.bin"
        path.write_bytes(b"\0")
        (tmp_path / "tensors.bin.layout.json").write_text(
            json.dumps({"format": "something-else", "tensors": {}})
        )
        with pytest.raises(ShmFormatError):
            SharedTensorStore.open(path)


class TestSharedBundleParity:
    """Satellite: shm tensors bit-identical to the PR-1 .npz load path,
    for all four model variants."""

    def test_packed_store_matches_npz_state(self, fitted_variant, tmp_path):
        bundle = save_model(fitted_variant, tmp_path / "bundle")
        store_path = pack_bundle(bundle, tmp_path / "tensors.bin")
        npz_state = read_state(bundle)
        store = SharedTensorStore.open(store_path)
        try:
            shared = store.state_dict()
            assert sorted(shared) == sorted(npz_state)
            for key in npz_state:
                assert shared[key].dtype == npz_state[key].dtype, key
                assert np.array_equal(shared[key], npz_state[key]), key
        finally:
            store.close()

    def test_shared_predictor_matches_classic_load(
        self, fitted_variant, serving_split, tmp_path
    ):
        _, test = serving_split
        bundle = save_model(fitted_variant, tmp_path / "bundle")
        store_path = pack_bundle(bundle, tmp_path / "tensors.bin")
        classic = Predictor.from_bundle(bundle)
        shared = Predictor.from_shared_bundle(bundle, store_path)
        try:
            assert shared.fingerprint == classic.fingerprint
            for table in test[:4]:
                assert shared.predict_table(table) == classic.predict_table(table)
                assert np.array_equal(
                    shared.predict_proba_table(table),
                    classic.predict_proba_table(table),
                )
        finally:
            classic.close()
            shared.close()


# -------------------------------------------------------------------- routing


class TestHashRing:
    def test_lookup_is_deterministic_and_covered(self):
        ring = HashRing([0, 1, 2, 3])
        keys = [hash(("key", i)) & (2**64 - 1) for i in range(500)]
        owners = [ring.lookup(key) for key in keys]
        assert owners == [ring.lookup(key) for key in keys]
        # With 64 replicas per worker, 500 keys should reach every worker.
        assert set(owners) == {0, 1, 2, 3}

    def test_walk_starts_at_preferred_and_covers_all(self):
        ring = HashRing([0, 1, 2])
        for key in range(50):
            order = list(ring.walk(key))
            assert order[0] == ring.lookup(key)
            assert sorted(order) == [0, 1, 2]

    def test_removing_a_worker_moves_only_its_keys(self):
        before = HashRing([0, 1, 2, 3])
        after = HashRing([0, 1, 2])
        keys = list(range(1000))
        moved = sum(
            1
            for key in keys
            if before.lookup(key) != after.lookup(key)
            and before.lookup(key) != 3
        )
        # Keys not owned by the removed worker overwhelmingly stay put.
        assert moved == 0

    def test_routing_key_ignores_headers_and_ids(self):
        columns = [Column(values=["a", "b"]), Column(values=["c"])]
        renamed = [
            Column(values=["a", "b"], header="x"),
            Column(values=["c"], header="y"),
        ]
        t1 = Table(columns=columns, table_id="one")
        t2 = Table(columns=renamed, table_id="two")
        assert table_routing_key(t1) == table_routing_key(t2)
        t3 = Table(columns=[Column(values=["a", "b"])], table_id="one")
        assert table_routing_key(t1) != table_routing_key(t3)


class TestSpillPolicy:
    def _fleet_with_fake_workers(self, inflight):
        fleet = ServingFleet(
            len(inflight), bundle_path="unused", worker_queue=2, max_queue=100
        )
        fleet._handles = {
            wid: SimpleNamespace(wid=wid, alive=True, inflight=count)
            for wid, count in enumerate(inflight)
        }
        return fleet

    def test_prefers_ring_owner_when_it_has_room(self):
        fleet = self._fleet_with_fake_workers([0, 0, 0])
        table = Table(columns=[Column(values=["spill", "test"])])
        preferred = fleet._ring.lookup(table_routing_key(table))
        chosen = fleet._select_worker(table)
        assert chosen.wid == preferred
        assert fleet._affinity_hits == 1 and fleet._spills == 0

    def test_spills_to_next_live_worker_when_owner_full(self):
        fleet = self._fleet_with_fake_workers([0, 0, 0])
        table = Table(columns=[Column(values=["spill", "test"])])
        key = table_routing_key(table)
        walk = list(fleet._ring.walk(key))
        fleet._handles[walk[0]].inflight = 2  # owner at its bound
        chosen = fleet._select_worker(table)
        assert chosen.wid == walk[1]
        assert fleet._spills == 1

    def test_all_full_raises_queue_full(self):
        fleet = self._fleet_with_fake_workers([2, 2, 2])
        table = Table(columns=[Column(values=["spill", "test"])])
        with pytest.raises(QueueFullError):
            fleet._select_worker(table)

    def test_dead_workers_are_skipped(self):
        fleet = self._fleet_with_fake_workers([0, 0, 0])
        table = Table(columns=[Column(values=["spill", "test"])])
        walk = list(fleet._ring.walk(table_routing_key(table)))
        fleet._handles[walk[0]].alive = False
        assert fleet._select_worker(table).wid == walk[1]


# ----------------------------------------------------------------- end to end


@pytest.fixture(scope="module")
def base_bundle(tmp_path_factory, trained_base):
    return save_model(trained_base, tmp_path_factory.mktemp("fleet") / "bundle")


@pytest.fixture(scope="module")
def reference(base_bundle):
    predictor = Predictor.from_bundle(base_bundle)
    yield predictor
    predictor.close()


@pytest.fixture(scope="module")
def fleet_server(base_bundle):
    fleet = ServingFleet(
        2, bundle_path=base_bundle, max_wait_ms=5.0, max_queue=64
    )
    with serve_in_thread(fleet, port=0, batcher=fleet) as handle:
        yield handle


class TestFleetServing:
    def test_healthz_reports_fleet_liveness(self, fleet_server):
        status, payload, _ = request(fleet_server.port, "GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["fleet"]["size"] == 2
        assert payload["fleet"]["alive"] == 2
        assert len(payload["fleet"]["workers"]) == 2

    def test_predict_parity_with_single_process(
        self, fleet_server, reference, serving_split
    ):
        _, test = serving_split
        for table in test[:6]:
            status, payload, headers = request(
                fleet_server.port, "POST", "/v1/predict", {"table": table.to_dict()}
            )
            assert status == 200
            assert payload["labels"] == reference.predict_table(table)
            assert headers["X-Model-Version"] == payload["model_version"]

    def test_predict_batch_parity(self, fleet_server, reference, serving_split):
        _, test = serving_split
        tables = test[:5]
        status, payload, _ = request(
            fleet_server.port,
            "POST",
            "/v1/predict_batch",
            {"tables": [table.to_dict() for table in tables]},
        )
        assert status == 200
        got = [result["labels"] for result in payload["results"]]
        assert got == [reference.predict_table(table) for table in tables]

    def test_metrics_aggregates_across_workers(self, fleet_server, serving_split):
        _, test = serving_split
        for table in test[:4]:
            request(
                fleet_server.port, "POST", "/v1/predict", {"table": table.to_dict()}
            )
        status, payload, _ = request(fleet_server.port, "GET", "/metrics")
        assert status == 200
        fleet = payload["fleet"]
        assert fleet["size"] == 2 and fleet["alive"] == 2
        assert fleet["columns_served"] > 0
        assert fleet["latency_ms"]["window"] > 0
        assert fleet["latency_ms"]["p50"] <= fleet["latency_ms"]["p99"]
        routing = fleet["routing"]
        assert routing["affinity_hits"] + routing["spills"] > 0
        per_worker = [w for w in fleet["workers"] if "metrics" in w]
        assert len(per_worker) == 2
        assert sum(w["metrics"]["columns"]["served"] for w in per_worker) == (
            fleet["columns_served"]
        )
        # Front-end latency accounting feeds the top-level snapshot.
        assert payload["requests"]["completed"] > 0

    def test_routed_tables_repeat_onto_the_same_worker(
        self, fleet_server, serving_split
    ):
        _, test = serving_split
        table = test[0]
        _, before, _ = request(fleet_server.port, "GET", "/metrics")
        for _ in range(3):
            status, _, _ = request(
                fleet_server.port, "POST", "/v1/predict", {"table": table.to_dict()}
            )
            assert status == 200
        _, after, _ = request(fleet_server.port, "GET", "/metrics")
        # All three repeats land on one worker (affinity), and its column
        # cache serves the repeats: fleet-wide hits grow by at least
        # 2 * n_columns.
        hits = lambda m: sum(
            w["cache"]["hits"] for w in m["fleet"]["workers"] if "cache" in w
        )
        assert hits(after) >= hits(before) + 2 * table.n_columns

    def test_worker_crash_is_supervised_and_restarted(
        self, fleet_server, reference, serving_split
    ):
        _, test = serving_split
        _, health, _ = request(fleet_server.port, "GET", "/healthz")
        victim = health["fleet"]["workers"][0]["pid"]
        os.kill(victim, signal.SIGKILL)
        deadline = time.monotonic() + TIMEOUT
        while time.monotonic() < deadline:
            _, health, _ = request(fleet_server.port, "GET", "/healthz")
            fleet = health["fleet"]
            if fleet["alive"] == 2 and fleet["restarts"] >= 1:
                break
            time.sleep(0.1)
        assert fleet["alive"] == 2 and fleet["restarts"] >= 1
        pids = {worker["pid"] for worker in fleet["workers"]}
        assert victim not in pids
        status, payload, _ = request(
            fleet_server.port, "POST", "/v1/predict", {"table": test[0].to_dict()}
        )
        assert status == 200
        assert payload["labels"] == reference.predict_table(test[0])


class TestFleetDrain:
    def test_drain_finishes_inflight_then_rejects(self, base_bundle, serving_split):
        _, test = serving_split

        async def scenario():
            fleet = ServingFleet(1, bundle_path=base_bundle, max_queue=16)
            await fleet.start()
            labels = await fleet.submit(test[0])
            assert labels
            await fleet.drain()
            with pytest.raises(DrainingError):
                await fleet.submit(test[0])

        asyncio.run(scenario())


# --------------------------------------------------- fleet-wide promote flood


@pytest.fixture(scope="module")
def promote_registry(tmp_path_factory, trained_base):
    root = tmp_path_factory.mktemp("fleet-registry")
    registry = ModelRegistry(root)
    v1 = registry.publish(trained_base, "demo")
    v2 = registry.publish(trained_base, "demo")
    registry.promote("demo", v1.version)
    return registry, v1.version, v2.version


class TestFleetPromotion:
    def test_flood_across_promote_yields_no_5xx_and_honest_versions(
        self, promote_registry, serving_split
    ):
        registry, v1, v2 = promote_registry
        _, test = serving_split
        fleet = ServingFleet(
            2,
            registry=registry,
            model_name="demo",
            max_wait_ms=5.0,
            max_queue=64,
        )
        with serve_in_thread(
            fleet,
            port=0,
            registry=registry,
            model_name="demo",
            watch_interval=0.2,
            batcher=fleet,
        ) as handle:
            assert fleet.model_version == v1
            tables = [test[i % len(test)] for i in range(240)]

            def shoot(table):
                status, payload, headers = request(
                    handle.port, "POST", "/v1/predict", {"table": table.to_dict()}
                )
                return status, payload.get("model_version"), headers

            with ThreadPoolExecutor(max_workers=16) as pool:
                futures = [pool.submit(shoot, table) for table in tables[:40]]
                # Promote mid-flight: the registry watcher notices within
                # ~watch_interval and drives the two-phase fleet swap while
                # the flood keeps running.
                registry.promote("demo", v2)
                futures += [pool.submit(shoot, table) for table in tables[40:]]
                results = [future.result() for future in futures]

            statuses = [status for status, _v, _h in results]
            assert all(status == 200 for status in statuses), statuses
            versions = {version for _s, version, _h in results}
            assert versions <= {v1, v2}
            for _status, version, headers in results:
                assert headers["X-Model-Version"] == version

            deadline = time.monotonic() + TIMEOUT
            while time.monotonic() < deadline and fleet.model_version != v2:
                time.sleep(0.1)
            assert fleet.model_version == v2
            status, payload, _ = request(
                handle.port, "POST", "/v1/predict", {"table": test[0].to_dict()}
            )
            assert status == 200 and payload["model_version"] == v2
            status, admin, _ = request(handle.port, "GET", "/v1/admin/status")
            assert admin["model"]["version"] == v2
            assert admin["swap_count"] >= 1

    def test_admin_reload_runs_two_phase_swap(self, promote_registry, serving_split):
        registry, v1, v2 = promote_registry
        _, test = serving_split
        fleet = ServingFleet(
            2, registry=registry, model_name="demo", model_version=v1, max_queue=32
        )
        with serve_in_thread(
            fleet, port=0, registry=registry, model_name="demo", batcher=fleet
        ) as handle:
            status, payload, _ = request(
                handle.port, "POST", "/v1/admin/reload", {"version": v2}
            )
            assert status == 200
            assert payload["version"] == v2
            assert payload["workers"] == 2
            status, reply, _ = request(
                handle.port, "POST", "/v1/predict", {"table": test[0].to_dict()}
            )
            assert status == 200 and reply["model_version"] == v2


# ------------------------------------------------------------ signal handling


class TestServeSignals:
    """Satellite: the serve CLI drains gracefully on SIGTERM (not just ^C)."""

    @pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
    def test_serve_drains_on_signal(self, base_bundle, signum):
        env = dict(os.environ)
        env["PYTHONUNBUFFERED"] = "1"
        env["PYTHONPATH"] = (
            str(Path(__file__).resolve().parents[1] / "src")
            + os.pathsep
            + env.get("PYTHONPATH", "")
        )
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--model",
                str(base_bundle),
                "--port",
                "0",
                "--fleet-workers",
                "2",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            line = process.stdout.readline()
            assert "serving" in line, line
            process.send_signal(signum)
            stdout, stderr = process.communicate(timeout=TIMEOUT)
        except BaseException:
            process.kill()
            process.communicate()
            raise
        assert process.returncode == 0, stderr
        assert "draining" in stderr
