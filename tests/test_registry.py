"""Unit tests for the model registry subsystem.

Covers the on-disk store (publish/promote/rollback/gc, lineage, integrity,
crash-atomicity), the promotion gates, the shadow evaluator, and the
registry watcher — everything below the HTTP layer.  End-to-end lifecycle
over a live server lives in ``test_registry_server.py``.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.registry import (
    CURRENT_NAME,
    GATE_LOG_NAME,
    ModelRegistry,
    RegistryError,
    RegistryWatcher,
    ShadowEvaluator,
    SuiteGate,
    bundle_fingerprint,
    load_eval_tables,
    parse_suite_gate,
    replay_agreement,
    run_gate,
    run_suite_gates,
)
from repro.registry.store import VERSION_MANIFEST_NAME, _STAGING_PREFIX
from repro.serving import Predictor, save_model
from repro.tables import Column, Table, tables_to_jsonl


@pytest.fixture(scope="module")
def registry_pair(trained_base, trained_sato, tmp_path_factory):
    """A registry with two published versions of the same name."""
    root = tmp_path_factory.mktemp("registry")
    registry = ModelRegistry(root)
    v1 = registry.publish(trained_base, "sato", train_metrics={"macro_f1": 0.4})
    registry.promote("sato", v1.version)
    v2 = registry.publish(trained_sato, "sato")
    return registry, v1, v2


class TestPublish:
    def test_versions_are_sequential_and_immutable_layout(self, registry_pair):
        registry, v1, v2 = registry_pair
        assert (v1.version, v2.version) == ("v0001", "v0002")
        for info in (v1, v2):
            names = sorted(p.name for p in info.path.iterdir())
            assert names == ["manifest.json", "tensors.npz", VERSION_MANIFEST_NAME]

    def test_lineage_recorded(self, registry_pair):
        registry, v1, v2 = registry_pair
        assert v1.parent is None
        assert v2.parent == "v0001"  # v1 was promoted when v2 was published
        assert v1.train_metrics == {"macro_f1": 0.4}
        assert v1.config_hash and v2.config_hash
        assert v1.fingerprint != v2.fingerprint

    def test_publish_from_bundle_dir_matches_model_publish(
        self, trained_base, tmp_path
    ):
        bundle = save_model(trained_base, tmp_path / "bundle")
        registry = ModelRegistry(tmp_path / "reg")
        info = registry.publish(bundle, "from-dir")
        assert info.fingerprint == bundle_fingerprint(bundle)
        model, loaded = registry.load("from-dir", info.version)
        assert model.predict_table is not None
        assert loaded.version == info.version

    def test_invalid_names_and_versions_rejected(self, registry_pair):
        registry, _, _ = registry_pair
        with pytest.raises(RegistryError):
            registry.model_dir("../escape")
        with pytest.raises(RegistryError):
            registry.model_dir(".hidden")
        with pytest.raises(RegistryError):
            registry.version_dir("sato", "1")

    def test_unknown_parent_rejected(self, trained_base, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        with pytest.raises(RegistryError, match="parent"):
            registry.publish(trained_base, "sato", parent="v0099")


class TestPromoteRollback:
    def test_promote_updates_pointer_and_history(self, registry_pair):
        registry, v1, v2 = registry_pair
        registry.promote("sato", v2.version)
        assert registry.current_version("sato") == "v0002"
        payload = json.loads(
            (registry.model_dir("sato") / CURRENT_NAME).read_text()
        )
        assert [h["version"] for h in payload["history"]] == ["v0001"]

        rolled = registry.rollback("sato")
        assert rolled.version == "v0001"
        assert registry.current_version("sato") == "v0001"
        # Rolling back again has no history left to walk.
        with pytest.raises(RegistryError, match="history"):
            registry.rollback("sato")
        registry.promote("sato", v2.version)  # leave the fixture promoted at v2

    def test_promote_unknown_version(self, registry_pair):
        registry, _, _ = registry_pair
        with pytest.raises(RegistryError, match="unknown version"):
            registry.promote("sato", "v0099")

    def test_promote_refuses_corrupt_bundle(self, trained_base, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        info = registry.publish(trained_base, "sato")
        tensors = info.path / "tensors.npz"
        tensors.write_bytes(tensors.read_bytes() + b"tamper")
        with pytest.raises(RegistryError, match="integrity"):
            registry.promote("sato", info.version)

    def test_killed_mid_promote_leaves_loadable_registry(
        self, trained_base, tmp_path
    ):
        """A torn pointer write is impossible: only tmp files then os.replace.

        Simulate the worst interleaving — a leftover temp pointer file from
        a killed process — and check every read path still works.
        """
        registry = ModelRegistry(tmp_path / "reg")
        info = registry.publish(trained_base, "sato")
        registry.promote("sato", info.version)
        # A killed process leaves a stale pointer temp file behind.
        stale = registry.model_dir("sato") / f".{CURRENT_NAME}.dead.tmp"
        stale.write_text("{ not even json")
        assert registry.current_version("sato") == info.version
        model, loaded = registry.load("sato")
        assert loaded.version == info.version


class TestCrashAtomicity:
    def test_killed_mid_publish_leaves_only_staging_garbage(
        self, trained_base, tmp_path, monkeypatch
    ):
        registry = ModelRegistry(tmp_path / "reg")

        real_rename = os.rename

        def exploding_rename(src, dst):
            if _STAGING_PREFIX in str(src):
                raise KeyboardInterrupt("kill -9 simulation")
            return real_rename(src, dst)

        monkeypatch.setattr(os, "rename", exploding_rename)
        with pytest.raises(KeyboardInterrupt):
            registry.publish(trained_base, "sato")
        monkeypatch.undo()

        # No version was created; the registry is loadable and a later
        # publish gets v0001 as if nothing happened.
        assert registry.list_versions("sato") == []
        info = registry.publish(trained_base, "sato")
        assert info.version == "v0001"
        registry.gc("sato")  # clears any staging leftovers
        leftovers = [
            p.name
            for p in registry.model_dir("sato").iterdir()
            if p.name.startswith(_STAGING_PREFIX)
        ]
        assert leftovers == []

    def test_gc_protects_current_and_history(self, trained_base, trained_sato, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        v1 = registry.publish(trained_base, "sato")
        registry.promote("sato", v1.version)
        v2 = registry.publish(trained_sato, "sato")
        registry.promote("sato", v2.version)
        extra = [registry.publish(trained_base, "sato") for _ in range(3)]
        removed = registry.gc("sato", keep_unpromoted=1)
        survivors = {info.version for info in registry.list_versions("sato")}
        # current (v2) and history (v1) always survive; newest unpromoted kept.
        assert {"v0001", "v0002", extra[-1].version} <= survivors
        assert set(removed) == {extra[0].version, extra[1].version}
        registry.verify("sato", "v0001")
        registry.verify("sato", "v0002")


class TestGates:
    def test_gate_passes_and_refuses_on_thresholds(
        self, trained_base, serving_split, tmp_path
    ):
        _, test = serving_split
        predictor = Predictor(trained_base)
        passing = run_gate(
            predictor, list(test), min_macro_f1=0.0, min_agreement=0.0
        )
        assert passing.passed and passing.agreement is None
        failing = run_gate(
            predictor, list(test), min_macro_f1=1.01, min_agreement=0.0
        )
        assert not failing.passed
        assert any("macro-F1" in reason for reason in failing.reasons)

    def test_agreement_gate_uses_incumbent_replay(
        self, trained_base, serving_split
    ):
        _, test = serving_split
        predictor = Predictor(trained_base)
        # Same model as incumbent -> perfect agreement.
        result = run_gate(
            predictor,
            list(test),
            min_macro_f1=0.0,
            min_agreement=1.0,
            incumbent=Predictor(trained_base),
        )
        assert result.agreement == 1.0 and result.passed

    def test_shadow_agreement_overrides_replay(self, trained_base, serving_split):
        _, test = serving_split
        predictor = Predictor(trained_base)
        result = run_gate(
            predictor,
            list(test),
            min_macro_f1=0.0,
            min_agreement=0.9,
            incumbent=Predictor(trained_base),
            shadow_agreement=0.2,
        )
        assert result.agreement == 0.2 and not result.passed

    def test_replay_agreement_self_is_one(self, trained_base, serving_split):
        _, test = serving_split
        predictor = Predictor(trained_base)
        assert replay_agreement(predictor, predictor, list(test)) == 1.0

    def test_load_eval_tables_filters_unlabeled(self, tmp_path):
        labeled = Table(columns=[Column(values=["a"], semantic_type="name")])
        unlabeled = Table(columns=[Column(values=["b"])])
        path = tmp_path / "eval.jsonl"
        tables_to_jsonl([labeled, unlabeled], path)
        tables = load_eval_tables(path)
        assert len(tables) == 1
        with pytest.raises(ValueError, match="no labelled"):
            tables_to_jsonl([unlabeled], path)
            load_eval_tables(path)


class EchoPredictor:
    """Oracle stub: answers every column's ground-truth label (F1 = 1)."""

    def predict_tables(self, tables):
        return [
            [column.semantic_type or "name" for column in table.columns]
            for table in tables
        ]


class ConstantPredictor:
    """Stub answering one constant label for every column (low F1)."""

    def __init__(self, label: str):
        self.label = label

    def predict_tables(self, tables):
        return [[self.label] * table.n_columns for table in tables]


class TestSuiteGates:
    def test_parse_suite_gate_forms(self):
        assert parse_suite_gate("unicode_heavy") == SuiteGate("unicode_heavy")
        assert parse_suite_gate("dirty_columns:0.25") == SuiteGate(
            "dirty_columns", 0.25
        )
        with pytest.raises(ValueError):
            parse_suite_gate(":0.5")
        with pytest.raises(ValueError):
            parse_suite_gate("name:not-a-float")

    def test_floor_defaults_to_suite_suggested_floor(self):
        # clean_baseline ships suggested_floor=0.2: a perfect oracle clears
        # it, a constant-label stub does not.
        passing = run_suite_gates(EchoPredictor(), [SuiteGate("clean_baseline")])
        assert passing[0].passed and passing[0].min_f1 == 0.2
        failing = run_suite_gates(
            ConstantPredictor("name"), [SuiteGate("clean_baseline")]
        )
        assert not failing[0].passed
        assert any("below floor" in reason for reason in failing[0].reasons)

    def test_explicit_floor_overrides_spec(self):
        result = run_suite_gates(
            EchoPredictor(), [SuiteGate("clean_baseline", min_f1=1.01)]
        )
        assert result[0].min_f1 == 1.01 and not result[0].passed

    def test_no_regression_vs_incumbent(self):
        # A candidate far below the incumbent fails the regression check
        # even with the floor at zero.
        results = run_suite_gates(
            ConstantPredictor("name"),
            [SuiteGate("clean_baseline", min_f1=0.0)],
            incumbent=EchoPredictor(),
            tolerance=0.05,
        )
        assert results[0].incumbent_f1 == 1.0
        assert not results[0].passed
        assert any("regressed" in reason for reason in results[0].reasons)
        # Equal performance is never a regression.
        results = run_suite_gates(
            EchoPredictor(),
            [SuiteGate("clean_baseline", min_f1=0.0)],
            incumbent=EchoPredictor(),
        )
        assert results[0].passed

    def test_unknown_suite_raises(self):
        with pytest.raises(KeyError, match="unknown suite"):
            run_suite_gates(EchoPredictor(), [SuiteGate("nope")])

    def test_run_gate_folds_suite_reasons_into_verdict(self, serving_split):
        _, test = serving_split
        result = run_gate(
            EchoPredictor(),
            list(test),
            min_macro_f1=0.0,
            min_agreement=0.0,
            suite_gates=[
                SuiteGate("clean_baseline", min_f1=0.0),
                SuiteGate("unicode_heavy", min_f1=1.01),
            ],
        )
        assert not result.passed
        assert [s.suite for s in result.suites] == ["clean_baseline", "unicode_heavy"]
        assert result.suites[0].passed and not result.suites[1].passed
        assert any("unicode_heavy" in reason for reason in result.reasons)
        payload = result.to_dict()
        assert [s["suite"] for s in payload["suites"]] == [
            "clean_baseline",
            "unicode_heavy",
        ]

    def test_run_gate_without_suites_is_unchanged(self, serving_split):
        _, test = serving_split
        result = run_gate(
            EchoPredictor(), list(test), min_macro_f1=0.0, min_agreement=0.0
        )
        assert result.passed and result.suites == []
        assert result.to_dict()["suites"] == []


class TestGateLog:
    def test_record_gate_appends_and_reads_back(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        assert registry.gate_log("sato") == []
        registry.record_gate("sato", "v0001", {"passed": False, "reasons": ["x"]})
        registry.record_gate("sato", "v0001", {"passed": True, "reasons": []})
        entries = registry.gate_log("sato")
        assert [e["version"] for e in entries] == ["v0001", "v0001"]
        assert [e["gate"]["passed"] for e in entries] == [False, True]
        assert entries[0]["recorded_at"] <= entries[1]["recorded_at"]

    def test_corrupt_gate_log_raises(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.record_gate("sato", "v0001", {"passed": True})
        (tmp_path / "sato" / GATE_LOG_NAME).write_text("{torn", encoding="utf-8")
        with pytest.raises(RegistryError, match=GATE_LOG_NAME):
            registry.gate_log("sato")

    def test_promotion_history_preserves_gate_evidence(
        self, trained_base, trained_sato, tmp_path
    ):
        registry = ModelRegistry(tmp_path)
        v1 = registry.publish(trained_base, "sato")
        v2 = registry.publish(trained_sato, "sato")
        registry.promote("sato", v1.version, gate={"passed": True, "mark": "first"})
        registry.promote("sato", v2.version, gate={"passed": True, "mark": "second"})
        payload = json.loads(
            (tmp_path / "sato" / CURRENT_NAME).read_text(encoding="utf-8")
        )
        assert payload["gate"]["mark"] == "second"
        assert payload["history"][-1]["version"] == v1.version
        assert payload["history"][-1]["gate"]["mark"] == "first"


class FixedPredictor:
    """Candidate stub answering a constant label for every column."""

    def __init__(self, label: str):
        self.label = label

    def predict_table(self, table):
        return [self.label] * table.n_columns


class TestShadowEvaluator:
    def _table(self):
        return Table(columns=[Column(values=["x"]), Column(values=["y"])])

    def test_full_mirroring_counts_agreement_and_divergence(self):
        shadow = ShadowEvaluator(FixedPredictor("b"), fraction=1.0, version="v2")
        assert shadow.submit(self._table(), ["b", "a"])
        shadow.close()
        snap = shadow.snapshot()
        assert snap["mirrored"] == 1 and snap["completed"] == 1
        assert snap["columns_compared"] == 2 and snap["columns_agreed"] == 1
        assert snap["agreement_rate"] == 0.5
        assert snap["divergence"] == {"a->b": 1}

    def test_zero_fraction_never_samples(self):
        shadow = ShadowEvaluator(FixedPredictor("b"), fraction=0.0)
        for _ in range(20):
            assert not shadow.submit(self._table(), ["b", "b"])
        shadow.close()
        snap = shadow.snapshot()
        assert snap["mirrored"] == 0 and snap["skipped"] == 20

    def test_candidate_errors_are_contained(self):
        class Exploding:
            def predict_table(self, table):
                raise RuntimeError("boom")

        shadow = ShadowEvaluator(Exploding(), fraction=1.0)
        shadow.submit(self._table(), ["a", "a"])
        shadow.close()
        snap = shadow.snapshot()
        assert snap["errors"] == 1 and snap["completed"] == 0

    def test_backlog_is_dropped_not_queued(self):
        class Slow:
            def predict_table(self, table):
                time.sleep(0.05)
                return ["a"] * table.n_columns

        shadow = ShadowEvaluator(Slow(), fraction=1.0, max_pending=1)
        submitted = sum(
            shadow.submit(self._table(), ["a", "a"]) for _ in range(10)
        )
        shadow.close()
        snap = shadow.snapshot()
        assert submitted < 10 and snap["dropped"] >= 1
        assert snap["pending"] == 0

    def test_submit_after_close_is_a_drop(self):
        shadow = ShadowEvaluator(FixedPredictor("a"), fraction=1.0)
        shadow.close()
        assert not shadow.submit(self._table(), ["a", "a"])
        assert shadow.snapshot()["dropped"] == 1


class TestRegistryWatcher:
    def test_reports_each_promotion_once(self, registry_pair):
        registry, v1, v2 = registry_pair
        watcher = RegistryWatcher(registry, "sato")
        first = watcher.poll()
        assert first == registry.current_version("sato")
        assert watcher.poll() is None  # unchanged -> silent

    def test_swallows_registry_errors(self, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        (registry.model_dir("sato")).mkdir()
        (registry.model_dir("sato") / CURRENT_NAME).write_text("{broken")
        watcher = RegistryWatcher(registry, "sato")
        assert watcher.poll() is None
        assert watcher.errors == 1
