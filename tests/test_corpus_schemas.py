"""Tests for the table intent schemas."""

import pytest

from repro.corpus.schemas import (
    DEFAULT_SCHEMAS,
    ColumnSlot,
    TableSchema,
    schema_by_name,
    uncovered_types,
)
from repro.types import SEMANTIC_TYPES


class TestSchemaLibrary:
    def test_all_types_covered(self):
        assert uncovered_types() == []

    def test_slot_types_are_registered(self):
        for schema in DEFAULT_SCHEMAS:
            for slot in schema.slots:
                assert slot.semantic_type in SEMANTIC_TYPES

    def test_probabilities_valid(self):
        for schema in DEFAULT_SCHEMAS:
            for slot in schema.slots:
                assert 0.0 < slot.probability <= 1.0

    def test_weights_positive(self):
        assert all(schema.weight > 0 for schema in DEFAULT_SCHEMAS)

    def test_min_columns_satisfiable(self):
        for schema in DEFAULT_SCHEMAS:
            assert 1 <= schema.min_columns <= len(schema.slots)

    def test_reasonable_library_size(self):
        assert len(DEFAULT_SCHEMAS) >= 30

    def test_schema_names_unique(self):
        names = [schema.name for schema in DEFAULT_SCHEMAS]
        assert len(set(names)) == len(names)

    def test_weights_are_long_tailed(self):
        weights = sorted((schema.weight for schema in DEFAULT_SCHEMAS), reverse=True)
        assert weights[0] >= 3 * weights[-1]

    def test_head_types_appear_in_many_schemas(self):
        count = sum(1 for s in DEFAULT_SCHEMAS if "name" in s.semantic_types)
        assert count >= 5

    def test_tail_types_appear_in_few_schemas(self):
        count = sum(1 for s in DEFAULT_SCHEMAS if "organisation" in s.semantic_types)
        assert count <= 2


class TestLookup:
    def test_schema_by_name(self):
        schema = schema_by_name("people_biography")
        assert "name" in schema.semantic_types

    def test_schema_by_name_unknown(self):
        with pytest.raises(KeyError):
            schema_by_name("does_not_exist")

    def test_semantic_types_property(self):
        schema = TableSchema(
            name="x", slots=(ColumnSlot("city", 1.0), ColumnSlot("country", 0.5))
        )
        assert schema.semantic_types == ["city", "country"]
