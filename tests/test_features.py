"""Tests for the feature extraction modules."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.features import (
    CHAR_FEATURE_NAMES,
    STAT_FEATURE_NAMES,
    ColumnFeaturizer,
    char_features,
    column_statistics,
)
from repro.tables import Column, Table


class TestCharFeatures:
    def test_dimension_matches_names(self):
        assert char_features(["abc"]).shape == (len(CHAR_FEATURE_NAMES),)

    def test_empty_column_is_zero(self):
        assert np.allclose(char_features([]), 0.0)
        assert np.allclose(char_features(["", ""]), 0.0)

    def test_digit_heavy_column(self):
        features = dict(zip(CHAR_FEATURE_NAMES, char_features(["12345", "67890"])))
        assert features["shape_frac_digit"] == pytest.approx(1.0)
        assert features["shape_frac_alpha"] == pytest.approx(0.0)

    def test_alpha_column(self):
        features = dict(zip(CHAR_FEATURE_NAMES, char_features(["abc", "def"])))
        assert features["shape_frac_alpha"] == pytest.approx(1.0)

    def test_uppercase_fraction(self):
        features = dict(zip(CHAR_FEATURE_NAMES, char_features(["ABC"])))
        assert features["shape_frac_upper"] == pytest.approx(1.0)

    def test_char_presence(self):
        features = dict(zip(CHAR_FEATURE_NAMES, char_features(["aaa", "bbb"])))
        assert features["char_presence[a]"] == pytest.approx(0.5)
        assert features["char_mean[a]"] == pytest.approx(1.5)

    def test_deterministic(self):
        values = ["Florence", "Warsaw", "London"]
        assert np.allclose(char_features(values), char_features(values))

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.text(max_size=20), max_size=10))
    def test_always_finite(self, values):
        assert np.all(np.isfinite(char_features(values)))


class TestStatFeatures:
    def test_dimension_is_27(self):
        assert len(STAT_FEATURE_NAMES) == 27
        assert column_statistics(["a"]).shape == (27,)

    def test_empty_column_is_zero(self):
        assert np.allclose(column_statistics([]), 0.0)

    def test_missing_fraction(self):
        features = dict(zip(STAT_FEATURE_NAMES, column_statistics(["a", "", "b", ""])))
        # Features are log1p-squashed; recover the raw fraction.
        assert np.expm1(features["frac_missing"]) == pytest.approx(0.5)

    def test_numeric_column_detected(self):
        features = dict(zip(STAT_FEATURE_NAMES, column_statistics(["1", "2", "3"])))
        assert np.expm1(features["frac_numeric"]) == pytest.approx(1.0)
        assert np.expm1(features["frac_integer"]) == pytest.approx(1.0)

    def test_textual_column_not_numeric(self):
        features = dict(zip(STAT_FEATURE_NAMES, column_statistics(["abc", "def"])))
        assert features["frac_numeric"] == pytest.approx(0.0)

    def test_unique_fraction(self):
        features = dict(zip(STAT_FEATURE_NAMES, column_statistics(["a", "a", "a", "b"])))
        assert np.expm1(features["frac_unique"]) == pytest.approx(0.5)
        assert np.expm1(features["mode_frequency"]) == pytest.approx(0.75)

    def test_entropy_zero_for_constant_column(self):
        features = dict(zip(STAT_FEATURE_NAMES, column_statistics(["x", "x", "x"])))
        assert features["entropy"] == pytest.approx(0.0, abs=1e-6)

    def test_currency_and_commas_parsed_as_numeric(self):
        features = dict(zip(STAT_FEATURE_NAMES, column_statistics(["$1,000", "$2,500"])))
        assert np.expm1(features["frac_numeric"]) == pytest.approx(1.0)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.text(max_size=15), max_size=12))
    def test_always_finite(self, values):
        assert np.all(np.isfinite(column_statistics(values)))


class TestColumnFeaturizer:
    def test_group_layout(self, fitted_featurizer):
        groups = {g.name: g for g in fitted_featurizer.groups}
        assert set(groups) == {"char", "word", "para", "stat"}
        assert groups["stat"].size == 27
        assert groups["word"].size == fitted_featurizer.word_dim
        assert groups["para"].size == fitted_featurizer.para_dim
        assert fitted_featurizer.n_features == sum(g.size for g in groups.values())

    def test_feature_names_count(self, fitted_featurizer):
        assert len(fitted_featurizer.feature_names()) == fitted_featurizer.n_features

    def test_transform_requires_fit(self):
        featurizer = ColumnFeaturizer(word_dim=8, para_dim=4)
        with pytest.raises(RuntimeError):
            featurizer.transform_column(Column(values=["a"]))

    def test_transform_column_shape(self, fitted_featurizer):
        vector = fitted_featurizer.transform_column(Column(values=["Paris", "Rome"]))
        assert vector.shape == (fitted_featurizer.n_features,)
        assert np.all(np.isfinite(vector))

    def test_transform_table_shape(self, fitted_featurizer, multi_column_tables):
        table = multi_column_tables[0]
        matrix = fitted_featurizer.transform_table(table)
        assert matrix.shape == (table.n_columns, fitted_featurizer.n_features)

    def test_transform_empty_table(self, fitted_featurizer):
        matrix = fitted_featurizer.transform_table(Table(columns=[]))
        assert matrix.shape == (0, fitted_featurizer.n_features)

    def test_transform_tables_metadata(self, fitted_featurizer, multi_column_tables):
        subset = multi_column_tables[:5]
        feature_matrix = fitted_featurizer.transform_tables(subset)
        expected = sum(t.n_columns for t in subset)
        assert feature_matrix.matrix.shape == (expected, fitted_featurizer.n_features)
        assert len(feature_matrix.labels) == expected
        assert len(feature_matrix.table_ids) == expected
        assert feature_matrix.group("stat").size == 27
        with pytest.raises(KeyError):
            feature_matrix.group("nope")

    def test_standardization_roughly_centred(self, fitted_featurizer, multi_column_tables):
        feature_matrix = fitted_featurizer.transform_tables(multi_column_tables)
        means = feature_matrix.matrix.mean(axis=0)
        assert np.abs(means).mean() < 1.0

    def test_deterministic(self, fitted_featurizer):
        column = Column(values=["Florence", "Warsaw", "London"])
        a = fitted_featurizer.transform_column(column)
        b = fitted_featurizer.transform_column(column)
        assert np.allclose(a, b)

    def test_different_columns_different_features(self, fitted_featurizer):
        a = fitted_featurizer.transform_column(Column(values=["Paris", "Rome"]))
        b = fitted_featurizer.transform_column(Column(values=["12", "94"]))
        assert not np.allclose(a, b)
