"""Tests for the embedding substrate (tokenizer, vocabulary, word2vec, paragraph, hashing)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.embeddings import (
    HashingEmbedder,
    ParagraphEmbedder,
    Vocabulary,
    WordEmbeddingModel,
    tokenize,
    tokenize_values,
)
from repro.embeddings.tokenizer import number_shape_token


class TestTokenizer:
    def test_basic(self):
        assert tokenize("New York") == ["new", "york"]

    def test_numbers_become_shape_tokens(self):
        assert tokenize("42") == ["<num2>"]
        assert tokenize("2020") == ["<num4>"]
        assert tokenize("1234567") == ["<numlong>"]
        assert tokenize("7") == ["<num1>"]

    def test_mixed_content(self):
        assert tokenize("Room 12-B") == ["room", "<num2>", "b"]

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize(None) == []

    def test_tokenize_values_flattens(self):
        assert tokenize_values(["a b", "c"]) == ["a", "b", "c"]

    def test_number_shape_buckets(self):
        assert number_shape_token("1") == "<num1>"
        assert number_shape_token("12") == "<num2>"
        assert number_shape_token("1234") == "<num4>"
        assert number_shape_token("12345") == "<numlong>"

    @given(st.text(max_size=40))
    def test_tokens_are_lowercase_or_shape(self, text):
        for token in tokenize(text):
            assert token.startswith("<num") or token == token.lower()


class TestVocabulary:
    def test_min_count_filtering(self):
        vocabulary = Vocabulary(min_count=2)
        vocabulary.add(["a", "a", "b"])
        vocabulary.finalize()
        assert "a" in vocabulary
        assert "b" not in vocabulary

    def test_max_size_keeps_most_frequent(self):
        vocabulary = Vocabulary(min_count=1, max_size=1)
        vocabulary.add(["a", "a", "b"])
        vocabulary.finalize()
        assert len(vocabulary) == 1
        assert "a" in vocabulary

    def test_encode_drops_oov(self):
        vocabulary = Vocabulary.from_documents([["a", "b"], ["a"]], min_count=1)
        ids = vocabulary.encode(["a", "z", "b"])
        assert len(ids) == 2

    def test_token_id_round_trip(self):
        vocabulary = Vocabulary.from_documents([["x", "y", "z"]], min_count=1)
        for token in ["x", "y", "z"]:
            assert vocabulary.token(vocabulary.get(token)) == token

    def test_add_after_finalize_raises(self):
        vocabulary = Vocabulary.from_documents([["a"]], min_count=1)
        with pytest.raises(RuntimeError):
            vocabulary.add(["b"])

    def test_invalid_min_count(self):
        with pytest.raises(ValueError):
            Vocabulary(min_count=0)


class TestWordEmbeddings:
    @pytest.fixture(scope="class")
    def model(self):
        documents = [
            ["paris", "france", "europe"],
            ["rome", "italy", "europe"],
            ["paris", "france", "city"],
            ["rome", "italy", "city"],
            ["tokyo", "japan", "asia"],
            ["tokyo", "japan", "city"],
        ] * 5
        return WordEmbeddingModel(dim=8, min_count=1, seed=0).fit(documents)

    def test_vector_shape(self, model):
        assert model.vector("paris").shape == (8,)

    def test_oov_vector_is_zero(self, model):
        assert np.allclose(model.vector("unknowntoken"), 0.0)

    def test_mean_vector(self, model):
        mean = model.mean_vector(["paris", "rome"])
        assert mean.shape == (8,)
        assert not np.allclose(mean, 0.0)

    def test_mean_vector_all_oov_is_zero(self, model):
        assert np.allclose(model.mean_vector(["zzz", "qqq"]), 0.0)

    def test_cooccurring_tokens_are_similar(self, model):
        similar = dict(model.most_similar("paris", k=3))
        assert "france" in similar

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            WordEmbeddingModel().vector("a")

    def test_empty_corpus(self):
        model = WordEmbeddingModel(dim=4).fit([])
        assert model.vector("anything").shape == (4,)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            WordEmbeddingModel(dim=0)
        with pytest.raises(ValueError):
            WordEmbeddingModel(window=0)


class TestParagraphEmbedder:
    def test_embedding_shape_and_projection(self):
        documents = [["alpha", "beta"], ["beta", "gamma"], ["alpha", "gamma"]] * 3
        word_model = WordEmbeddingModel(dim=6, min_count=1).fit(documents)
        embedder = ParagraphEmbedder(word_model, dim=4).fit(documents)
        vector = embedder.embed(["alpha", "beta"])
        assert vector.shape == (4,)

    def test_same_dim_no_projection(self):
        documents = [["alpha", "beta"], ["beta", "gamma"]] * 3
        word_model = WordEmbeddingModel(dim=6, min_count=1).fit(documents)
        embedder = ParagraphEmbedder(word_model).fit(documents)
        assert embedder.embed(["alpha"]).shape == (6,)

    def test_unfitted_raises(self):
        word_model = WordEmbeddingModel(dim=4, min_count=1).fit([["a", "b"]])
        embedder = ParagraphEmbedder(word_model)
        with pytest.raises(RuntimeError):
            embedder.embed(["a"])

    def test_empty_document_gives_zero(self):
        documents = [["a", "b"]] * 3
        word_model = WordEmbeddingModel(dim=4, min_count=1).fit(documents)
        embedder = ParagraphEmbedder(word_model).fit(documents)
        assert np.allclose(embedder.embed([]), 0.0)


class TestHashingEmbedder:
    def test_deterministic(self):
        a = HashingEmbedder(dim=8, seed=1).vector("hello")
        b = HashingEmbedder(dim=8, seed=1).vector("hello")
        assert np.allclose(a, b)

    def test_different_tokens_differ(self):
        embedder = HashingEmbedder(dim=16)
        assert not np.allclose(embedder.vector("hello"), embedder.vector("world"))

    def test_empty_token(self):
        assert np.allclose(HashingEmbedder(dim=8).vector(""), 0.0)

    def test_mean_vector(self):
        embedder = HashingEmbedder(dim=8)
        assert embedder.mean_vector(["a", "b"]).shape == (8,)
        assert np.allclose(embedder.mean_vector([]), 0.0)

    def test_embed_sequence_truncation(self):
        embedder = HashingEmbedder(dim=8)
        matrix = embedder.embed_sequence(["a", "b", "c", "d"], max_len=2)
        assert matrix.shape == (2, 8)

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            HashingEmbedder(dim=0)

    @settings(max_examples=25, deadline=None)
    @given(st.text(min_size=1, max_size=15))
    def test_vectors_are_finite(self, token):
        vector = HashingEmbedder(dim=8).vector(token)
        assert np.all(np.isfinite(vector))
