"""Doctest pass over the documented hot-path packages.

Every public class/function in ``repro.serving`` and the vectorized
featurization engine carries an ``Examples:`` block; this module executes
them so the documentation cannot silently rot.  Kept inside ``tests/`` so
the tier-1 run (`pytest -x -q`) exercises the examples without extra flags.
"""

from __future__ import annotations

import doctest
import importlib

import pytest

import repro.features.accumulators
import repro.features.engine
import repro.features.sketchstore
import repro.features.stats_features
import repro.ingest.base
import repro.models.batched
import repro.obs.logs
import repro.obs.profile
import repro.obs.prom
import repro.obs.trace
import repro.registry
import repro.registry.shadow
import repro.registry.store
import repro.registry.watch
import repro.serving
import repro.serving.bundle
import repro.serving.component
import repro.serving.predictor
import repro.serving.scheduler
import repro.serving.server
import repro.tables.chunks

# ``repro.features`` re-exports a ``char_features`` *function*, which
# shadows the submodule as a package attribute — resolve the module itself.
char_features_module = importlib.import_module("repro.features.char_features")

DOCUMENTED_MODULES = [
    char_features_module,
    repro.features.accumulators,
    repro.features.engine,
    repro.features.sketchstore,
    repro.features.stats_features,
    repro.ingest.base,
    repro.models.batched,
    repro.obs.logs,
    repro.obs.profile,
    repro.obs.prom,
    repro.obs.trace,
    repro.registry,
    repro.registry.shadow,
    repro.registry.store,
    repro.registry.watch,
    repro.serving,
    repro.serving.bundle,
    repro.serving.component,
    repro.serving.predictor,
    repro.serving.scheduler,
    repro.serving.server,
    repro.tables.chunks,
]

PUBLIC_EXAMPLE_PACKAGES = {
    char_features_module: ["CharAccumulator"],
    repro.features.stats_features: ["StatAccumulator"],
    repro.models.batched: ["pad_unaries", "split_by_table", "BatchedInferenceCore"],
    repro.obs.logs: ["RequestLogger"],
    repro.obs.profile: ["profile_predictor", "render_flame"],
    repro.obs.prom: ["render_prometheus"],
    repro.obs.trace: ["Span", "StageAggregates", "Tracer"],
    repro.registry.store: ["ModelRegistry"],
    repro.registry.shadow: ["ShadowEvaluator"],
    repro.registry.watch: ["RegistryWatcher"],
    repro.serving.bundle: [
        "save_model",
        "load_model",
        "model_fingerprint",
        "BundleFormatError",
    ],
    repro.serving.component: ["StatefulComponent"],
    repro.serving.predictor: ["column_fingerprint", "LRUCache", "Predictor"],
    repro.serving.scheduler: ["MicroBatcher", "ServingMetrics"],
    repro.serving.server: ["serve_in_thread"],
    repro.features.engine: [
        "VectorizedEngine",
        "char_features_batch",
        "stats_features_batch",
    ],
}


@pytest.mark.parametrize(
    "module", DOCUMENTED_MODULES, ids=lambda m: m.__name__
)
def test_module_doctests_pass(module, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)  # examples writing artifacts stay sandboxed
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module.__name__}"


@pytest.mark.parametrize(
    "module", sorted(PUBLIC_EXAMPLE_PACKAGES, key=lambda m: m.__name__),
    ids=lambda m: m.__name__,
)
def test_public_api_has_runnable_examples(module):
    """Every public name keeps a docstring with at least one doctest."""
    finder = doctest.DocTestFinder(exclude_empty=True)
    for name in PUBLIC_EXAMPLE_PACKAGES[module]:
        obj = getattr(module, name)
        assert obj.__doc__, f"{module.__name__}.{name} has no docstring"
        tests = [t for t in finder.find(obj, name=name) if t.examples]
        assert tests, f"{module.__name__}.{name} has no runnable Examples block"
