"""Table 2: average training and prediction time of Base vs Sato."""

from conftest import emit, run_once

from repro.experiments import reporting, run_efficiency


def test_table2_efficiency(benchmark, config):
    timings = run_once(benchmark, run_efficiency, config, 2)
    emit("table2_efficiency", reporting.format_table2(timings))

    base, sato = timings["Base"], timings["Sato"]
    # Sato adds the topic features and the CRF layer, so it costs more to
    # train; prediction overhead stays small (same order of magnitude).
    assert sato.train_time[0] + sato.crf_train_time[0] > base.train_time[0]
    assert sato.predict_time[0] < 50 * max(base.predict_time[0], 1e-3)
