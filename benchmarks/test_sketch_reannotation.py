"""Incremental re-annotation through the persistent column-sketch store.

The scenario this accelerates: a corpus gets bulk-annotated, a small
fraction of its columns change, and the corpus is annotated again.  With
a sketch store attached, the second run skips featurization and topic
inference for every unchanged column/table, so the warm run must cost at
most ``MAX_WARM_FRACTION`` of the cold one (a >= 3.3x speedup on a
90%-unchanged corpus) while staying bit-identical to the store-off path
— both enforced here, not just reported.

Also measured: the ``--sketch-sample-rows`` dial, which featurizes store
misses from each column's first N values.  Its accuracy cost is scored
against the shipped hard-case eval suites and reported alongside the
annotation timing, so the speed/accuracy trade-off is a tracked number
rather than folklore.

Results land in ``benchmarks/results/sketch_reannotation.json`` (CI's
``sketch-reannotation`` artifact); ``check_trend.py`` gates
``sketch_reannotation.warm_speedup`` against ``baselines.json``.
"""

from __future__ import annotations

import json
import time

from conftest import emit, emit_json, run_once

from repro.corpus import CorpusConfig, CorpusGenerator
from repro.evaluation.suites import evaluate_suites
from repro.features import ColumnFeaturizer
from repro.ingest.annotate import StreamingAnnotator
from repro.models import SatoConfig, SatoModel, TrainingConfig
from repro.serving import Predictor
from repro.tables import Column, Table, table_stream

#: Fraction of columns mutated between the cold and the warm run.
CHANGED_FRACTION = 0.10
#: The warm run must cost at most this fraction of the cold run.
MAX_WARM_FRACTION = 0.30
CHUNK_ROWS = 256
SAMPLE_ROWS = 8

#: Annotation corpus sizes per preset.  Rows are deliberately taller than
#: the training corpus: re-annotation cost must be featurization-bound
#: (the store's target), not per-table model-inference overhead.
N_TABLES = {"tiny": 60, "fast": 150, "large": 400}


def _build_model(train_tables) -> SatoModel:
    """A small topic+CRF Sato variant: the full annotation hot path."""
    model = SatoModel(
        config=SatoConfig(
            use_topic=True,
            use_struct=True,
            n_topics=8,
            training=TrainingConfig(
                n_epochs=6,
                learning_rate=3e-3,
                batch_size=32,
                subnet_dim=16,
                hidden_dim=32,
                dropout=0.1,
                seed=0,
            ),
            crf_epochs=3,
            seed=0,
        ),
        featurizer=ColumnFeaturizer(word_dim=16, para_dim=12, seed=0),
    )
    model.fit(train_tables)
    return model


def _annotation_corpus(config) -> list[Table]:
    preset = {70: "tiny", 300: "fast", 1500: "large"}.get(config.n_tables, "fast")
    corpus_config = CorpusConfig(
        n_tables=N_TABLES[preset],
        min_rows=24,
        max_rows=64,
        singleton_rate=0.2,
        seed=71,
    )
    return CorpusGenerator(corpus_config).generate()


def mutate_corpus(
    tables: list[Table], fraction: float = CHANGED_FRACTION
) -> tuple[list[Table], int, int]:
    """Rewrite ~``fraction`` of all columns, whole tables at a time.

    Mutations cluster into complete tables (the way changed source files
    arrive in practice), so unchanged tables keep their table fingerprint
    and their cached topic vector too.
    """
    total = sum(table.n_columns for table in tables)
    budget = int(round(total * fraction))
    changed = 0
    mutated: list[Table] = []
    for table in tables:
        if changed + table.n_columns <= budget:
            changed += table.n_columns
            mutated.append(
                Table(
                    columns=[
                        Column(
                            values=[value + "~" for value in column.values],
                            header=column.header,
                            semantic_type=column.semantic_type,
                        )
                        for column in table.columns
                    ],
                    table_id=table.table_id,
                    metadata=dict(table.metadata),
                )
            )
        else:
            mutated.append(table)
    return mutated, changed, total


def annotate_corpus(model, tables, store_path=None):
    annotator = StreamingAnnotator(model, sketch_store=store_path)
    start = time.perf_counter()
    records = [
        annotator.annotate_stream(table_stream(table, CHUNK_ROWS))
        for table in tables
    ]
    elapsed = time.perf_counter() - start
    stats = (
        annotator.sketch_store.stats()
        if annotator.sketch_store is not None
        else None
    )
    annotator.close()
    return records, elapsed, stats


def _sample_dial_report(model) -> dict:
    """Accuracy vs speed of the bounded-sample dial on the eval suites."""
    report = {}
    for label, sample in [("full", None), (f"first{SAMPLE_ROWS}", SAMPLE_ROWS)]:
        predictor = Predictor(model, sketch_sample_rows=sample)
        start = time.perf_counter()
        suites = evaluate_suites(predictor, preset="tiny")
        elapsed = time.perf_counter() - start
        predictor.close()
        report[label] = {
            "sample_rows": sample,
            "seconds": elapsed,
            "macro_f1": {
                name: suite.macro_f1 for name, suite in sorted(suites.items())
            },
            "mean_macro_f1": sum(s.macro_f1 for s in suites.values())
            / len(suites),
        }
    return report


def _measure(config, tmp_path) -> dict:
    train = CorpusGenerator(
        CorpusConfig(n_tables=40, seed=5, singleton_rate=0.3, max_rows=12)
    ).generate()
    model = _build_model(train)
    corpus = _annotation_corpus(config)
    store = tmp_path / "sketches"

    cold_records, cold_seconds, cold_stats = annotate_corpus(model, corpus, store)
    mutated, changed, total = mutate_corpus(corpus)
    warm_records, warm_seconds, warm_stats = annotate_corpus(model, mutated, store)
    oracle_records, eager_seconds, _ = annotate_corpus(model, mutated)

    return {
        "n_tables": len(corpus),
        "n_columns": total,
        "changed_columns": changed,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "eager_seconds": eager_seconds,
        "warm_speedup": cold_seconds / warm_seconds,
        "warm_hits": warm_stats["hits"],
        "warm_misses": warm_stats["misses"],
        "cold_misses": cold_stats["misses"],
        "parity": json.dumps(warm_records) == json.dumps(oracle_records),
        "sample_dial": _sample_dial_report(model),
        "cold_records": cold_records,
        "warm_records": warm_records,
    }


def test_sketch_reannotation(benchmark, config, tmp_path):
    result = run_once(benchmark, _measure, config, tmp_path)

    unchanged = 1.0 - result["changed_columns"] / result["n_columns"]
    assert unchanged >= 0.89, "mutation overshot the 10% column budget"
    assert result["warm_hits"] > 0
    assert result["parity"], (
        "store-accelerated warm annotation drifted from the store-off path"
    )
    assert result["warm_seconds"] <= MAX_WARM_FRACTION * result["cold_seconds"], (
        f"warm re-annotation cost {result['warm_seconds']:.2f}s vs "
        f"{result['cold_seconds']:.2f}s cold "
        f"({result['warm_seconds'] / result['cold_seconds']:.0%}, "
        f"bound {MAX_WARM_FRACTION:.0%})"
    )

    dial = result["sample_dial"]
    lines = [
        f"tables: {result['n_tables']}  columns: {result['n_columns']}  "
        f"unchanged: {unchanged:.0%}",
        f"{'run':<12} {'seconds':>9} {'speedup':>9}",
        f"{'cold':<12} {result['cold_seconds']:>9.2f} {'1.00x':>9}",
        f"{'warm':<12} {result['warm_seconds']:>9.2f} "
        f"{result['warm_speedup']:>8.2f}x",
        f"{'store-off':<12} {result['eager_seconds']:>9.2f} "
        f"{result['cold_seconds'] / result['eager_seconds']:>8.2f}x",
        "",
        "sample dial (eval suites, tiny preset):",
        f"{'setting':<12} {'seconds':>9} {'mean macro F1':>14}",
        *(
            f"{label:<12} {entry['seconds']:>9.2f} "
            f"{entry['mean_macro_f1']:>14.3f}"
            for label, entry in dial.items()
        ),
    ]
    emit("sketch_reannotation", "\n".join(lines))
    emit_json(
        "sketch_reannotation",
        {
            "warm_speedup": result["warm_speedup"],
            "cold_seconds": result["cold_seconds"],
            "warm_seconds": result["warm_seconds"],
            "eager_seconds": result["eager_seconds"],
            "n_tables": result["n_tables"],
            "n_columns": result["n_columns"],
            "changed_columns": result["changed_columns"],
            "unchanged_fraction": unchanged,
            "warm_hits": result["warm_hits"],
            "warm_misses": result["warm_misses"],
            "sample_dial": {
                label: {
                    "sample_rows": entry["sample_rows"],
                    "seconds": entry["seconds"],
                    "mean_macro_f1": entry["mean_macro_f1"],
                }
                for label, entry in dial.items()
            },
        },
    )
