"""Hard-case suite evaluation: per-suite macro-F1 as a tracked series.

Every shipped suite under ``specs/`` is built deterministically (same spec
+ same seed => bit-identical tables) and scored with one trained model, so
the per-suite macro-F1 numbers are reproducible evidence rather than
samples.  CI runs this at the ``tiny`` preset in the docs job, uploads the
JSON as the ``eval-suites`` artifact, and ``check_trend.py`` gates two
tracked metrics from it:

* ``eval_suites.n_suites`` — the suite inventory must never silently
  shrink (a deleted or unloadable spec file is a coverage regression),
* ``eval_suites.clean_baseline.macro_f1`` — the friendly control suite's
  score; the hard suites are read relative to it, so a collapse here means
  the model or the spec layer broke, not that the scenarios got harder.

The model is the ``Base`` variant (no topic, no CRF): the fastest trainer,
and suite scoring stresses the corpus/evaluation layers identically for
every variant.
"""

from __future__ import annotations

from conftest import emit, emit_json, run_once

from repro.corpus.suites import available_suites
from repro.evaluation.suites import evaluate_suites
from repro.experiments.pipeline import build_corpus, make_model_factories
from repro.serving import Predictor


def _evaluate_all_suites(config) -> dict:
    dataset = build_corpus(config)
    model = make_model_factories(config)["Base"]()
    model.fit(dataset.tables)
    reports = evaluate_suites(Predictor(model), preset="tiny")
    return {name: report.to_dict() for name, report in sorted(reports.items())}


def test_eval_suites(benchmark, config):
    reports = run_once(benchmark, _evaluate_all_suites, config)

    assert set(reports) == set(available_suites())
    assert len(reports) >= 6
    for name, report in reports.items():
        assert 0.0 <= report["macro_f1"] <= 1.0, name
        assert report["n_columns"] > 0, name

    lines = [f"{'suite':<18} {'macro F1':>9} {'columns':>8}  difficulty"]
    for name, report in reports.items():
        lines.append(
            f"{name:<18} {report['macro_f1']:>9.3f} {report['n_columns']:>8d}"
            f"  {report['difficulty'].get('expected', '?')}"
        )
    emit("eval_suites", "\n".join(lines))
    emit_json("eval_suites", {**reports, "n_suites": len(reports)})
