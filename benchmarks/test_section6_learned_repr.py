"""Section 6: a featurisation-free learned-representation single-column model
compared against the feature-engineered Base model and the full Sato."""

from conftest import emit, run_once

from repro.experiments import reporting, run_learned_repr


def test_section6_learned_representations(benchmark, config):
    scores = run_once(benchmark, run_learned_repr, config)
    emit("section6_learned_repr", reporting.format_learned_repr(scores))

    assert set(scores) == {"LearnedRepr", "Base", "Sato"}
    for values in scores.values():
        assert 0.0 <= values["macro_f1"] <= 1.0
        assert 0.0 <= values["weighted_f1"] <= 1.0
    # The paper's finding: the learned-representation single-column model is
    # roughly comparable to Sherlock, while the multi-column Sato model keeps
    # a clear edge over the learned-representation single-column model.
    assert scores["Sato"]["weighted_f1"] >= scores["LearnedRepr"]["weighted_f1"] - 0.05
