"""Ablation: CRF pairwise-potential initialisation and training (Section 4.3)."""

from conftest import emit, run_once

from repro.experiments import reporting, run_crf_init_ablation


def test_ablation_crf_initialisation(benchmark, config):
    points = run_once(benchmark, run_crf_init_ablation, config)
    emit("ablation_crf_init", reporting.format_ablation(points, "Ablation: CRF pairwise initialisation"))

    by_setting = {point.setting: point for point in points}
    assert set(by_setting) == {
        "cooccurrence-init + trained",
        "zero-init + trained",
        "cooccurrence-init only",
        "no CRF (Base)",
    }
    # The paper's configuration (co-occurrence init + training) should not be
    # substantially worse than dropping the CRF entirely.
    assert (
        by_setting["cooccurrence-init + trained"].weighted_f1
        >= by_setting["no CRF (Base)"].weighted_f1 - 0.05
    )
