"""Benchmark trend gate: merge tracked JSONs, fail on throughput regressions.

CI runs the hot-path benchmarks (featurization, serving, model inference),
each of which persists a machine-readable JSON under ``benchmarks/results/``.
This script turns those one-off numbers into a tracked series:

1. every metric listed in the committed baseline file
   (``benchmarks/baselines.json``) is extracted from the current results,
2. the snapshot is appended to a ``bench-history.json`` file — CI downloads
   the previous run's ``bench-history`` artifact first, so the artifact
   accumulates one entry per run,
3. the script exits non-zero if any tracked metric fell more than
   ``--max-regression`` (default 30%) below its committed baseline.

Tracked metrics are *speedup ratios* (batched vs loop, vectorized vs loop,
micro-batched vs batch-1), not absolute columns/sec: ratios compare a fast
path against a reference path on the same hardware, so the gate is stable
across runner generations while still catching real hot-path regressions.

Usage::

    python benchmarks/check_trend.py [--results-dir benchmarks/results]
        [--baseline benchmarks/baselines.json] [--history bench-history.json]
        [--max-regression 0.30] [--require-all]

``--require-all`` (used by CI, where every tracked benchmark has just run)
also fails when a tracked result file or metric is missing; without it,
missing entries are reported but tolerated, so the script is usable locally
after running any subset of the benchmarks.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

#: Bound on stored history entries (one per CI run).
MAX_HISTORY_ENTRIES = 500


def lookup(payload: dict, dotted: str) -> float | None:
    """Resolve a dotted path (``steady.speedup``) to a number, else None."""
    node = payload
    for key in dotted.split("."):
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return None
    return float(node)


def collect_metrics(
    results_dir: Path, baseline: dict
) -> tuple[dict[str, float], list[str]]:
    """Extract every baselined metric from the current result files.

    Returns ``(metrics, missing)`` where ``metrics`` maps
    ``"<file stem>.<dotted path>"`` to the measured value and ``missing``
    lists baselined entries with no corresponding result.
    """
    metrics: dict[str, float] = {}
    missing: list[str] = []
    for stem, tracked in baseline.items():
        if not isinstance(tracked, dict):  # documentation keys like _comment
            continue
        path = results_dir / f"{stem}.json"
        if not path.is_file():
            missing.extend(f"{stem}.{dotted}" for dotted in tracked)
            continue
        payload = json.loads(path.read_text(encoding="utf-8"))
        for dotted in tracked:
            value = lookup(payload, dotted)
            if value is None:
                missing.append(f"{stem}.{dotted}")
            else:
                metrics[f"{stem}.{dotted}"] = value
    return metrics, missing


def find_regressions(
    metrics: dict[str, float], baseline: dict, max_regression: float
) -> list[str]:
    """Tracked metrics that fell more than ``max_regression`` below baseline."""
    failures: list[str] = []
    for stem, tracked in baseline.items():
        if not isinstance(tracked, dict):  # documentation keys like _comment
            continue
        for dotted, reference in tracked.items():
            key = f"{stem}.{dotted}"
            if key not in metrics:
                continue
            floor = (1.0 - max_regression) * float(reference)
            if metrics[key] < floor:
                failures.append(
                    f"{key}: {metrics[key]:.3f} < {floor:.3f} "
                    f"(baseline {float(reference):.3f}, "
                    f"tolerance {max_regression:.0%})"
                )
    return failures


def merge_history(history_path: Path, entry: dict) -> list[dict]:
    """Append one snapshot to the history file (created if absent)."""
    entries: list[dict] = []
    if history_path.is_file():
        loaded = json.loads(history_path.read_text(encoding="utf-8"))
        if isinstance(loaded, list):
            entries = loaded
    entries.append(entry)
    entries = entries[-MAX_HISTORY_ENTRIES:]
    history_path.parent.mkdir(parents=True, exist_ok=True)
    history_path.write_text(
        json.dumps(entries, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return entries


def main(argv: list[str] | None = None) -> int:
    root = Path(__file__).resolve().parent
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--results-dir", type=Path, default=root / "results")
    parser.add_argument("--baseline", type=Path, default=root / "baselines.json")
    parser.add_argument("--history", type=Path, default=root / "bench-history.json")
    parser.add_argument("--max-regression", type=float, default=0.30)
    parser.add_argument(
        "--require-all",
        action="store_true",
        help="fail when a tracked result file or metric is missing",
    )
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
    metrics, missing = collect_metrics(args.results_dir, baseline)

    entry = {
        "sha": os.environ.get("GITHUB_SHA", ""),
        "run": os.environ.get("GITHUB_RUN_NUMBER", ""),
        "metrics": metrics,
    }
    entries = merge_history(args.history, entry)
    print(f"bench-history: {len(entries)} entries ({args.history})")
    for key in sorted(metrics):
        print(f"  {key} = {metrics[key]:.3f}")

    status = 0
    if missing:
        for key in missing:
            print(f"missing tracked metric: {key}", file=sys.stderr)
        if args.require_all:
            status = 1
    failures = find_regressions(metrics, baseline, args.max_regression)
    for failure in failures:
        print(f"REGRESSION {failure}", file=sys.stderr)
    if failures:
        status = 1
    if status == 0:
        print("benchmark trend gate: OK")
    return status


if __name__ == "__main__":
    sys.exit(main())
