"""Model-core inference throughput: per-table loop vs batched backend.

The structured-prediction stage (column-network forward + CRF Viterbi, the
paper's Table 2 efficiency story) is served through ``model_backend``:

* ``loop`` — the parity oracle: featurize, forward and Viterbi-decode one
  table at a time (what a coalesced micro-batch paid before batching),
* ``batched`` — one featurization call, one column-network forward pass
  (a single matmul per layer over every column of every table) and one
  masked ``viterbi_batch`` recurrence over the whole batch.

This benchmark measures tables/sec for both backends end to end, isolates
the Viterbi decode (per-chain loop vs one padded/masked batch decode), and
checks the decode through a warm serving :class:`~repro.serving.Predictor`
(features cached — exactly what a micro-batch dispatch pays per request).

The model core is benchmarked on the ``SatoNoTopic`` variant (CRF on,
topic off): LDA topic inference is per-table by construction and is
memoised by the Predictor's topic cache in serving, so including it would
measure cache policy, not the model core.  Parity across *all four*
variants, topic-aware included, is covered by ``tests/test_batched_model.py``.

Every cell is persisted to ``benchmarks/results/model_inference_throughput``
as both a report and a tracked JSON (uploaded as the
``model-inference-throughput`` CI artifact and gated by
``benchmarks/check_trend.py``).
"""

from __future__ import annotations

import time

import numpy as np

from conftest import emit, emit_json, run_once

from repro.experiments.pipeline import build_corpus, make_model_factories
from repro.models.batched import pad_unaries
from repro.serving import Predictor

#: The tentpole acceptance bar: the batched backend must serve at least this
#: many times the tables/sec of the per-table loop on the same batch.
MIN_BATCHED_SPEEDUP = 2.0

#: Replicate the corpus so every timing covers a serving-sized batch.
MIN_TABLES = 300


def _timed(function, repeats: int = 1):
    """Best-of-``repeats`` wall time (sub-10ms cells need noise shielding)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - started)
    return best, result


def _throughput_comparison(config) -> dict:
    tables = build_corpus(config).tables
    multi = [t for t in tables if t.n_columns > 1]
    model = make_model_factories(config)["SatoNoTopic"]()
    model.fit(multi)

    replicas = max(1, -(-MIN_TABLES // max(1, len(tables))))
    serve = (tables * replicas)[:MIN_TABLES]
    n_tables = len(serve)
    n_columns = sum(t.n_columns for t in serve)

    # --- end to end: loop vs batched (the CI-gated cells) --------------
    model.set_model_backend("loop")
    loop_seconds, loop_labels = _timed(lambda: model.predict_tables(serve), repeats=3)
    model.set_model_backend("batched")
    batched_seconds, batched_labels = _timed(
        lambda: model.predict_tables(serve), repeats=3
    )
    assert batched_labels == loop_labels  # bit-exact decoded-label parity

    # --- decode only: per-chain Viterbi vs one masked batch decode -----
    probabilities = model.column_model.predict_proba_tables(serve)
    chains = [p for p in probabilities if p.shape[0] > 1]
    unaries, lengths = pad_unaries(chains, model.crf.n_states)
    viterbi_loop_seconds, decoded_loop = _timed(
        lambda: [
            model.crf.viterbi(unary[:length])
            for unary, length in zip(unaries, lengths)
        ],
        repeats=3,
    )
    viterbi_batch_seconds, decoded_batch = _timed(
        lambda: model.crf.viterbi_batch(unaries, lengths), repeats=3
    )
    # The batched Viterbi must be bit-identical to the per-table oracle.
    assert all(np.array_equal(a, b) for a, b in zip(decoded_loop, decoded_batch))

    # --- warm serving path: decode cost behind a feature-cached Predictor
    predictor_loop = Predictor(model, model_backend="loop")
    predictor_batched = Predictor(model, model_backend="batched")
    predictor_loop.predict_tables(serve)  # warm the feature cache
    predictor_batched.predict_tables(serve)
    warm_loop_seconds, warm_loop = _timed(
        lambda: predictor_loop.predict_tables(serve), repeats=3
    )
    warm_batched_seconds, warm_batched = _timed(
        lambda: predictor_batched.predict_tables(serve), repeats=3
    )
    assert warm_loop == warm_batched == loop_labels

    def tables_per_sec(seconds: float) -> float:
        return n_tables / max(seconds, 1e-9)

    def chains_per_sec(seconds: float) -> float:
        return len(chains) / max(seconds, 1e-9)

    viterbi_speedup = viterbi_loop_seconds / max(viterbi_batch_seconds, 1e-9)
    warm_speedup = warm_loop_seconds / max(warm_batched_seconds, 1e-9)
    return {
        "variant": model.name,
        "n_tables": n_tables,
        "n_columns": n_columns,
        "n_crf_chains": len(chains),
        "max_cols": int(lengths.max()) if len(chains) else 0,
        "model_loop": {
            "seconds": loop_seconds,
            "tables_per_sec": tables_per_sec(loop_seconds),
        },
        "model_batched": {
            "seconds": batched_seconds,
            "tables_per_sec": tables_per_sec(batched_seconds),
        },
        "viterbi_loop": {
            "seconds": viterbi_loop_seconds,
            "chains_per_sec": chains_per_sec(viterbi_loop_seconds),
        },
        "viterbi_batch": {
            "seconds": viterbi_batch_seconds,
            "chains_per_sec": chains_per_sec(viterbi_batch_seconds),
        },
        "predictor_warm_loop": {
            "seconds": warm_loop_seconds,
            "tables_per_sec": tables_per_sec(warm_loop_seconds),
        },
        "predictor_warm_batched": {
            "seconds": warm_batched_seconds,
            "tables_per_sec": tables_per_sec(warm_batched_seconds),
        },
        "speedup_batched": loop_seconds / max(batched_seconds, 1e-9),
        "speedup_viterbi_batch": viterbi_speedup,
        "speedup_predictor_warm": warm_speedup,
    }


def test_model_inference_throughput(benchmark, config):
    result = run_once(benchmark, _throughput_comparison, config)

    def line(name: str, cell: dict, unit: str) -> str:
        rate = cell[unit]
        return f"  {name:<22s}: {cell['seconds']:7.3f}s ({rate:>10,.0f} {unit})"

    lines = [
        "Model-core inference throughput: loop vs batched "
        f"({result['variant']}, {result['n_tables']} tables / "
        f"{result['n_columns']} columns, {result['n_crf_chains']} CRF chains)",
        line("model loop", result["model_loop"], "tables_per_sec"),
        line("model batched", result["model_batched"], "tables_per_sec"),
        line("viterbi loop", result["viterbi_loop"], "chains_per_sec"),
        line("viterbi batch", result["viterbi_batch"], "chains_per_sec"),
        line("predictor warm loop", result["predictor_warm_loop"], "tables_per_sec"),
        line(
            "predictor warm batched",
            result["predictor_warm_batched"],
            "tables_per_sec",
        ),
        f"  speedup               : {result['speedup_batched']:.1f}x end-to-end, "
        f"{result['speedup_viterbi_batch']:.1f}x decode, "
        f"{result['speedup_predictor_warm']:.1f}x warm predictor",
    ]
    emit("model_inference_throughput", "\n".join(lines))
    emit_json("model_inference_throughput", result)

    # The tentpole acceptance bar: batched end-to-end model inference.
    assert result["speedup_batched"] >= MIN_BATCHED_SPEEDUP
