"""Online serving throughput: micro-batched vs batch-size-1 scheduling.

The micro-batching scheduler only earns its complexity if coalescing
concurrent requests into shared model batches actually multiplies
columns/sec over serving each request alone.  This benchmark makes that a
tracked number: a closed-loop load generator (``CLIENTS`` concurrent
clients, each waiting for its response before sending the next request)
drives the same fitted Sato bundle through a
:class:`~repro.serving.MicroBatcher` under two policies —

* **batch-1** — ``max_batch_size=1``: every request is dispatched alone,
  the degenerate no-batching policy (what per-request serving would do),
* **micro-batched** — the ``ExperimentConfig.serve_*`` policy
  (``serve_max_batch_size`` / ``serve_max_wait_ms``): concurrent requests
  coalesce into shared featurization + forward passes,

and in two cache regimes —

* **steady** (the ≥ 2x acceptance bar): the predictor's column-feature and
  table-topic LRU caches at their serving defaults, warmed before timing —
  the dashboard workload the serving stack is built for.  What remains per
  request is the batched forward pass, the structured decode, and the
  per-dispatch overhead that micro-batching amortises,
* **uncached** (reported, not gated): ``cache_size=0``, so featurization
  and LDA topic inference are re-paid on every request.  Per-table LDA
  inference does not amortise with batching, which is visible as a smaller
  (but still real) speedup — exactly the number capacity planning needs
  for first-contact traffic.

Both runs of a pair serve identical traffic from an engine warmed outside
the timed window.  Results (rates, latency percentiles, batch-size
histograms) are persisted to ``benchmarks/results/serving_throughput.json``;
CI uploads it as an artifact, and ``docs/operations.md`` derives its
capacity-planning rule of thumb from these numbers.
"""

from __future__ import annotations

import asyncio
import time

from conftest import emit, emit_json, run_once

from repro.experiments.pipeline import build_corpus, make_model_factories
from repro.serving import MicroBatcher, Predictor

#: The tentpole acceptance bar: micro-batched columns/sec must be at least
#: this many times the batch-size-1 policy's on identical closed-loop load.
MIN_MICROBATCH_SPEEDUP = 2.0

#: Closed-loop load shape: each client has one request in flight at a time.
CLIENTS = 32
REQUESTS_PER_CLIENT = 8


def _closed_loop(
    model,
    tables,
    max_batch_size: int,
    max_wait_ms: float,
    max_queue: int,
    cache_size: int,
) -> dict:
    """Drive one scheduling policy with the closed-loop load generator."""
    predictor = Predictor(model, cache_size=cache_size)
    predictor.predict_tables(tables)  # warm engine memos (+ caches, if any)

    async def client(batcher: MicroBatcher, index: int) -> None:
        table = tables[index % len(tables)]
        for _ in range(REQUESTS_PER_CLIENT):
            await batcher.submit(table)

    async def run() -> tuple[float, dict]:
        async with MicroBatcher(
            predictor,
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
            max_queue=max_queue,
        ) as batcher:
            started = time.perf_counter()
            await asyncio.gather(
                *[client(batcher, index) for index in range(CLIENTS)]
            )
            elapsed = time.perf_counter() - started
            snapshot = batcher.metrics.snapshot()
        return elapsed, snapshot

    try:
        elapsed, snapshot = asyncio.run(run())
    finally:
        predictor.close()

    n_requests = CLIENTS * REQUESTS_PER_CLIENT
    assert snapshot["requests"]["completed"] == n_requests  # closed loop: no drops
    columns = snapshot["columns"]["served"]
    return {
        "max_batch_size": max_batch_size,
        "max_wait_ms": max_wait_ms,
        "cache_size": cache_size,
        "n_requests": n_requests,
        "n_columns": columns,
        "seconds": elapsed,
        "columns_per_sec": columns / max(elapsed, 1e-9),
        "requests_per_sec": n_requests / max(elapsed, 1e-9),
        "mean_batch_size": snapshot["batches"]["mean_size"],
        "batch_size_histogram": snapshot["batches"]["size_histogram"],
        "latency_ms": snapshot["latency_ms"],
    }


def _throughput_comparison(config) -> dict:
    dataset = build_corpus(config)
    tables = dataset.multi_column().tables
    split = max(1, int(len(tables) * 0.8))
    train, serve = tables[:split], tables[split:] or tables[:1]
    model = make_model_factories(config)["Sato"]().fit(train)

    def pair(cache_size: int) -> dict:
        batch_one = _closed_loop(
            model, serve, max_batch_size=1, max_wait_ms=0.0,
            max_queue=config.serve_max_queue, cache_size=cache_size,
        )
        micro = _closed_loop(
            model, serve,
            max_batch_size=config.serve_max_batch_size,
            max_wait_ms=config.serve_max_wait_ms,
            max_queue=config.serve_max_queue,
            cache_size=cache_size,
        )
        return {
            "batch_one": batch_one,
            "micro_batched": micro,
            "speedup_columns_per_sec": (
                micro["columns_per_sec"] / max(batch_one["columns_per_sec"], 1e-9)
            ),
        }

    return {
        "clients": CLIENTS,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "n_serve_tables": len(serve),
        "steady": pair(cache_size=4096),
        "uncached": pair(cache_size=0),
    }


def test_serving_throughput(benchmark, config):
    result = run_once(benchmark, _throughput_comparison, config)

    def line(name: str, cell: dict) -> str:
        return (
            f"  {name:<22s}: {cell['seconds']:7.3f}s "
            f"({cell['columns_per_sec']:>9,.0f} columns/sec, "
            f"{cell['requests_per_sec']:>7,.0f} req/sec, "
            f"mean batch {cell['mean_batch_size']:.1f}, "
            f"p99 {cell['latency_ms']['p99']:.1f}ms)"
        )

    lines = [
        "Online serving throughput: closed loop, "
        f"{CLIENTS} clients x {REQUESTS_PER_CLIENT} requests",
        line("batch-1 steady", result["steady"]["batch_one"]),
        line("micro-batched steady", result["steady"]["micro_batched"]),
        line("batch-1 uncached", result["uncached"]["batch_one"]),
        line("micro-batched uncached", result["uncached"]["micro_batched"]),
        f"  speedup               : {result['steady']['speedup_columns_per_sec']:.1f}x"
        f" steady, {result['uncached']['speedup_columns_per_sec']:.1f}x uncached",
    ]
    emit("serving_throughput", "\n".join(lines))
    emit_json("serving_throughput", result)

    # The acceptance bar: on steady-state (cached) traffic, coalescing must
    # clearly beat per-request dispatch.
    assert result["steady"]["speedup_columns_per_sec"] >= MIN_MICROBATCH_SPEEDUP
    # The policy must actually have batched (otherwise the speedup is luck).
    assert result["steady"]["micro_batched"]["mean_batch_size"] > 1.5
    # Uncached serving is dominated by per-table LDA inference, which does
    # not amortise with batch size — so no speedup floor is gated here, but
    # micro-batching must never make things *worse*.
    assert result["uncached"]["speedup_columns_per_sec"] > 0.9
