"""Figure 8: per-type F1 with vs without structured (CRF) prediction.

Panel (a): Sato vs SatoNoStruct.  Panel (b): SatoNoTopic vs Base.
"""

from conftest import emit, run_once

from repro.evaluation import per_type_comparison
from repro.experiments import reporting, run_main_results


def test_figure8_struct_effect(benchmark, config):
    results = run_once(benchmark, run_main_results, config)
    dataset = "Dmult"

    def pooled(model):
        return results.result(dataset, model).pooled_true_pred()

    sato_true, sato_pred = pooled("Sato")
    nostruct_true, nostruct_pred = pooled("SatoNoStruct")
    notopic_true, notopic_pred = pooled("SatoNoTopic")
    base_true, base_pred = pooled("Base")

    panel_a = per_type_comparison(
        sato_true, sato_pred, nostruct_true, nostruct_pred, "Sato", "SatoNoStruct"
    )
    panel_b = per_type_comparison(
        notopic_true, notopic_pred, base_true, base_pred, "SatoNoTopic", "Base"
    )
    emit(
        "figure8_struct_effect",
        reporting.format_per_type_figure(panel_a, "Figure 8a: Sato vs SatoNoStruct")
        + "\n\n"
        + reporting.format_per_type_figure(panel_b, "Figure 8b: SatoNoTopic vs Base"),
    )

    # Structured prediction improves the majority of types over the plain
    # Base model (paper: 50 of 78 types improved).
    assert len(panel_b.improved_types) >= len(panel_b.degraded_types)
