"""Fleet scaling: prefork workers over one shared-memory bundle.

The multi-worker fleet only earns its complexity if adding workers
actually multiplies columns/sec without degrading tail latency.  This
benchmark makes that a tracked number: the same closed-loop load
generator as ``test_serving_throughput.py`` (``CLIENTS`` concurrent
clients, each waiting for its response before sending the next request)
drives the same fitted Sato bundle through a
:class:`~repro.serving.ServingFleet` at two sizes —

* **1 worker** — the single-process baseline (one predictor behind the
  pipe protocol, so IPC cost is paid in both arms and the comparison
  isolates parallelism),
* **4 workers** — the fleet: four prefork processes mapping the same
  shared-memory tensor store, with fingerprint-affinity routing.

Both arms serve with ``cache_size=0`` so every request pays real
featurization + topic-inference work; with warm caches the workload
degenerates to IPC ping-pong and measures the pipe, not the fleet.
Latency is measured client-side (submit to response), so queueing,
routing and IPC are all inside the number.

The acceptance bar (gated only on machines with >= 4 cores; CI runners
have 4): 4 workers must reach ``MIN_FLEET_SPEEDUP`` x the single-worker
columns/sec while client-perceived p99 stays within ``MAX_P99_RATIO`` x
the single-worker p99.  Results are persisted to
``benchmarks/results/fleet_scaling.json``; CI uploads the file as an
artifact and ``check_trend.py`` gates the speedup against
``baselines.json``.
"""

from __future__ import annotations

import asyncio
import os
import tempfile
import time
from pathlib import Path

import pytest

from conftest import emit, emit_json, run_once

from repro.experiments.pipeline import build_corpus, make_model_factories
from repro.serving import ServingFleet, save_model
from repro.serving.scheduler import _percentile

#: The tentpole acceptance bar: 4 workers must serve at least this many
#: times the single-worker columns/sec on identical closed-loop load.
MIN_FLEET_SPEEDUP = 2.5

#: ...while client-perceived p99 latency stays within this factor of the
#: single-worker p99 (with a floor so a microsecond baseline cannot make
#: the ratio meaninglessly strict).
MAX_P99_RATIO = 1.5
P99_FLOOR_MS = 5.0

#: Closed-loop load shape: each client has one request in flight at a time.
CLIENTS = 32
REQUESTS_PER_CLIENT = 6

FLEET_SIZES = (1, 4)


def _closed_loop(bundle_path: Path, tables, n_workers: int, config) -> dict:
    """Drive one fleet size with the closed-loop load generator."""

    async def client(fleet: ServingFleet, index: int, latencies: list) -> int:
        table = tables[index % len(tables)]
        columns = 0
        for _ in range(REQUESTS_PER_CLIENT):
            started = time.perf_counter()
            labels = await fleet.submit(table)
            latencies.append(time.perf_counter() - started)
            columns += len(labels)
        return columns

    async def run() -> tuple[int, float, list, dict]:
        fleet = ServingFleet(
            n_workers,
            bundle_path=str(bundle_path),
            cache_size=0,  # pay real per-request work; see module docstring
            max_batch_size=config.serve_max_batch_size,
            max_wait_ms=config.serve_max_wait_ms,
            max_queue=config.serve_max_queue,
            # Sized so a hot worker saturates at its fair share of the
            # closed-loop load and the excess spills to its ring
            # neighbours — few serve tables hash unevenly, and without
            # spill the skewed worker would bound the whole fleet.
            worker_queue=max(8, CLIENTS // n_workers),
        )
        await fleet.start()
        try:
            # Warm every worker's engine memos outside the timed window
            # (chunked so warmup stays inside the admission bound).
            for start in range(0, len(tables), CLIENTS // 2):
                chunk = tables[start : start + CLIENTS // 2]
                await asyncio.gather(*[fleet.submit(table) for table in chunk])
            latencies: list = []
            started = time.perf_counter()
            counts = await asyncio.gather(
                *[client(fleet, index, latencies) for index in range(CLIENTS)]
            )
            elapsed = time.perf_counter() - started
            stats = await fleet.fleet_metrics()
        finally:
            await fleet.drain()
        return sum(counts), elapsed, latencies, stats

    columns, elapsed, latencies, stats = asyncio.run(run())
    n_requests = CLIENTS * REQUESTS_PER_CLIENT
    assert len(latencies) == n_requests  # closed loop: no drops
    ordered = sorted(latencies)
    return {
        "n_workers": n_workers,
        "n_requests": n_requests,
        "n_columns": columns,
        "seconds": elapsed,
        "columns_per_sec": columns / max(elapsed, 1e-9),
        "requests_per_sec": n_requests / max(elapsed, 1e-9),
        "latency_ms": {
            "p50": _percentile(ordered, 0.50) * 1e3,
            "p95": _percentile(ordered, 0.95) * 1e3,
            "p99": _percentile(ordered, 0.99) * 1e3,
            "max": ordered[-1] * 1e3,
        },
        "routing": stats["routing"],
        "alive": stats["alive"],
        "restarts": stats["restarts"],
    }


def _scaling_comparison(config) -> dict:
    dataset = build_corpus(config)
    tables = dataset.multi_column().tables
    split = max(1, int(len(tables) * 0.8))
    train, serve = tables[:split], tables[split:] or tables[:1]
    model = make_model_factories(config)["Sato"]().fit(train)

    with tempfile.TemporaryDirectory(prefix="repro-fleet-bench-") as tmp:
        bundle = save_model(model, Path(tmp) / "bundle")
        arms = {
            f"workers_{n}": _closed_loop(bundle, serve, n, config)
            for n in FLEET_SIZES
        }

    one, four = arms["workers_1"], arms[f"workers_{FLEET_SIZES[-1]}"]
    return {
        "clients": CLIENTS,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "n_serve_tables": len(serve),
        "cpu_count": os.cpu_count(),
        **arms,
        "speedup_columns_per_sec": (
            four["columns_per_sec"] / max(one["columns_per_sec"], 1e-9)
        ),
        "p99_ratio": (
            four["latency_ms"]["p99"]
            / max(one["latency_ms"]["p99"], P99_FLOOR_MS)
        ),
    }


def test_fleet_scaling(benchmark, config):
    result = run_once(benchmark, _scaling_comparison, config)

    def line(name: str, cell: dict) -> str:
        return (
            f"  {name:<22s}: {cell['seconds']:7.3f}s "
            f"({cell['columns_per_sec']:>9,.0f} columns/sec, "
            f"{cell['requests_per_sec']:>7,.0f} req/sec, "
            f"p99 {cell['latency_ms']['p99']:.1f}ms, "
            f"affinity {cell['routing']['affinity_hits']}, "
            f"spills {cell['routing']['spills']})"
        )

    lines = [
        "Fleet scaling: closed loop, "
        f"{CLIENTS} clients x {REQUESTS_PER_CLIENT} requests, uncached",
        line("1 worker", result["workers_1"]),
        line(f"{FLEET_SIZES[-1]} workers", result[f"workers_{FLEET_SIZES[-1]}"]),
        f"  speedup               : {result['speedup_columns_per_sec']:.2f}x "
        f"columns/sec, p99 ratio {result['p99_ratio']:.2f} "
        f"({result['cpu_count']} cores)",
    ]
    emit("fleet_scaling", "\n".join(lines))
    emit_json("fleet_scaling", result)

    # No worker may have crashed (a restart would hide a serving gap).
    for n in FLEET_SIZES:
        assert result[f"workers_{n}"]["alive"] == n
        assert result[f"workers_{n}"]["restarts"] == 0

    if (os.cpu_count() or 1) < 4:
        pytest.skip(
            "fleet scaling bar needs >= 4 cores "
            f"(this machine has {os.cpu_count()}); numbers were still emitted"
        )

    # The acceptance bar: 4 workers must multiply throughput...
    assert result["speedup_columns_per_sec"] >= MIN_FLEET_SPEEDUP
    # ...without degrading client-perceived tail latency.
    four_p99 = result[f"workers_{FLEET_SIZES[-1]}"]["latency_ms"]["p99"]
    one_p99 = result["workers_1"]["latency_ms"]["p99"]
    assert four_p99 <= MAX_P99_RATIO * max(one_p99, P99_FLOOR_MS)
