"""Ablation: sweep of the topic-vector dimensionality (Section 3.2 choice)."""

from conftest import emit, run_once

from repro.experiments import reporting, run_topic_dimension_sweep


def test_ablation_topic_dimensions(benchmark, config):
    points = run_once(benchmark, run_topic_dimension_sweep, config, (4, 16, 48))
    emit("ablation_topic_dimensions", reporting.format_ablation(points, "Ablation: LDA topic dimensionality"))

    assert len(points) == 3
    for point in points:
        assert 0.0 <= point.macro_f1 <= 1.0
        assert 0.0 <= point.weighted_f1 <= 1.0
