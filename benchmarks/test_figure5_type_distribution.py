"""Figure 5: long-tailed distribution of semantic type counts in D."""

import numpy as np

from conftest import emit, run_once

from repro.corpus.statistics import type_counts
from repro.experiments import build_corpus, reporting


def test_figure5_type_distribution(benchmark, config):
    dataset = run_once(benchmark, build_corpus, config)
    counts = type_counts(dataset.tables)
    emit("figure5_type_distribution", reporting.format_figure5(dict(counts)))

    values = np.array(sorted(counts.values(), reverse=True), dtype=float)
    # Long tail: the most frequent type dominates the least frequent one and
    # the head (top 20%) holds the majority of the mass.
    assert values[0] >= 5 * values[-1]
    # The head (top 20% of types) holds clearly more than its uniform share
    # of the column mass.
    head = int(np.ceil(len(values) * 0.2))
    uniform_share = head / len(values) * values.sum()
    assert values[:head].sum() > 1.5 * uniform_share
    # Head types from the paper's Figure 5 should be among our most frequent.
    top10 = {name for name, _ in counts.most_common(10)}
    assert top10 & {"name", "description", "team", "type", "age", "location", "year", "city"}
