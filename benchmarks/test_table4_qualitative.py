"""Table 4: example tables whose column-wise mispredictions the CRF corrects."""

from conftest import emit, run_once

from repro.experiments import reporting, run_qualitative


def test_table4_structured_corrections(benchmark, config):
    examples = run_once(benchmark, run_qualitative, config, 10)
    emit("table4_qualitative", reporting.format_table4(examples))

    # Structured prediction must salvage at least one table in at least one
    # of the two comparisons (Base->SatoNoTopic, SatoNoStruct->Sato), and
    # every reported example must be a net improvement.
    total = sum(len(v) for v in examples.values())
    assert total >= 1
    for example_list in examples.values():
        for example in example_list:
            assert example.n_corrected > example.n_broken
