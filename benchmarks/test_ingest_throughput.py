"""Bulk-ingest throughput and bounded-memory check.

Generates a CSV with a *bounded distinct-value domain* (accumulator state
is O(distinct values), not O(rows)), then ingests it through the real
streaming path — ``repro.ingest`` adapters folding chunks into
``ColumnAccumulator``s — in a child process that reports rows/sec and its
own peak RSS (``resource.getrusage``).  Two runs, 10k rows vs 100k rows:
peak RSS must be essentially independent of row count, which is the whole
point of the chunked-table core.  Results land in
``benchmarks/results/ingest.json`` (CI's ``ingest-throughput`` artifact);
``check_trend.py`` gates ``ingest.rows_per_sec`` against ``baselines.json``.

Row counts are deliberately preset-independent: the RSS comparison needs
both runs every time, and 100k rows streams in seconds at any preset.
"""

from __future__ import annotations

import csv
import json
import os
import subprocess
import sys
from pathlib import Path

from conftest import emit, emit_json, run_once

import repro

SMALL_ROWS = 10_000
LARGE_ROWS = 100_000
CHUNK_ROWS = 4096
#: 10x the rows may cost at most 30% more peak RSS (interpreter + numpy
#: dominate; accumulator state is bounded by the distinct-value domain).
MAX_RSS_RATIO = 1.30

#: Runs inside a fresh interpreter so ``ru_maxrss`` measures only this
#: workload: ingest the CSV, fold every chunk into column accumulators,
#: report throughput and peak RSS as one JSON line.
_CHILD = """
import json, resource, sys, time
from repro.features import ColumnAccumulator
from repro.ingest import open_source

path, chunk_rows = sys.argv[1], int(sys.argv[2])
start = time.perf_counter()
rows = 0
for stream in open_source(path, chunk_rows):
    accumulators = [
        ColumnAccumulator(max_tokens=128) for _ in range(stream.n_columns)
    ]
    for chunk in stream.chunks:
        for accumulator, values in zip(accumulators, chunk.columns):
            accumulator.partial_fit(
                values, start_row=chunk.start_row, row_span=chunk.n_rows
            )
        rows += chunk.n_rows
elapsed = time.perf_counter() - start
print(json.dumps({
    "rows": rows,
    "seconds": elapsed,
    "rows_per_sec": rows / max(elapsed, 1e-9),
    "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
}))
"""


def write_corpus_csv(path: Path, n_rows: int) -> None:
    cities = [f"city{i}" for i in range(50)]
    amounts = [f"{i * 37 % 9973}.{i % 100:02d}" for i in range(100)]
    codes = [f"AB-{i:03d}" for i in range(30)]
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["city", "amount", "code"])
        for i in range(n_rows):
            writer.writerow(
                [cities[i % 50], amounts[i % 100], codes[i % 30]]
            )


def ingest_in_child(path: Path) -> dict:
    env = dict(os.environ)
    src_root = str(Path(repro.__file__).parents[1])
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-c", _CHILD, str(path), str(CHUNK_ROWS)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(result.stdout)


def _measure(tmp_path: Path) -> dict:
    runs = {}
    for label, n_rows in [("small", SMALL_ROWS), ("large", LARGE_ROWS)]:
        path = tmp_path / f"{label}.csv"
        write_corpus_csv(path, n_rows)
        runs[label] = ingest_in_child(path)
    return runs


def test_ingest_throughput(benchmark, tmp_path):
    runs = run_once(benchmark, _measure, tmp_path)
    small, large = runs["small"], runs["large"]

    assert small["rows"] == SMALL_ROWS
    assert large["rows"] == LARGE_ROWS
    rss_ratio = large["peak_rss_kb"] / small["peak_rss_kb"]
    assert rss_ratio <= MAX_RSS_RATIO, (
        f"peak RSS grew {rss_ratio:.2f}x for 10x the rows — streaming "
        f"ingest is no longer bounded-memory "
        f"({small['peak_rss_kb']} kB -> {large['peak_rss_kb']} kB)"
    )

    lines = [
        f"{'run':<8} {'rows':>8} {'rows/sec':>12} {'peak RSS kB':>12}",
        *(
            f"{label:<8} {run['rows']:>8d} {run['rows_per_sec']:>12.0f} "
            f"{run['peak_rss_kb']:>12d}"
            for label, run in runs.items()
        ),
        f"peak-RSS ratio (large/small): {rss_ratio:.3f} "
        f"(bound {MAX_RSS_RATIO})",
    ]
    emit("ingest", "\n".join(lines))
    emit_json(
        "ingest",
        {
            "rows_per_sec": large["rows_per_sec"],
            "rows": large["rows"],
            "seconds": large["seconds"],
            "peak_rss_small_kb": small["peak_rss_kb"],
            "peak_rss_large_kb": large["peak_rss_kb"],
            "rss_ratio": rss_ratio,
        },
    )
