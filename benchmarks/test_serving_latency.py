"""Serving latency: cold (retrain per call) vs warm (bundle load) prediction.

The train-once / serve-many split only pays off if loading a persisted
bundle and serving from it is dramatically cheaper than the legacy
retrain-per-call path.  This benchmark times both, plus the cache effect of
repeated traffic over the same tables, and emits a small report so
``BENCH_*.json`` tracks the serving hot path over time.
"""

from __future__ import annotations

import time

from conftest import emit, run_once

from repro.experiments.pipeline import build_corpus, make_model_factories
from repro.serving import Predictor, load_model, save_model


def _serving_comparison(config, bundle_dir) -> dict:
    dataset = build_corpus(config)
    tables = dataset.multi_column().tables
    split = max(1, int(len(tables) * 0.8))
    train, serve = tables[:split], tables[split:] or tables[:1]
    factory = make_model_factories(config)["Sato"]

    # Cold path: what every `predict` call paid before persistence existed.
    started = time.perf_counter()
    model = factory().fit(train)
    cold_predictions = [model.predict_table(t) for t in serve]
    cold_seconds = time.perf_counter() - started

    save_model(model, bundle_dir)

    # Warm path: load the bundle once, then serve the same tables batched.
    started = time.perf_counter()
    predictor = Predictor(load_model(bundle_dir))
    warm_predictions = predictor.predict_tables(serve)
    warm_seconds = time.perf_counter() - started

    # Hot path: repeated traffic over the same columns hits the LRU cache.
    started = time.perf_counter()
    predictor.predict_tables(serve)
    hot_seconds = time.perf_counter() - started

    assert warm_predictions == cold_predictions
    return {
        "n_serve_tables": len(serve),
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "hot_seconds": hot_seconds,
        "speedup_warm": cold_seconds / max(warm_seconds, 1e-9),
        "speedup_hot": cold_seconds / max(hot_seconds, 1e-9),
        "cache": predictor.cache_info(),
    }


def test_serving_latency(benchmark, config, tmp_path):
    result = run_once(benchmark, _serving_comparison, config, tmp_path / "bundle")
    lines = [
        "Serving latency: cold (retrain) vs warm (bundle load + batched serve)",
        f"  serve tables : {result['n_serve_tables']}",
        f"  cold         : {result['cold_seconds']:.3f}s (train + per-table predict)",
        f"  warm         : {result['warm_seconds']:.3f}s (load bundle + batched predict)",
        f"  hot          : {result['hot_seconds']:.3f}s (cache hits: {result['cache']['hits']})",
        f"  speedup warm : {result['speedup_warm']:.1f}x",
        f"  speedup hot  : {result['speedup_hot']:.1f}x",
    ]
    emit("serving_latency", "\n".join(lines))

    # Loading a bundle must be far cheaper than retraining; the cached hot
    # path must not be slower than the first warm pass by any wide margin.
    assert result["speedup_warm"] > 2.0
    assert result["cache"]["hits"] >= result["cache"]["misses"]
