"""Table 3: the most salient LDA topics and their representative semantic types."""

from conftest import emit, run_once

from repro.experiments import reporting, run_topic_analysis
from repro.types import SEMANTIC_TYPES


def test_table3_topic_interpretation(benchmark, config):
    summaries = run_once(benchmark, run_topic_analysis, config, 5, 5)
    emit("table3_topics", reporting.format_table3(summaries))

    assert len(summaries) == 5
    # Saliency is sorted descending and every representative type is valid.
    saliencies = [s.saliency for s in summaries]
    assert saliencies == sorted(saliencies, reverse=True)
    for summary in summaries:
        assert len(summary.top_types) == 5
        assert all(t in SEMANTIC_TYPES for t in summary.top_types)
