"""Figure 9: permutation importance of feature categories for all variants."""

from conftest import emit, run_once

from repro.experiments import reporting, run_importance


def test_figure9_feature_importance(benchmark, config):
    importances = run_once(benchmark, run_importance, config, 2)
    emit("figure9_feature_importance", reporting.format_figure9(importances))

    assert set(importances) == {"Base", "Sato", "SatoNoStruct", "SatoNoTopic"}
    # Topic-aware models report an importance for the topic feature group.
    assert "topic" in importances["Sato"]
    assert "topic" in importances["SatoNoStruct"]
    assert "topic" not in importances["Base"]
    # Shuffling a feature group should never massively *improve* the model.
    for groups in importances.values():
        for importance in groups.values():
            assert importance.macro_drop > -30.0
    # In the topic-aware models, the topic group carries real importance for
    # the macro metric (the paper finds it the most important category).
    sato_groups = importances["Sato"]
    assert sato_groups["topic"].macro_drop >= -5.0
