"""Featurization throughput: loop vs vectorized vs sharded, cold and warm.

Per-column featurization is the serving bottleneck (Table 2 of the paper),
so its throughput is a tracked number, not a claim: this benchmark measures
columns/sec for

* the ``loop`` oracle backend (per-value Python),
* the ``vectorized`` backend, cold (fresh engine, empty codepoint/token
  memos) and warm (steady-state serving),
* the sharded vectorized backend (``workers=4``), cold (includes process
  pool spin-up) and warm,

verifies loop/vectorized parity and shard bit-identity on the same batch,
and persists both a human-readable report and a machine-readable JSON
(uploaded as a CI artifact) under ``benchmarks/results/``.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import emit, emit_json, run_once

from repro.experiments.pipeline import build_corpus
from repro.features import ColumnFeaturizer

#: The tentpole acceptance bar: warm vectorized throughput must be at least
#: this many times the loop backend's on the synthetic corpus.
MIN_VECTORIZED_SPEEDUP = 3.0

SHARD_WORKERS = 4

#: Replicate the corpus columns so every timing covers a serving-sized batch.
MIN_COLUMNS = 2000


def _timed(featurizer: ColumnFeaturizer, columns) -> tuple[float, np.ndarray]:
    started = time.perf_counter()
    matrix = featurizer.transform_columns(columns)
    return time.perf_counter() - started, matrix


def _throughput_comparison(config) -> dict:
    tables = build_corpus(config).tables
    columns = [column for table in tables for column in table.columns]
    replicas = max(1, -(-MIN_COLUMNS // max(1, len(columns))))
    columns = columns * replicas
    n_columns = len(columns)

    featurizer = ColumnFeaturizer(
        word_dim=config.word_dim,
        para_dim=config.para_dim,
        seed=config.seed,
        backend="loop",
    )
    featurizer.fit(tables)

    loop_seconds, loop_matrix = _timed(featurizer, columns)

    featurizer.set_backend("vectorized")
    cold_seconds, vectorized_matrix = _timed(featurizer, columns)
    warm_seconds, _ = _timed(featurizer, columns)

    featurizer.set_backend("vectorized", workers=SHARD_WORKERS)
    shard_cold_seconds, sharded_matrix = _timed(featurizer, columns)
    shard_warm_seconds, _ = _timed(featurizer, columns)
    featurizer.close()  # shut the worker pool down

    assert np.allclose(vectorized_matrix, loop_matrix, rtol=1e-6, atol=1e-9)
    assert np.array_equal(vectorized_matrix, sharded_matrix)

    def rate(seconds: float) -> float:
        return n_columns / max(seconds, 1e-9)

    return {
        "n_columns": n_columns,
        "n_features": featurizer.n_features,
        "loop": {"seconds": loop_seconds, "columns_per_sec": rate(loop_seconds)},
        "vectorized_cold": {
            "seconds": cold_seconds,
            "columns_per_sec": rate(cold_seconds),
        },
        "vectorized_warm": {
            "seconds": warm_seconds,
            "columns_per_sec": rate(warm_seconds),
        },
        "sharded_cold": {
            "seconds": shard_cold_seconds,
            "columns_per_sec": rate(shard_cold_seconds),
            "workers": SHARD_WORKERS,
        },
        "sharded_warm": {
            "seconds": shard_warm_seconds,
            "columns_per_sec": rate(shard_warm_seconds),
            "workers": SHARD_WORKERS,
        },
        "speedup_vectorized_cold": loop_seconds / max(cold_seconds, 1e-9),
        "speedup_vectorized_warm": loop_seconds / max(warm_seconds, 1e-9),
        "speedup_sharded_warm": loop_seconds / max(shard_warm_seconds, 1e-9),
    }


def test_featurization_throughput(benchmark, config):
    result = run_once(benchmark, _throughput_comparison, config)

    def line(name: str, cell: dict) -> str:
        return (
            f"  {name:<16s}: {cell['seconds']:7.3f}s "
            f"({cell['columns_per_sec']:>10,.0f} columns/sec)"
        )

    lines = [
        "Featurization throughput: loop vs vectorized vs sharded "
        f"({result['n_columns']} columns x {result['n_features']} features)",
        line("loop", result["loop"]),
        line("vectorized cold", result["vectorized_cold"]),
        line("vectorized warm", result["vectorized_warm"]),
        line(f"sharded x{SHARD_WORKERS} cold", result["sharded_cold"]),
        line(f"sharded x{SHARD_WORKERS} warm", result["sharded_warm"]),
        f"  speedup (warm)  : {result['speedup_vectorized_warm']:.1f}x vectorized, "
        f"{result['speedup_sharded_warm']:.1f}x sharded",
    ]
    emit("featurization_throughput", "\n".join(lines))
    emit_json("featurization_throughput", result)

    # The acceptance bar for the vectorized backend, on steady-state traffic.
    assert result["speedup_vectorized_warm"] >= MIN_VECTORIZED_SPEEDUP
    # A fresh engine must already beat the loop clearly, memos empty and all.
    assert result["speedup_vectorized_cold"] > 1.5
