"""Hot-swap latency: p99 request latency during swaps vs steady state.

Zero-downtime hot swap is only "zero downtime" if swapping a model under
load does not meaningfully degrade tail latency.  This benchmark stands up
a real registry-backed HTTP server, measures per-request latency from a
closed-loop client pool in two phases — steady state (no swaps) and a swap
storm (continuous admin reloads alternating between two published
versions) — and asserts that the swap-phase p99 stays within the 2x budget
of the steady-state p99.

The tracked trend metric is ``p99_headroom`` = (2 * steady p99) / swap p99:
1.0 means exactly at budget, higher is better.  CI gates on it via
``benchmarks/baselines.json`` and uploads the JSON to the bench-trend
artifact flow.
"""

from __future__ import annotations

import json
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor

from conftest import emit, emit_json, run_once

from repro.experiments.pipeline import build_corpus, make_model_factories
from repro.registry import ModelRegistry
from repro.serving import Predictor, serve_in_thread

#: Latency floor (seconds) for the budget comparison: below this, "p99"
#: measures socket and scheduler noise, not the serving path, and a 2x
#: ratio would be meaningless jitter arithmetic.
STEADY_FLOOR_SECONDS = 0.020


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    rank = min(
        len(sorted_values) - 1, max(0, round(fraction * (len(sorted_values) - 1)))
    )
    return sorted_values[rank]


def _measure_phase(
    port: int, payload: bytes, n_clients: int, requests_per_client: int
) -> list[float]:
    """Closed-loop load: each client sends sequential requests, timing each."""

    def client(_index: int) -> list[float]:
        latencies = []
        for _ in range(requests_per_client):
            started = time.perf_counter()
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/v1/predict",
                data=payload,
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=30) as reply:
                assert reply.status == 200
                reply.read()
            latencies.append(time.perf_counter() - started)
        return latencies

    with ThreadPoolExecutor(max_workers=n_clients) as pool:
        results = list(pool.map(client, range(n_clients)))
    return sorted(latency for batch in results for latency in batch)


def _hot_swap_comparison(config, registry_root) -> dict:
    dataset = build_corpus(config)
    tables = dataset.multi_column().tables
    split = max(1, int(len(tables) * 0.8))
    train, serve = tables[:split], tables[split:] or tables[:1]
    factory = make_model_factories(config)["Base"]

    registry = ModelRegistry(registry_root)
    v1 = registry.publish(factory().fit(train), "bench")
    registry.promote("bench", v1.version)
    v2 = registry.publish(factory().fit(train[: max(1, len(train) // 2)]), "bench")

    table_payload = json.dumps({"table": serve[0].to_dict()}).encode("utf-8")
    n_clients, per_client = 8, 12

    predictor = Predictor.from_registry(registry, "bench")
    with serve_in_thread(
        predictor, port=0, registry=registry, model_name="bench"
    ) as handle:
        port = handle.port
        _measure_phase(port, table_payload, 2, 4)  # warm caches + code paths
        steady = _measure_phase(port, table_payload, n_clients, per_client)

        # Swap storm: alternate versions as fast as reloads complete while
        # the same load profile runs.
        stop = False

        def swapper() -> int:
            swaps = 0
            versions = [v2.version, v1.version]
            while not stop:
                target = versions[swaps % 2]
                body = json.dumps({"version": target}).encode("utf-8")
                request = urllib.request.Request(
                    f"http://127.0.0.1:{port}/v1/admin/reload",
                    data=body,
                    headers={"Content-Type": "application/json"},
                    method="POST",
                )
                with urllib.request.urlopen(request, timeout=30) as reply:
                    assert reply.status == 200
                swaps += 1
            return swaps

        with ThreadPoolExecutor(max_workers=1) as admin:
            swap_future = admin.submit(swapper)
            try:
                swapping = _measure_phase(
                    port, table_payload, n_clients, per_client
                )
            finally:
                stop = True
            n_swaps = swap_future.result(timeout=30)

    steady_p99 = _percentile(steady, 0.99)
    swap_p99 = _percentile(swapping, 0.99)
    budget = 2.0 * max(steady_p99, STEADY_FLOOR_SECONDS)
    return {
        "n_requests_per_phase": n_clients * per_client,
        "n_swaps_during_storm": n_swaps,
        "steady": {
            "p50_ms": _percentile(steady, 0.50) * 1e3,
            "p99_ms": steady_p99 * 1e3,
        },
        "swap": {
            "p50_ms": _percentile(swapping, 0.50) * 1e3,
            "p99_ms": swap_p99 * 1e3,
        },
        "p99_budget_ms": budget * 1e3,
        "p99_headroom": budget / max(swap_p99, 1e-9),
    }


def test_hot_swap_latency(benchmark, config, tmp_path):
    result = run_once(benchmark, _hot_swap_comparison, config, tmp_path / "registry")
    lines = [
        "Hot-swap latency: p99 during swap storm vs steady state",
        f"  requests/phase : {result['n_requests_per_phase']}",
        f"  swaps in storm : {result['n_swaps_during_storm']}",
        f"  steady p50/p99 : {result['steady']['p50_ms']:.1f} / "
        f"{result['steady']['p99_ms']:.1f} ms",
        f"  swap   p50/p99 : {result['swap']['p50_ms']:.1f} / "
        f"{result['swap']['p99_ms']:.1f} ms",
        f"  p99 budget     : {result['p99_budget_ms']:.1f} ms (2x steady)",
        f"  p99 headroom   : {result['p99_headroom']:.2f}x",
    ]
    emit("hot_swap_latency", "\n".join(lines))
    emit_json("hot_swap_latency", result)

    # The storm must have actually swapped while we measured, and the swap
    # phase p99 must stay within the 2x steady-state budget.
    assert result["n_swaps_during_storm"] >= 2
    assert result["p99_headroom"] >= 1.0, (
        f"p99 during swaps {result['swap']['p99_ms']:.1f}ms exceeds "
        f"2x steady-state budget {result['p99_budget_ms']:.1f}ms"
    )
