"""Table 1: macro / support-weighted F1 of Base, Sato, SatoNoStruct and
SatoNoTopic on Dmult and D under k-fold cross-validation."""

from conftest import emit, run_once

from repro.experiments import reporting, run_main_results


def test_table1_main_results(benchmark, config):
    results = run_once(benchmark, run_main_results, config)
    emit("table1_main_results", reporting.format_table1(results))

    for dataset in ("Dmult", "D"):
        base = results.result(dataset, "Base")
        sato = results.result(dataset, "Sato")
        # The paper's headline claim: Sato improves over Base on both
        # averages, with the larger relative gain on macro F1.
        assert sato.macro_f1 >= base.macro_f1 - 0.02
        assert sato.weighted_f1 >= base.weighted_f1 - 0.02
    # Each contextual signal alone also helps on the multi-column dataset.
    assert (
        results.result("Dmult", "SatoNoTopic").weighted_f1
        >= results.result("Dmult", "Base").weighted_f1 - 0.02
    )
