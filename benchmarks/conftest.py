"""Shared benchmark helpers.

Every benchmark regenerates one table or figure of the paper.  The
experiment configuration is selected with the ``REPRO_BENCH_PRESET``
environment variable (``tiny`` / ``fast`` / ``large``; default ``fast``) so
the same harness scales from a quick smoke run to an overnight job.
Regenerated reports are printed and written to ``benchmarks/results/``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments import ExperimentConfig

RESULTS_DIR = Path(__file__).parent / "results"

_PRESETS = {
    "tiny": ExperimentConfig.tiny,
    "fast": ExperimentConfig.fast,
    "large": ExperimentConfig.large,
}


def bench_config() -> ExperimentConfig:
    """The experiment configuration used by all benchmarks in this run."""
    preset = os.environ.get("REPRO_BENCH_PRESET", "fast").lower()
    if preset not in _PRESETS:
        raise ValueError(f"unknown REPRO_BENCH_PRESET {preset!r}")
    return _PRESETS[preset]()


def emit(name: str, text: str) -> None:
    """Print a regenerated report and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print()
    print(text)


def emit_json(name: str, payload: dict) -> Path:
    """Persist a machine-readable result under benchmarks/results/.

    CI uploads these as artifacts so that numbers like columns/sec are a
    tracked series, not a one-off claim in a PR description.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def run_once(benchmark, function, *args, **kwargs):
    """Run a benchmark exactly once (model training is far too slow to repeat)."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    return bench_config()
