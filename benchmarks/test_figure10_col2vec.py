"""Figure 10: 2-D projection of column embeddings, Sato vs Sherlock (Base)."""

import numpy as np

from conftest import emit, run_once

from repro.experiments import reporting, run_col2vec


def test_figure10_column_embeddings(benchmark, config):
    result = run_once(benchmark, run_col2vec, config)
    emit("figure10_col2vec", reporting.format_figure10(result))

    assert len(result.labels_sato) == len(np.asarray(result.projection_sato))
    assert len(result.labels_base) == len(np.asarray(result.projection_base))
    # The projections are 2-D and finite.
    if len(result.labels_sato):
        projection = np.asarray(result.projection_sato)
        assert projection.shape[1] == 2
        assert np.all(np.isfinite(projection))
    # The paper's qualitative claim: the topic-aware model separates the
    # ambiguous organisation-related types at least as well as Sherlock.
    assert result.separation_sato >= result.separation_base - 0.25
