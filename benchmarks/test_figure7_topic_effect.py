"""Figure 7: per-type F1 with vs without topic-aware prediction.

Panel (a): Sato vs SatoNoTopic.  Panel (b): SatoNoStruct vs Base.
"""

from conftest import emit, run_once

from repro.evaluation import per_type_comparison
from repro.experiments import reporting, run_main_results


def test_figure7_topic_effect(benchmark, config):
    results = run_once(benchmark, run_main_results, config)
    dataset = "Dmult"

    def pooled(model):
        return results.result(dataset, model).pooled_true_pred()

    sato_true, sato_pred = pooled("Sato")
    notopic_true, notopic_pred = pooled("SatoNoTopic")
    nostruct_true, nostruct_pred = pooled("SatoNoStruct")
    base_true, base_pred = pooled("Base")

    panel_a = per_type_comparison(
        sato_true, sato_pred, notopic_true, notopic_pred, "Sato", "SatoNoTopic"
    )
    panel_b = per_type_comparison(
        nostruct_true, nostruct_pred, base_true, base_pred, "SatoNoStruct", "Base"
    )
    emit(
        "figure7_topic_effect",
        reporting.format_per_type_figure(panel_a, "Figure 7a: Sato vs SatoNoTopic")
        + "\n\n"
        + reporting.format_per_type_figure(panel_b, "Figure 7b: SatoNoStruct vs Base"),
    )

    # Topic-aware prediction should improve at least as many types as it
    # degrades in at least one of the two panels (the paper improves ~60/78).
    assert (
        len(panel_a.improved_types) >= len(panel_a.degraded_types)
        or len(panel_b.improved_types) >= len(panel_b.degraded_types)
    )
