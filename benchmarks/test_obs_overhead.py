"""Tracing overhead contract: the always-on tracer must stay under 5%.

The observability layer (``repro.obs``) is designed to be left on in
production — per-stage spans on every micro-batch, bounded-window
aggregates on every request.  That claim is enforced here, not asserted in
a docstring: the same serving-shaped workload (distinct tables, warm
model, ``predict_tables`` in micro-batch slices plus the JSON encode the
HTTP server pays) runs with the process tracer enabled and disabled in
*alternating* rounds, best-of each arm, so CPU-frequency drift hits both
arms equally.  ``traced_vs_untraced`` is the throughput ratio (1.0 = free;
the in-test gate is :data:`MIN_TRACED_RATIO`).

The same run exercises the profiling CLI end to end: the replayed corpus
goes through :func:`repro.obs.profile_predictor` and the report must
attribute at least :data:`MIN_COVERAGE` of measured wall time to the
top-level pipeline stages — a profile that cannot account for its own
wall time is lying by omission.

Results land in ``benchmarks/results/obs_overhead.json`` and
``benchmarks/results/profile_report.json`` (CI's ``profile-report``
artifact); ``check_trend.py`` gates ``obs_overhead.traced_vs_untraced``
against ``baselines.json``.
"""

from __future__ import annotations

import os
import time

from conftest import emit, emit_json, run_once

from repro.corpus import CorpusConfig, CorpusGenerator
from repro.experiments.pipeline import build_corpus, make_model_factories
from repro.obs import get_tracer, profile_predictor, render_flame, set_enabled
from repro.serving import Predictor

#: The tentpole contract: tracing may cost at most 5% throughput.
MIN_TRACED_RATIO = 0.95

#: The profile report must explain at least this fraction of wall time.
MIN_COVERAGE = 0.90

#: Alternating traced/untraced rounds (best-of per arm).
ROUNDS = 3

BATCH_SIZE = 8

#: Serving corpus sizes per preset: distinct tables with realistic row
#: counts, so the measured work is featurization/forward-bound (the regime
#: the <=5% contract is about) rather than span bookkeeping on near-empty
#: batches.
N_TABLES = {"tiny": 48, "fast": 160, "large": 400}


def _serving_corpus(preset: str):
    config = CorpusConfig(
        n_tables=N_TABLES.get(preset, 160), min_rows=40, max_rows=80, seed=11
    )
    return CorpusGenerator(config).generate()


def _replay(predictor, tables) -> float:
    """One serving-shaped pass: micro-batch slices + the JSON encode."""
    import json

    started = time.perf_counter()
    for offset in range(0, len(tables), BATCH_SIZE):
        batch = tables[offset : offset + BATCH_SIZE]
        labels = predictor.predict_tables(batch)
        for table_labels in labels:
            json.dumps({"labels": table_labels})
    return time.perf_counter() - started


def _overhead_comparison(config) -> dict:
    dataset = build_corpus(config)
    multi = [t for t in dataset.tables if t.n_columns > 1]
    model = make_model_factories(config)["Base"]()
    model.fit(multi)
    predictor = Predictor(model, cache_size=1)  # no cache: measure real work

    preset = os.environ.get("REPRO_BENCH_PRESET", "fast").lower()
    serve = _serving_corpus(preset)
    n_columns = sum(t.n_columns for t in serve)

    predictor.predict_tables(serve[:BATCH_SIZE])  # warm imports/allocators
    tracer = get_tracer()
    was_enabled = tracer.enabled
    best = {True: float("inf"), False: float("inf")}
    try:
        for _ in range(ROUNDS):
            for enabled in (False, True):
                set_enabled(enabled)
                tracer.reset()
                best[enabled] = min(best[enabled], _replay(predictor, serve))
    finally:
        set_enabled(was_enabled)
        tracer.reset()

    ratio = best[False] / max(best[True], 1e-9)
    report = profile_predictor(
        predictor, serve, batch_size=BATCH_SIZE, suite=f"generated:{preset}"
    )
    return {
        "preset": preset,
        "n_tables": len(serve),
        "n_columns": n_columns,
        "rounds": ROUNDS,
        "batch_size": BATCH_SIZE,
        "untraced_seconds": best[False],
        "traced_seconds": best[True],
        "traced_vs_untraced": ratio,
        "overhead_fraction": max(0.0, 1.0 - ratio),
        "profile_report": report,
    }


def test_obs_overhead_and_profile_coverage(benchmark, config):
    result = run_once(benchmark, _overhead_comparison, config)
    report = result.pop("profile_report")

    emit_json("obs_overhead", result)
    emit_json("profile_report", report)
    emit(
        "obs_overhead",
        "\n".join(
            [
                "observability overhead "
                f"({result['n_tables']} tables / {result['n_columns']} columns, "
                f"best of {result['rounds']} alternating rounds):",
                f"  untraced: {result['untraced_seconds']:7.3f}s",
                f"  traced  : {result['traced_seconds']:7.3f}s",
                f"  ratio   : {result['traced_vs_untraced']:7.3f} "
                f"(overhead {result['overhead_fraction'] * 100:.1f}%)",
                "",
                render_flame(report),
            ]
        ),
    )

    assert result["traced_vs_untraced"] >= MIN_TRACED_RATIO, (
        f"tracing costs {result['overhead_fraction'] * 100:.1f}% "
        f"(contract: <= {(1 - MIN_TRACED_RATIO) * 100:.0f}%)"
    )
    assert report["coverage"] >= MIN_COVERAGE, (
        f"profile explains only {report['coverage'] * 100:.1f}% of wall time"
    )
