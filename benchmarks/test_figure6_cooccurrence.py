"""Figure 6: co-occurrence frequencies of semantic type pairs."""

import numpy as np

from conftest import emit, run_once

from repro.corpus.statistics import cooccurrence_matrix, top_cooccurring_pairs
from repro.experiments import build_corpus, reporting
from repro.types import TYPE_TO_INDEX


def test_figure6_cooccurrence(benchmark, config):
    dataset = run_once(benchmark, build_corpus, config)
    matrix = cooccurrence_matrix(dataset.tables)
    emit("figure6_cooccurrence", reporting.format_figure6(matrix))

    assert np.allclose(matrix, matrix.T)
    pairs = {frozenset((a, b)) for a, b, _ in top_cooccurring_pairs(matrix, k=15)}
    # The strongly coupled pairs the paper highlights should co-occur often.
    expected_any = [
        frozenset(("city", "state")),
        frozenset(("city", "country")),
        frozenset(("age", "weight")),
        frozenset(("age", "name")),
        frozenset(("code", "description")),
    ]
    assert any(pair in pairs for pair in expected_any)
    # The most frequent pair clearly dominates the tenth most frequent.  The
    # paper reports a ~4x ratio on the 80K-table WebTables sample; on the
    # much smaller synthetic corpus the gradient is flatter, so only the
    # ordering (a strictly decreasing head) is asserted.
    top = top_cooccurring_pairs(matrix, k=10)
    assert top[0][2] >= 1.2 * top[-1][2]
    # Diagonal entries are allowed (tables can repeat a type).
    assert matrix[TYPE_TO_INDEX["name"], TYPE_TO_INDEX["name"]] >= 0
