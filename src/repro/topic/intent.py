"""Table intent estimation (the "global context" of Sato).

The estimator treats all values of a table as one document, runs it through a
pre-trained LDA model, and returns the fixed-length topic vector every column
of the table shares.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.embeddings.tokenizer import tokenize_values
from repro.tables import Table
from repro.topic.dictionary import Dictionary
from repro.topic.lda import LatentDirichletAllocation

__all__ = ["TableIntentEstimator"]


class TableIntentEstimator:
    """Maps a table to a topic vector describing its intent.

    Parameters
    ----------
    n_topics:
        Topic-vector dimensionality (the paper uses 400).
    max_tokens_per_table:
        Token budget per table document, bounding LDA cost on huge tables.
    """

    def __init__(
        self,
        n_topics: int = 400,
        max_tokens_per_table: int = 512,
        n_iterations: int = 30,
        infer_iterations: int = 15,
        seed: int = 0,
    ) -> None:
        self.n_topics = n_topics
        self.max_tokens_per_table = max_tokens_per_table
        self.lda = LatentDirichletAllocation(
            n_topics=n_topics,
            n_iterations=n_iterations,
            infer_iterations=infer_iterations,
            seed=seed,
        )
        self._fitted = False

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._fitted

    def table_document(self, table: Table) -> list[str]:
        """Tokenise a table's values into one document (headers ignored)."""
        return tokenize_values(table.all_values())[: self.max_tokens_per_table]

    def fit(self, tables: Iterable[Table]) -> "TableIntentEstimator":
        """Pre-train the LDA model on an unlabelled table corpus."""
        documents = [self.table_document(t) for t in tables]
        # Drop tokens present in >70% of tables: they carry no intent signal.
        dictionary = Dictionary(no_below=2, no_above=0.7).fit(documents)
        self.lda.fit(documents, dictionary=dictionary)
        self._fitted = True
        return self

    # -------------------------------------------------------- serialisation

    def config_dict(self) -> dict:
        """JSON-serialisable configuration, including the nested LDA config."""
        return {
            "n_topics": self.n_topics,
            "max_tokens_per_table": self.max_tokens_per_table,
            "lda": self.lda.config_dict(),
        }

    def state_dict(self) -> dict[str, np.ndarray]:
        """Serialisable fitted state (the trained LDA model)."""
        if not self._fitted:
            raise RuntimeError("intent estimator is not fitted")
        return {f"lda.{key}": value for key, value in self.lda.state_dict().items()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore state produced by :meth:`state_dict`."""
        self.lda.load_state_dict(
            {k[len("lda."):]: v for k, v in state.items() if k.startswith("lda.")}
        )
        self._fitted = True

    def topic_vector(self, table: Table) -> np.ndarray:
        """Infer the topic vector of one table."""
        if not self._fitted:
            raise RuntimeError("intent estimator is not fitted")
        return self.lda.transform(self.table_document(table))

    def topic_vector_from_tokens(self, tokens: Sequence[str]) -> np.ndarray:
        """Infer the topic vector from a pre-assembled table document.

        The streaming counterpart of :meth:`topic_vector`: the caller
        hands in the table's token prefix (its columns' token streams
        concatenated column by column, as :meth:`table_document` builds
        it), so a chunked ingest path produces bit-identical vectors to
        the in-memory path without materializing the table.
        """
        if not self._fitted:
            raise RuntimeError("intent estimator is not fitted")
        return self.lda.transform(list(tokens)[: self.max_tokens_per_table])

    def topic_vectors(self, tables: Sequence[Table]) -> np.ndarray:
        """Infer topic vectors for a sequence of tables."""
        if not tables:
            return np.zeros((0, self.n_topics))
        return np.stack([self.topic_vector(t) for t in tables])
