"""Topic interpretation analysis (Section 5.5 / Table 3).

For every topic we compute the average topic probability of each semantic
type (averaging the topic distributions of tables that contain the type),
rank types per topic, and score topics by *saliency* — the mean probability
of the top-k types — so that flat, uninformative topics sort last.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.tables import Table
from repro.topic.intent import TableIntentEstimator
from repro.types import NUM_TYPES, SEMANTIC_TYPES, TYPE_TO_INDEX

__all__ = [
    "TopicSummary",
    "topic_type_distribution",
    "topic_saliency",
    "top_salient_topics",
]


@dataclass
class TopicSummary:
    """One row of Table 3: a topic, its top types and its saliency."""

    topic: int
    saliency: float
    top_types: list[str]


def topic_type_distribution(
    estimator: TableIntentEstimator,
    tables: Sequence[Table],
    topic_vectors: np.ndarray | None = None,
) -> np.ndarray:
    """Average topic distribution per semantic type.

    Returns an ``(n_types, n_topics)`` matrix where row *t* is the mean topic
    vector of tables containing a column of type *t*.
    """
    if topic_vectors is None:
        topic_vectors = estimator.topic_vectors(list(tables))
    n_topics = topic_vectors.shape[1] if topic_vectors.size else estimator.n_topics
    sums = np.zeros((NUM_TYPES, n_topics), dtype=np.float64)
    counts = np.zeros(NUM_TYPES, dtype=np.float64)
    for table, vector in zip(tables, topic_vectors):
        present = {
            TYPE_TO_INDEX[c.semantic_type]
            for c in table.columns
            if c.semantic_type in TYPE_TO_INDEX
        }
        for index in present:
            sums[index] += vector
            counts[index] += 1
    counts[counts == 0] = 1.0
    return sums / counts[:, None]


def topic_saliency(type_topic: np.ndarray, k: int = 5) -> np.ndarray:
    """Saliency score per topic: mean probability of its top-k semantic types."""
    scores = np.zeros(type_topic.shape[1], dtype=np.float64)
    for topic in range(type_topic.shape[1]):
        column = type_topic[:, topic]
        top = np.sort(column)[-k:]
        scores[topic] = float(top.mean())
    return scores


def top_salient_topics(
    estimator: TableIntentEstimator,
    tables: Sequence[Table],
    n_topics: int = 5,
    k_types: int = 5,
    topic_vectors: np.ndarray | None = None,
) -> list[TopicSummary]:
    """Reproduce Table 3: the most salient topics with their top types."""
    type_topic = topic_type_distribution(estimator, tables, topic_vectors)
    saliency = topic_saliency(type_topic, k=k_types)
    order = np.argsort(-saliency)
    summaries = []
    for topic in order[:n_topics]:
        type_order = np.argsort(-type_topic[:, topic])
        top_types = [SEMANTIC_TYPES[i] for i in type_order[:k_types]]
        summaries.append(
            TopicSummary(topic=int(topic), saliency=float(saliency[topic]), top_types=top_types)
        )
    return summaries
