"""Topic modelling substrate: LDA and the table intent estimator.

Sato estimates a table's *intent* by treating all cell values of the table as
one document and running it through an LDA model pre-trained (unsupervised,
headers removed) on a table corpus.  The resulting fixed-length topic vector
is shared by all columns of the table and fed to the topic subnetwork of the
topic-aware model.
"""

from repro.topic.dictionary import Dictionary
from repro.topic.lda import LatentDirichletAllocation
from repro.topic.intent import TableIntentEstimator
from repro.topic.analysis import topic_saliency, topic_type_distribution, top_salient_topics

__all__ = [
    "Dictionary",
    "LatentDirichletAllocation",
    "TableIntentEstimator",
    "topic_saliency",
    "topic_type_distribution",
    "top_salient_topics",
]
