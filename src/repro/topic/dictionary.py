"""Bag-of-words dictionary for the LDA model (gensim-style)."""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

__all__ = ["Dictionary"]


class Dictionary:
    """Token <-> id mapping with document-frequency based filtering.

    Mirrors the part of ``gensim.corpora.Dictionary`` the paper relies on:
    building a vocabulary from "documents" (all values of a table) and
    converting documents to bag-of-words id lists.
    """

    def __init__(self, no_below: int = 2, no_above: float = 1.0, max_size: int | None = 20000) -> None:
        if no_below < 1:
            raise ValueError("no_below must be >= 1")
        if not 0.0 < no_above <= 1.0:
            raise ValueError("no_above must be in (0, 1]")
        self.no_below = no_below
        self.no_above = no_above
        self.max_size = max_size
        self.token_to_id: dict[str, int] = {}
        self.id_to_token: list[str] = []
        self._fitted = False

    def __len__(self) -> int:
        return len(self.id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self.token_to_id

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._fitted

    def fit(self, documents: Iterable[Sequence[str]]) -> "Dictionary":
        """Build the dictionary from tokenised documents."""
        documents = [list(d) for d in documents]
        n_docs = max(1, len(documents))
        document_frequency: Counter = Counter()
        for document in documents:
            document_frequency.update(set(document))
        kept = [
            (token, freq)
            for token, freq in document_frequency.items()
            if freq >= self.no_below and freq / n_docs <= self.no_above
        ]
        kept.sort(key=lambda kv: (-kv[1], kv[0]))
        if self.max_size is not None:
            kept = kept[: self.max_size]
        self.id_to_token = [token for token, _ in kept]
        self.token_to_id = {token: i for i, token in enumerate(self.id_to_token)}
        self._fitted = True
        return self

    @classmethod
    def from_tokens(
        cls,
        tokens: Sequence[str],
        no_below: int = 2,
        no_above: float = 1.0,
        max_size: int | None = 20000,
    ) -> "Dictionary":
        """Rebuild a fitted dictionary from an ordered token list.

        Used when restoring a persisted LDA model: the token order *is* the
        id assignment.
        """
        dictionary = cls(no_below=no_below, no_above=no_above, max_size=max_size)
        dictionary.id_to_token = [str(t) for t in tokens]
        dictionary.token_to_id = {
            token: i for i, token in enumerate(dictionary.id_to_token)
        }
        dictionary._fitted = True
        return dictionary

    def doc2ids(self, document: Sequence[str]) -> list[int]:
        """Convert a tokenised document to a list of token ids (OOV dropped)."""
        return [
            self.token_to_id[token]
            for token in document
            if token in self.token_to_id
        ]

    def doc2bow(self, document: Sequence[str]) -> list[tuple[int, int]]:
        """Convert a document to (token_id, count) pairs."""
        counts = Counter(self.doc2ids(document))
        return sorted(counts.items())
