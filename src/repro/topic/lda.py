"""Latent Dirichlet Allocation via collapsed Gibbs sampling.

This is the offline replacement for gensim's LDA: documents (tables) are
random mixtures of latent topics, topics are distributions over tokens, and
inference integrates out the multinomial parameters and samples topic
assignments directly.  Training keeps per-topic/token and per-document/topic
count matrices; inference for unseen documents runs a short Gibbs chain with
the topic-token counts frozen.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.topic.dictionary import Dictionary

__all__ = ["LatentDirichletAllocation"]


class LatentDirichletAllocation:
    """Collapsed-Gibbs LDA.

    Parameters
    ----------
    n_topics:
        Number of latent topics (the paper uses 400; tests use far fewer).
    alpha:
        Symmetric Dirichlet prior on the document-topic distribution.
    beta:
        Symmetric Dirichlet prior on the topic-token distribution.
    n_iterations:
        Gibbs sweeps over the corpus during :meth:`fit`.
    """

    def __init__(
        self,
        n_topics: int = 50,
        alpha: float | None = None,
        beta: float = 0.01,
        n_iterations: int = 30,
        infer_iterations: int = 15,
        seed: int = 0,
    ) -> None:
        if n_topics < 1:
            raise ValueError("n_topics must be positive")
        self.n_topics = n_topics
        # A sparse document-topic prior keeps the inferred table-intent
        # distributions peaky (tables express one or two intents, not a
        # smooth mixture of dozens), which makes the topic features far more
        # discriminative than the classic 50/K heuristic on short documents.
        self.alpha = alpha if alpha is not None else min(0.1, 5.0 / n_topics)
        self.beta = beta
        self.n_iterations = n_iterations
        self.infer_iterations = infer_iterations
        self.seed = seed
        self.dictionary: Dictionary | None = None
        self.topic_token_counts: np.ndarray | None = None
        self.topic_counts: np.ndarray | None = None
        self._fitted = False

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._fitted

    # -------------------------------------------------------------- training

    def fit(
        self,
        documents: Sequence[Sequence[str]],
        dictionary: Dictionary | None = None,
    ) -> "LatentDirichletAllocation":
        """Train the topic model on tokenised documents."""
        documents = [list(d) for d in documents]
        self.dictionary = dictionary or Dictionary().fit(documents)
        vocabulary_size = max(1, len(self.dictionary))
        rng = np.random.default_rng(self.seed)

        doc_tokens = [np.array(self.dictionary.doc2ids(d), dtype=np.int64) for d in documents]
        assignments = [
            rng.integers(0, self.n_topics, size=tokens.size) for tokens in doc_tokens
        ]

        topic_token = np.zeros((self.n_topics, vocabulary_size), dtype=np.float64)
        topic_totals = np.zeros(self.n_topics, dtype=np.float64)
        doc_topic = np.zeros((len(documents), self.n_topics), dtype=np.float64)
        for d, (tokens, topics) in enumerate(zip(doc_tokens, assignments)):
            for token, topic in zip(tokens, topics):
                topic_token[topic, token] += 1
                topic_totals[topic] += 1
                doc_topic[d, topic] += 1

        for _ in range(self.n_iterations):
            for d, (tokens, topics) in enumerate(zip(doc_tokens, assignments)):
                self._gibbs_sweep(
                    tokens, topics, doc_topic[d], topic_token, topic_totals,
                    vocabulary_size, rng, update_topics=True,
                )

        self.topic_token_counts = topic_token
        self.topic_counts = topic_totals
        self._fitted = True
        return self

    def _gibbs_sweep(
        self,
        tokens: np.ndarray,
        topics: np.ndarray,
        doc_topic_row: np.ndarray,
        topic_token: np.ndarray,
        topic_totals: np.ndarray,
        vocabulary_size: int,
        rng: np.random.Generator,
        update_topics: bool,
    ) -> None:
        beta_sum = self.beta * vocabulary_size
        for position in range(tokens.size):
            token = tokens[position]
            old_topic = topics[position]
            doc_topic_row[old_topic] -= 1
            if update_topics:
                topic_token[old_topic, token] -= 1
                topic_totals[old_topic] -= 1

            weights = (
                (topic_token[:, token] + self.beta)
                / (topic_totals + beta_sum)
                * (doc_topic_row + self.alpha)
            )
            weights_sum = weights.sum()
            if weights_sum <= 0 or not np.isfinite(weights_sum):
                new_topic = int(rng.integers(0, self.n_topics))
            else:
                new_topic = int(rng.choice(self.n_topics, p=weights / weights_sum))

            topics[position] = new_topic
            doc_topic_row[new_topic] += 1
            if update_topics:
                topic_token[new_topic, token] += 1
                topic_totals[new_topic] += 1

    # -------------------------------------------------------- serialisation

    def config_dict(self) -> dict:
        """JSON-serialisable constructor configuration."""
        return {
            "n_topics": self.n_topics,
            "alpha": self.alpha,
            "beta": self.beta,
            "n_iterations": self.n_iterations,
            "infer_iterations": self.infer_iterations,
            "seed": self.seed,
        }

    def state_dict(self) -> dict[str, np.ndarray]:
        """Serialisable fitted state: count matrices + dictionary order."""
        if not self._fitted:
            raise RuntimeError("LDA model is not fitted")
        assert self.dictionary is not None
        assert self.topic_token_counts is not None and self.topic_counts is not None
        return {
            "tokens": np.array(self.dictionary.id_to_token, dtype=np.str_),
            "topic_token_counts": self.topic_token_counts.copy(),
            "topic_counts": self.topic_counts.copy(),
        }

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore state produced by :meth:`state_dict`."""
        self.dictionary = Dictionary.from_tokens(state["tokens"].tolist())
        # Zero-copy: inference runs :meth:`_gibbs_sweep` with
        # ``update_topics=False``, which only *reads* the count matrices, so
        # they can safely be non-writeable shared-memory views (one copy of
        # the topic model for a whole serving fleet).
        self.topic_token_counts = np.asarray(
            state["topic_token_counts"], dtype=np.float64
        )
        self.topic_counts = np.asarray(state["topic_counts"], dtype=np.float64)
        self._fitted = True

    # ------------------------------------------------------------- inference

    def transform(self, document: Sequence[str]) -> np.ndarray:
        """Infer the topic distribution of one tokenised document."""
        if not self._fitted:
            raise RuntimeError("LDA model is not fitted")
        assert self.dictionary is not None
        assert self.topic_token_counts is not None and self.topic_counts is not None
        tokens = np.array(self.dictionary.doc2ids(document), dtype=np.int64)
        if tokens.size == 0:
            return np.full(self.n_topics, 1.0 / self.n_topics)
        rng = np.random.default_rng(self.seed + 1)
        topics = rng.integers(0, self.n_topics, size=tokens.size)
        doc_topic_row = np.zeros(self.n_topics, dtype=np.float64)
        for topic in topics:
            doc_topic_row[topic] += 1
        vocabulary_size = max(1, len(self.dictionary))
        # Average the document-topic counts over the second half of the
        # chain: a single final sweep is a high-variance sample, and that
        # variance would leak straight into the topic features.
        accumulated = np.zeros(self.n_topics, dtype=np.float64)
        n_accumulated = 0
        burn_in = max(1, self.infer_iterations // 2)
        for iteration in range(self.infer_iterations):
            self._gibbs_sweep(
                tokens, topics, doc_topic_row,
                self.topic_token_counts, self.topic_counts,
                vocabulary_size, rng, update_topics=False,
            )
            if iteration >= burn_in:
                accumulated += doc_topic_row
                n_accumulated += 1
        if n_accumulated == 0:
            accumulated, n_accumulated = doc_topic_row, 1
        distribution = accumulated / n_accumulated + self.alpha
        return distribution / distribution.sum()

    def transform_many(self, documents: Sequence[Sequence[str]]) -> np.ndarray:
        """Infer topic distributions for several documents."""
        return np.stack([self.transform(d) for d in documents]) if documents else (
            np.zeros((0, self.n_topics))
        )

    def topic_top_tokens(self, topic: int, k: int = 10) -> list[str]:
        """Most probable tokens of a topic."""
        if not self._fitted:
            raise RuntimeError("LDA model is not fitted")
        assert self.dictionary is not None and self.topic_token_counts is not None
        order = np.argsort(-self.topic_token_counts[topic])
        return [self.dictionary.id_to_token[i] for i in order[:k] if i < len(self.dictionary)]

    def topic_word_distribution(self) -> np.ndarray:
        """The (n_topics, vocabulary) topic-token probability matrix."""
        if not self._fitted:
            raise RuntimeError("LDA model is not fitted")
        assert self.topic_token_counts is not None
        counts = self.topic_token_counts + self.beta
        return counts / counts.sum(axis=1, keepdims=True)
