"""repro — a reproduction of "Sato: Contextual Semantic Type Detection in Tables".

The package re-implements, from scratch and offline, the full Sato pipeline
(VLDB 2020): a Sherlock-style single-column neural classifier, an LDA-based
table-intent estimator feeding a topic-aware model, and a linear-chain CRF
performing structured multi-column prediction — together with the synthetic
WebTables-style corpus, embedding substrate, evaluation harness and
benchmarks needed to regenerate every table and figure of the paper.

Quickstart::

    from repro import CorpusConfig, CorpusGenerator, SatoModel

    corpus = CorpusGenerator(CorpusConfig(n_tables=200, seed=1)).generate()
    train, test = corpus[:160], corpus[160:]
    model = SatoModel.full()
    model.fit(train)
    print(model.predict_table(test[0]))
"""

from repro.types import SEMANTIC_TYPES, NUM_TYPES, canonicalize_header
from repro.tables import Column, Table
from repro.corpus import CorpusConfig, CorpusGenerator, Dataset, generate_corpus
from repro.features import ColumnFeaturizer
from repro.topic import TableIntentEstimator
from repro.crf import LinearChainCRF
from repro.models import (
    AttentionColumnModel,
    SatoConfig,
    SatoModel,
    SherlockModel,
    TopicAwareModel,
    TrainingConfig,
)
from repro.evaluation import classification_report, evaluate_model_cv
from repro.serving import (
    MicroBatcher,
    Predictor,
    ServingServer,
    load_model,
    save_model,
    serve_in_thread,
)

__version__ = "1.3.0"

__all__ = [
    "SEMANTIC_TYPES",
    "NUM_TYPES",
    "canonicalize_header",
    "Column",
    "Table",
    "CorpusConfig",
    "CorpusGenerator",
    "Dataset",
    "generate_corpus",
    "ColumnFeaturizer",
    "TableIntentEstimator",
    "LinearChainCRF",
    "SherlockModel",
    "TopicAwareModel",
    "SatoModel",
    "SatoConfig",
    "TrainingConfig",
    "AttentionColumnModel",
    "classification_report",
    "evaluate_model_cv",
    "Predictor",
    "save_model",
    "load_model",
    "MicroBatcher",
    "ServingServer",
    "serve_in_thread",
    "__version__",
]
