"""Semantic type registry and header canonicalisation.

The paper (Section 4.1) considers 78 semantic types originating from the
T2Dv2 gold standard selection made for Sherlock.  Ground-truth labels are
obtained by converting column headers to a *canonical form*:

* content in parentheses is trimmed,
* the string is lower-cased,
* every word except the first is capitalised,
* the words are concatenated into a single camelCase string.

``'YEAR'``, ``'Year'`` and ``'year (first occurrence)'`` all canonicalise to
``'year'``; ``'birth place (country)'`` becomes ``'birthPlace'``.
"""

from __future__ import annotations

import re
from typing import Iterable

__all__ = [
    "SEMANTIC_TYPES",
    "NUM_TYPES",
    "TYPE_TO_INDEX",
    "INDEX_TO_TYPE",
    "canonicalize_header",
    "is_semantic_type",
    "type_index",
    "type_name",
    "UnknownSemanticTypeError",
]


class UnknownSemanticTypeError(KeyError):
    """Raised when a label is not one of the 78 supported semantic types."""


#: The 78 semantic types used by Sherlock and Sato (Figure 5 of the paper),
#: ordered roughly by their frequency in the WebTables sample so that the
#: head/tail structure of the registry mirrors the paper's figure.
SEMANTIC_TYPES: tuple[str, ...] = (
    "name",
    "description",
    "team",
    "type",
    "age",
    "location",
    "year",
    "city",
    "rank",
    "status",
    "state",
    "category",
    "weight",
    "code",
    "club",
    "artist",
    "result",
    "position",
    "country",
    "notes",
    "class",
    "company",
    "album",
    "symbol",
    "address",
    "duration",
    "format",
    "county",
    "day",
    "gender",
    "industry",
    "language",
    "sex",
    "product",
    "jockey",
    "region",
    "area",
    "service",
    "teamName",
    "order",
    "isbn",
    "fileSize",
    "grades",
    "publisher",
    "plays",
    "origin",
    "elevation",
    "affiliation",
    "component",
    "owner",
    "genre",
    "manufacturer",
    "brand",
    "family",
    "credit",
    "depth",
    "classification",
    "collection",
    "species",
    "command",
    "nationality",
    "currency",
    "range",
    "affiliate",
    "birthDate",
    "ranking",
    "capacity",
    "birthPlace",
    "person",
    "creator",
    "operator",
    "religion",
    "education",
    "requirement",
    "director",
    "sales",
    "continent",
    "organisation",
)

NUM_TYPES: int = len(SEMANTIC_TYPES)

TYPE_TO_INDEX: dict[str, int] = {name: i for i, name in enumerate(SEMANTIC_TYPES)}
INDEX_TO_TYPE: dict[int, str] = {i: name for i, name in enumerate(SEMANTIC_TYPES)}

_PAREN_RE = re.compile(r"\([^)]*\)")
_SPLIT_RE = re.compile(r"[^0-9a-zA-Z]+")


def canonicalize_header(header: str) -> str:
    """Convert a raw column header to the canonical camelCase form.

    The rules follow Section 4.1 of the paper: trim parenthesised content,
    lower-case, capitalise every word but the first, concatenate.

    >>> canonicalize_header('YEAR')
    'year'
    >>> canonicalize_header('year (first occurrence)')
    'year'
    >>> canonicalize_header('birth place (country)')
    'birthPlace'
    """
    if header is None:
        return ""
    text = _PAREN_RE.sub(" ", str(header))
    words = [w for w in _SPLIT_RE.split(text) if w]
    if not words:
        return ""
    words = [w.lower() for w in words]
    first, rest = words[0], words[1:]
    return first + "".join(w.capitalize() for w in rest)


def is_semantic_type(label: str) -> bool:
    """Return True when ``label`` is one of the 78 supported semantic types."""
    return label in TYPE_TO_INDEX


def type_index(label: str) -> int:
    """Return the class index of a semantic type label.

    Raises :class:`UnknownSemanticTypeError` for labels outside the registry.
    """
    try:
        return TYPE_TO_INDEX[label]
    except KeyError as exc:
        raise UnknownSemanticTypeError(label) from exc


def type_name(index: int) -> str:
    """Return the semantic type label for a class index."""
    try:
        return INDEX_TO_TYPE[int(index)]
    except KeyError as exc:
        raise UnknownSemanticTypeError(str(index)) from exc


def filter_supported(labels: Iterable[str]) -> list[str]:
    """Keep only the labels that are supported semantic types."""
    return [label for label in labels if label in TYPE_TO_INDEX]
