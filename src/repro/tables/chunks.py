"""Chunk-iterable tables: the bounded-memory streaming core.

A :class:`TableChunk` is a column-major slice of a table's rows; a
:class:`TableStream` is a table whose values arrive as an iterator of
chunks instead of an in-memory :class:`~repro.tables.Table`.  Everything
downstream that can consume a stream (the featurizer's ``fit_stream``,
the ingest annotator) sees each value exactly once, so a 10M-row column
is processed with memory proportional to ``chunk_rows``, not the row
count.

Chunking is *lossless*: re-materializing a stream yields a table whose
column values are identical to the source, and the accumulator-based
featurization of a stream is bit-identical to the full-scan path for
every chunk size (enforced by the streaming parity tests).

Examples:
    >>> from repro.tables import Table, table_stream
    >>> table = Table.from_rows([["oslo", "1"], ["rome", "2"]], headers=["city", "pop"])
    >>> stream = table_stream(table, chunk_rows=1)
    >>> [chunk.start_row for chunk in stream.chunks]
    [0, 1]
    >>> table_stream(table).materialize().columns[0].values
    ['oslo', 'rome']
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.tables.table import Column, Table

__all__ = [
    "TableChunk",
    "TableStream",
    "iter_table_chunks",
    "table_stream",
    "stream_tables",
]

#: Default number of rows per chunk for streaming sources.
DEFAULT_CHUNK_ROWS = 4096


@dataclass(frozen=True)
class TableChunk:
    """A column-major slice of contiguous table rows.

    ``columns[i]`` holds column *i*'s values for rows
    ``[start_row, start_row + n_rows)``.  Ragged tables are allowed: a
    column shorter than the chunk span contributes fewer values (its
    missing tail is *absent*, not padded, so re-materializing a stream
    reproduces the source column exactly).
    """

    columns: tuple[tuple[str, ...], ...]
    start_row: int = 0

    @property
    def n_columns(self) -> int:
        """Number of columns in the chunk."""
        return len(self.columns)

    @property
    def n_rows(self) -> int:
        """Row span of the chunk (the longest column slice)."""
        return max((len(values) for values in self.columns), default=0)


@dataclass
class TableStream:
    """A table whose values arrive as an iterator of :class:`TableChunk`.

    ``headers`` fixes the column count up front (streaming sources must
    know their schema before the first chunk); ``chunks`` yields
    row-ordered, contiguous chunks starting at row 0.  The stream is
    single-use: consuming ``chunks`` exhausts it.
    """

    headers: tuple[str | None, ...]
    chunks: Iterator[TableChunk]
    table_id: str | None = None
    metadata: dict = field(default_factory=dict)

    @property
    def n_columns(self) -> int:
        """Number of columns in the stream."""
        return len(self.headers)

    def materialize(self) -> Table:
        """Consume the stream into an in-memory :class:`Table`.

        Intended for tests and small sources; defeats the bounded-memory
        purpose for large ones.
        """
        values: list[list[str]] = [[] for _ in self.headers]
        for chunk in self.chunks:
            if chunk.n_columns != self.n_columns:
                raise ValueError(
                    f"chunk has {chunk.n_columns} columns, stream declared "
                    f"{self.n_columns}"
                )
            for column_values, chunk_values in zip(values, chunk.columns):
                column_values.extend(chunk_values)
        columns = [
            Column(values=column_values, header=header)
            for header, column_values in zip(self.headers, values)
        ]
        return Table(columns=columns, table_id=self.table_id, metadata=self.metadata)


def iter_table_chunks(
    table: Table, chunk_rows: int = DEFAULT_CHUNK_ROWS
) -> Iterator[TableChunk]:
    """Yield an in-memory table as row-ordered :class:`TableChunk` slices."""
    if chunk_rows < 1:
        raise ValueError("chunk_rows must be >= 1")
    n_rows = table.n_rows
    if n_rows == 0:
        return
    for start in range(0, n_rows, chunk_rows):
        yield TableChunk(
            columns=tuple(
                tuple(column.values[start : start + chunk_rows])
                for column in table.columns
            ),
            start_row=start,
        )


def table_stream(table: Table, chunk_rows: int | None = None) -> TableStream:
    """Wrap an in-memory table as a :class:`TableStream`.

    With ``chunk_rows=None`` the whole table arrives as one chunk (the
    full-scan path); otherwise it is sliced into ``chunk_rows``-row
    chunks.
    """
    rows = chunk_rows if chunk_rows is not None else max(1, table.n_rows)
    return TableStream(
        headers=tuple(column.header for column in table.columns),
        chunks=iter_table_chunks(table, rows),
        table_id=table.table_id,
        metadata=dict(table.metadata),
    )


def stream_tables(
    tables: Sequence[Table] | Iterable[Table], chunk_rows: int | None = None
) -> Iterator[TableStream]:
    """Yield a :class:`TableStream` per table (see :func:`table_stream`)."""
    for table in tables:
        yield table_stream(table, chunk_rows)
