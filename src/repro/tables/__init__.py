"""Table data model and I/O.

The :class:`~repro.tables.table.Table` and :class:`~repro.tables.table.Column`
classes are the fundamental objects flowing through the library: the corpus
generator produces them, feature extractors consume them, and the models
predict one semantic type per column.  For bounded-memory processing of
large sources, :mod:`repro.tables.chunks` provides the chunk-iterable view
(:class:`TableChunk` / :class:`TableStream`) consumed by the streaming
featurization path and the ingest adapters.
"""

from repro.tables.table import Column, Table
from repro.tables.chunks import (
    TableChunk,
    TableStream,
    iter_table_chunks,
    stream_tables,
    table_stream,
)
from repro.tables.io import (
    table_from_csv,
    table_to_csv,
    tables_from_jsonl,
    tables_to_jsonl,
)

__all__ = [
    "Column",
    "Table",
    "TableChunk",
    "TableStream",
    "iter_table_chunks",
    "stream_tables",
    "table_stream",
    "table_from_csv",
    "table_to_csv",
    "tables_from_jsonl",
    "tables_to_jsonl",
]
