"""Core table data model.

A :class:`Table` is an ordered collection of :class:`Column` objects.  Cell
values are always stored as strings (numbers are stringified), mirroring how
WebTables data arrives: headers are untrusted metadata used only to derive
ground-truth labels, never as model input.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.types import canonicalize_header, is_semantic_type

__all__ = ["Column", "Table"]


@dataclass
class Column:
    """A single table column.

    Parameters
    ----------
    values:
        Cell values, stored as strings.  Missing cells are empty strings.
    header:
        The raw header text, if any.  Headers are never used as model input;
        they only provide ground-truth semantic type labels.
    semantic_type:
        The ground-truth semantic type label (canonical form), when known.
    """

    values: list[str]
    header: str | None = None
    semantic_type: str | None = None

    def __post_init__(self) -> None:
        self.values = ["" if v is None else str(v) for v in self.values]
        if self.semantic_type is None and self.header is not None:
            canonical = canonicalize_header(self.header)
            if is_semantic_type(canonical):
                self.semantic_type = canonical

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[str]:
        return iter(self.values)

    @property
    def non_empty_values(self) -> list[str]:
        """Values that are not missing (empty or whitespace-only)."""
        return [v for v in self.values if v.strip()]

    @property
    def has_label(self) -> bool:
        """Whether a ground-truth semantic type is attached."""
        return self.semantic_type is not None

    def head(self, n: int = 5) -> list[str]:
        """Return the first ``n`` values."""
        return self.values[:n]

    def to_dict(self) -> dict:
        """Serialise to a plain dictionary (for JSON)."""
        return {
            "values": list(self.values),
            "header": self.header,
            "semantic_type": self.semantic_type,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Column":
        """Deserialise from :meth:`to_dict` output."""
        return cls(
            values=list(payload.get("values", [])),
            header=payload.get("header"),
            semantic_type=payload.get("semantic_type"),
        )


@dataclass
class Table:
    """An ordered collection of columns with an optional identifier."""

    columns: list[Column]
    table_id: str | None = None
    metadata: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __getitem__(self, index: int) -> Column:
        return self.columns[index]

    @property
    def n_columns(self) -> int:
        """Number of columns."""
        return len(self.columns)

    @property
    def n_rows(self) -> int:
        """Number of rows (length of the longest column)."""
        if not self.columns:
            return 0
        return max(len(column) for column in self.columns)

    @property
    def is_singleton(self) -> bool:
        """True when the table has a single column (no table context)."""
        return len(self.columns) == 1

    @property
    def labels(self) -> list[str | None]:
        """Ground-truth semantic types of the columns, in order."""
        return [column.semantic_type for column in self.columns]

    @property
    def is_fully_labeled(self) -> bool:
        """True when every column carries a ground-truth semantic type."""
        return bool(self.columns) and all(c.has_label for c in self.columns)

    def all_values(self) -> list[str]:
        """All non-missing cell values of the table, column by column.

        This is the "global context" (table values) used by the table intent
        estimator: the whole table is treated as one document.
        """
        values: list[str] = []
        for column in self.columns:
            values.extend(column.non_empty_values)
        return values

    def rows(self) -> list[list[str]]:
        """Return the table in row-major order, padding ragged columns."""
        n_rows = self.n_rows
        return [
            [
                column.values[r] if r < len(column.values) else ""
                for column in self.columns
            ]
            for r in range(n_rows)
        ]

    def iter_chunks(self, chunk_rows: int = 4096):
        """Yield the table as row-ordered, column-major value chunks.

        See :func:`repro.tables.chunks.iter_table_chunks`.
        """
        from repro.tables.chunks import iter_table_chunks

        return iter_table_chunks(self, chunk_rows)

    def as_stream(self, chunk_rows: int | None = None):
        """Wrap the table as a single-use :class:`~repro.tables.TableStream`.

        With ``chunk_rows=None`` the whole table arrives as one chunk.
        """
        from repro.tables.chunks import table_stream

        return table_stream(self, chunk_rows)

    def without_headers(self) -> "Table":
        """Return a copy with header and label metadata removed.

        Used to build the unsupervised LDA training set: topic models must be
        trained on values only (Section 4.2).
        """
        return Table(
            columns=[Column(values=list(c.values)) for c in self.columns],
            table_id=self.table_id,
            metadata=dict(self.metadata),
        )

    def to_dict(self) -> dict:
        """Serialise to a plain dictionary (for JSON)."""
        return {
            "table_id": self.table_id,
            "metadata": dict(self.metadata),
            "columns": [column.to_dict() for column in self.columns],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Table":
        """Deserialise from :meth:`to_dict` output."""
        return cls(
            columns=[Column.from_dict(c) for c in payload.get("columns", [])],
            table_id=payload.get("table_id"),
            metadata=dict(payload.get("metadata", {})),
        )

    @classmethod
    def from_rows(
        cls,
        rows: Sequence[Sequence[str]],
        headers: Sequence[str] | None = None,
        table_id: str | None = None,
    ) -> "Table":
        """Build a table from row-major data."""
        if not rows:
            columns = [Column(values=[], header=h) for h in (headers or [])]
            return cls(columns=columns, table_id=table_id)
        n_cols = max(len(row) for row in rows)
        columns = []
        for j in range(n_cols):
            values = [str(row[j]) if j < len(row) else "" for row in rows]
            header = headers[j] if headers is not None and j < len(headers) else None
            columns.append(Column(values=values, header=header))
        return cls(columns=columns, table_id=table_id)

    @classmethod
    def from_columns(
        cls,
        value_lists: Iterable[Sequence[str]],
        headers: Sequence[str] | None = None,
        table_id: str | None = None,
    ) -> "Table":
        """Build a table from column-major data."""
        columns = []
        for j, values in enumerate(value_lists):
            header = headers[j] if headers is not None and j < len(headers) else None
            columns.append(Column(values=[str(v) for v in values], header=header))
        return cls(columns=columns, table_id=table_id)
