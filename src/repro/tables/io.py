"""CSV and JSONL persistence for tables.

JSONL (one table per line) is the corpus interchange format: it is compact,
streamable and keeps ground-truth labels alongside values.  CSV round-trips a
single table the way a user would hand one to the model.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Iterator

from repro.tables.table import Table

__all__ = [
    "table_from_csv",
    "table_to_csv",
    "tables_from_jsonl",
    "tables_to_jsonl",
    "iter_tables_from_jsonl",
]


def table_from_csv(
    path: str | Path,
    has_header: bool = True,
    table_id: str | None = None,
) -> Table:
    """Load a single table from a CSV file.

    Parameters
    ----------
    path:
        CSV file path.
    has_header:
        When True the first row is treated as headers (used only for labels).
    """
    path = Path(path)
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        rows = [row for row in reader]
    if not rows:
        return Table(columns=[], table_id=table_id or path.stem)
    headers = rows[0] if has_header else None
    data_rows = rows[1:] if has_header else rows
    return Table.from_rows(data_rows, headers=headers, table_id=table_id or path.stem)


def table_to_csv(table: Table, path: str | Path, write_header: bool = True) -> None:
    """Write a table to CSV, optionally with its headers as the first row."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        if write_header:
            writer.writerow(
                [c.header or c.semantic_type or f"col{i}" for i, c in enumerate(table.columns)]
            )
        for row in table.rows():
            writer.writerow(row)


def tables_to_jsonl(tables: Iterable[Table], path: str | Path) -> int:
    """Write tables as JSON lines.  Returns the number of tables written."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for table in tables:
            handle.write(json.dumps(table.to_dict(), ensure_ascii=False))
            handle.write("\n")
            count += 1
    return count


def iter_tables_from_jsonl(path: str | Path) -> Iterator[Table]:
    """Lazily iterate over tables stored as JSON lines."""
    path = Path(path)
    with path.open(encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            yield Table.from_dict(json.loads(line))


def tables_from_jsonl(path: str | Path) -> list[Table]:
    """Load all tables from a JSONL file into memory."""
    return list(iter_tables_from_jsonl(path))
