"""SQLite source adapter (stdlib :mod:`sqlite3`, read-only).

Every user table in the database becomes one stream, in sorted name
order.  Rows are fetched ``chunk_rows`` at a time, so memory stays
bounded for million-row tables.  SQLite's type affinities map to the
string cell model as: ``NULL`` -> missing cell (empty string),
``INTEGER``/``REAL`` -> ``str()`` of the Python number (``7``, ``1.5``),
``TEXT`` -> the text itself, ``BLOB`` -> UTF-8 decode with replacement.
"""

from __future__ import annotations

import sqlite3
from pathlib import Path
from typing import Iterator

from repro.ingest.base import (
    DEFAULT_CHUNK_ROWS,
    IngestError,
    SourceAdapter,
    register_adapter,
)
from repro.tables import Table, TableChunk, TableStream

__all__ = ["SqliteAdapter"]


def _cell(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, bytes):
        return value.decode("utf-8", errors="replace")
    return str(value)


def _connect(path: Path) -> sqlite3.Connection:
    try:
        return sqlite3.connect(f"file:{path}?mode=ro", uri=True)
    except sqlite3.Error as exc:
        raise IngestError(f"cannot open database: {exc}", source=path) from exc


@register_adapter
class SqliteAdapter(SourceAdapter):
    """One stream per user table in a ``.sqlite``/``.db`` file."""

    name = "sqlite"
    suffixes = (".sqlite", ".sqlite3", ".db")

    def _table_names(self, path: Path) -> list[str]:
        connection = _connect(path)
        try:
            rows = connection.execute(
                "SELECT name FROM sqlite_master "
                "WHERE type = 'table' AND name NOT LIKE 'sqlite_%' "
                "ORDER BY name"
            ).fetchall()
        except sqlite3.Error as exc:
            raise IngestError(f"not a SQLite database: {exc}", source=path) from exc
        finally:
            connection.close()
        return [row[0] for row in rows]

    def streams(
        self, path: str | Path, chunk_rows: int = DEFAULT_CHUNK_ROWS
    ) -> Iterator[TableStream]:
        path = Path(path)
        if not path.is_file():
            raise IngestError("source does not exist", source=path)
        for table_name in self._table_names(path):
            yield self._stream_table(path, table_name, chunk_rows)

    def _stream_table(
        self, path: Path, table_name: str, chunk_rows: int
    ) -> TableStream:
        connection = _connect(path)
        quoted = table_name.replace('"', '""')
        try:
            cursor = connection.execute(f'SELECT * FROM "{quoted}"')
        except sqlite3.Error as exc:
            connection.close()
            raise IngestError(
                f"cannot read table {table_name!r}: {exc}", source=path
            ) from exc
        headers = tuple(description[0] for description in cursor.description)

        def chunks() -> Iterator[TableChunk]:
            try:
                start_row = 0
                while True:
                    rows = cursor.fetchmany(chunk_rows)
                    if not rows:
                        break
                    yield TableChunk(
                        columns=tuple(
                            tuple(_cell(row[j]) for row in rows)
                            for j in range(len(headers))
                        ),
                        start_row=start_row,
                    )
                    start_row += len(rows)
            except sqlite3.Error as exc:
                raise IngestError(
                    f"error reading table {table_name!r}: {exc}", source=path
                ) from exc
            finally:
                connection.close()

        return TableStream(
            headers=headers,
            chunks=chunks(),
            table_id=f"{path.stem}.{table_name}",
            metadata={"source": str(path), "format": self.name, "table": table_name},
        )

    def write_fixture(self, table: Table, path: str | Path) -> Path:
        path = Path(path)
        headers = [
            column.header if column.header is not None else f"col{i}"
            for i, column in enumerate(table.columns)
        ]
        quoted = ", ".join('"{}" TEXT'.format(h.replace('"', '""')) for h in headers)
        placeholders = ", ".join("?" for _ in headers)
        connection = sqlite3.connect(path)
        try:
            connection.execute(f"CREATE TABLE data ({quoted})")
            connection.executemany(
                f"INSERT INTO data VALUES ({placeholders})", table.rows()
            )
            connection.commit()
        finally:
            connection.close()
        return path
