"""Streaming bulk annotation: typed schemas out of chunked sources.

:class:`StreamingAnnotator` drives a fitted
:class:`~repro.models.SatoModel` over :class:`~repro.tables.TableStream`
sources in bounded memory: each column folds into one
:class:`~repro.features.ColumnAccumulator` as chunks arrive, and only the
*finalized* per-column features (plus the capped table-document token
prefix for the topic model) ever exist at once.  The resulting
predictions are bit-identical to loading the whole table in memory and
predicting through the loop-backend reference path — enforced by the
streaming parity tests.
"""

from __future__ import annotations

import numpy as np

from repro.ingest.base import DEFAULT_CHUNK_ROWS, IngestError, open_source
from repro.tables import TableStream
from repro.types import TYPE_TO_INDEX

__all__ = ["StreamingAnnotator"]


class StreamingAnnotator:
    """Annotates chunked table streams with predicted semantic types.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.models.SatoModel` (any variant).  Topic
        variants reconstruct the table-intent document from the per-column
        token accumulators, so no variant needs the materialized table.
    """

    def __init__(self, model) -> None:
        if model.column_model.network is None:
            raise RuntimeError("StreamingAnnotator requires a fitted model")
        self.model = model
        self.featurizer = model.column_model.featurizer
        self.intent = getattr(model.column_model, "intent_estimator", None)
        token_cap = self.featurizer.max_tokens_per_column
        if self.intent is not None:
            token_cap = max(token_cap, self.intent.max_tokens_per_table)
        self._token_cap = token_cap

    def annotate_stream(self, stream: TableStream) -> dict:
        """Consume one stream and return its typed-schema record.

        The record is JSON-serialisable: table identity, row/column
        counts, and per column the header, predicted semantic type and
        the model's (structured, when the CRF is active) confidence.
        """
        accumulators = [
            self.featurizer.column_accumulator(self._token_cap)
            for _ in range(stream.n_columns)
        ]
        n_rows = 0
        for chunk in stream.chunks:
            if chunk.n_columns != len(accumulators):
                raise IngestError(
                    f"chunk has {chunk.n_columns} columns, stream declared "
                    f"{len(accumulators)}",
                    source=stream.metadata.get("source"),
                )
            row_span = chunk.n_rows
            for accumulator, values in zip(accumulators, chunk.columns):
                accumulator.partial_fit(
                    values, start_row=chunk.start_row, row_span=row_span
                )
            n_rows = max(n_rows, chunk.start_row + row_span)

        record = {
            "table_id": stream.table_id,
            "source": stream.metadata.get("source"),
            "n_rows": n_rows,
            "n_columns": len(accumulators),
            "columns": [],
        }
        if not accumulators:
            return record

        features = self.featurizer.finalize_columns(accumulators)
        topics = None
        if self.intent is not None:
            document: list[str] = []
            for accumulator in accumulators:
                document.extend(accumulator.token_list())
                if len(document) >= self.intent.max_tokens_per_table:
                    break
            vector = self.intent.topic_vector_from_tokens(document)
            topics = np.tile(vector, (features.shape[0], 1))
        probabilities = self.model.column_model.predict_proba_matrix(features, topics)
        marginals = self.model.marginals_from_proba(probabilities)
        labels = self.model.labels_from_proba(probabilities)
        for index, label in enumerate(labels):
            confidence = float(marginals[index, TYPE_TO_INDEX[label]])
            record["columns"].append(
                {
                    "index": index,
                    "header": stream.headers[index],
                    "predicted_type": label,
                    "confidence": round(confidence, 6),
                }
            )
        return record

    def annotate_source(
        self,
        path,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        format: str | None = None,
    ):
        """Yield one record per table stream under a file or directory."""
        for stream in open_source(path, chunk_rows, format):
            yield self.annotate_stream(stream)
