"""Streaming bulk annotation: typed schemas out of chunked sources.

:class:`StreamingAnnotator` drives a fitted
:class:`~repro.models.SatoModel` over :class:`~repro.tables.TableStream`
sources in bounded memory: each column folds into one
:class:`~repro.features.ColumnAccumulator` as chunks arrive, and only the
*finalized* per-column features (plus the capped table-document token
prefix for the topic model) ever exist at once.  The resulting
predictions are bit-identical to loading the whole table in memory and
predicting through the loop-backend reference path — enforced by the
streaming parity tests.

With a :class:`~repro.features.sketchstore.SketchStore` attached, the
annotator becomes *incremental*: every column is fingerprinted as its
chunks stream through, and columns whose fingerprint + featurizer config
hit the store skip featurization entirely — their stored raw row and
token prefix are bit-identical to what a recomputation would produce, so
the parity contract is unchanged.  Table-topic vectors are cached the
same way, keyed by the table fingerprint, which removes LDA inference
(the most expensive per-table step) from repeat traffic.
"""

from __future__ import annotations

import numpy as np

from repro.ingest.base import DEFAULT_CHUNK_ROWS, IngestError, open_source
from repro.tables import TableStream
from repro.types import TYPE_TO_INDEX

__all__ = ["StreamingAnnotator"]


class StreamingAnnotator:
    """Annotates chunked table streams with predicted semantic types.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.models.SatoModel` (any variant).  Topic
        variants reconstruct the table-intent document from the per-column
        token accumulators, so no variant needs the materialized table.
    sketch_store:
        Optional :class:`~repro.features.sketchstore.SketchStore` (or a
        store directory path) of persisted column sketches.  Hits skip
        featurization and topic inference with bit-identical output;
        misses are computed and written back, warming the store for the
        next run.
    sample_rows:
        Bounded-sample dial: featurize store misses from each column's
        first N values only.  Fingerprints always cover the full
        content, so sampled and unsampled sketches never mix.  This
        trades accuracy for speed on huge columns; the sketch benchmark
        reports the measured trade-off.
    """

    def __init__(
        self, model, sketch_store=None, sample_rows: int | None = None
    ) -> None:
        if model.column_model.network is None:
            raise RuntimeError("StreamingAnnotator requires a fitted model")
        if sample_rows is not None and sample_rows < 1:
            raise ValueError("sample_rows must be >= 1")
        self.model = model
        self.featurizer = model.column_model.featurizer
        self.intent = getattr(model.column_model, "intent_estimator", None)
        token_cap = self.featurizer.max_tokens_per_column
        if self.intent is not None:
            token_cap = max(token_cap, self.intent.max_tokens_per_table)
        self._token_cap = token_cap
        self.sample_rows = sample_rows
        from repro.features.sketchstore import open_store

        self.sketch_store, self._owns_store = open_store(sketch_store)
        self._column_section: str | None = None
        self._topic_section: str | None = None

    def close(self) -> None:
        """Close the sketch store if this annotator opened it from a path."""
        if self._owns_store and self.sketch_store is not None:
            self.sketch_store.close()

    # -------------------------------------------------------- sketch plumbing

    def _sections(self) -> tuple[str, str | None]:
        """Resolve (lazily, once) the store sections this model writes."""
        from repro.features import sketchstore

        if self._column_section is None:
            self._column_section = self.sketch_store.section(
                sketchstore.column_section_config(
                    self.featurizer,
                    producer="accumulator",
                    token_cap=self._token_cap,
                    sample_rows=self.sample_rows,
                )
            )
            if self.intent is not None:
                self._topic_section = self.sketch_store.section(
                    sketchstore.topic_section_config(
                        self.intent, sample_rows=self.sample_rows
                    )
                )
        return self._column_section, self._topic_section

    # --------------------------------------------------------------- annotate

    def annotate_stream(self, stream: TableStream) -> dict:
        """Consume one stream and return its typed-schema record.

        The record is JSON-serialisable: table identity, row/column
        counts, and per column the header, predicted semantic type and
        the model's (structured, when the CRF is active) confidence.
        """
        if self.sketch_store is None and self.sample_rows is None:
            return self._annotate_stream_eager(stream)
        return self._annotate_stream_sketched(stream)

    def _annotate_stream_eager(self, stream: TableStream) -> dict:
        accumulators = [
            self.featurizer.column_accumulator(self._token_cap)
            for _ in range(stream.n_columns)
        ]
        n_rows = 0
        for chunk in stream.chunks:
            if chunk.n_columns != len(accumulators):
                raise IngestError(
                    f"chunk has {chunk.n_columns} columns, stream declared "
                    f"{len(accumulators)}",
                    source=stream.metadata.get("source"),
                )
            row_span = chunk.n_rows
            for accumulator, values in zip(accumulators, chunk.columns):
                accumulator.partial_fit(
                    values, start_row=chunk.start_row, row_span=row_span
                )
            n_rows = max(n_rows, chunk.start_row + row_span)

        record = self._record_header(stream, n_rows, len(accumulators))
        if not accumulators:
            return record

        features = self.featurizer.finalize_columns(accumulators)
        topics = None
        if self.intent is not None:
            document = self._document(
                accumulator.token_list() for accumulator in accumulators
            )
            vector = self.intent.topic_vector_from_tokens(document)
            topics = np.tile(vector, (features.shape[0], 1))
        return self._finish_record(record, stream, features, topics)

    def _annotate_stream_sketched(self, stream: TableStream) -> dict:
        from repro.features import sketchstore

        sketcher = sketchstore.StreamSketcher(
            self.featurizer,
            stream.n_columns,
            token_cap=self._token_cap,
            sample_rows=self.sample_rows,
        )
        for chunk in stream.chunks:
            if chunk.n_columns != sketcher.n_columns:
                raise IngestError(
                    f"chunk has {chunk.n_columns} columns, stream declared "
                    f"{sketcher.n_columns}",
                    source=stream.metadata.get("source"),
                )
            sketcher.feed(chunk)

        record = self._record_header(stream, sketcher.n_rows, stream.n_columns)
        if not stream.n_columns:
            return record

        store = self.sketch_store
        column_section = topic_section = None
        if store is not None:
            column_section, topic_section = self._sections()
        fingerprints = sketcher.fingerprints()
        raw_rows: list[np.ndarray] = []
        column_tokens: list[list[str]] = []
        for index, fingerprint in enumerate(fingerprints):
            row = tokens = None
            if store is not None and not sketcher.flushed:
                sketch = store.get(column_section, fingerprint)
                row = sketchstore.sketch_row(sketch, self.featurizer.n_features)
                tokens = sketchstore.sketch_tokens(sketch)
            if row is None or tokens is None:
                accumulator = sketcher.accumulator(index)
                row = self.featurizer.raw_from_accumulator(accumulator)
                tokens = accumulator.token_list()
                if store is not None:
                    store.put(
                        column_section,
                        fingerprint,
                        sketchstore.column_sketch(
                            self.featurizer,
                            accumulator,
                            sketcher.n_rows,
                            row=row,
                        ),
                    )
            raw_rows.append(row)
            column_tokens.append(tokens)

        features = self.featurizer.standardize_matrix(np.stack(raw_rows))
        topics = None
        if self.intent is not None:
            vector = None
            table_key = None
            if store is not None:
                table_key = sketchstore.combine_fingerprints(fingerprints)
                vector = sketchstore.topic_vector_from_sketch(
                    store.get(topic_section, table_key), self.intent.n_topics
                )
            if vector is None:
                document = self._document(column_tokens)
                vector = self.intent.topic_vector_from_tokens(document)
                if store is not None:
                    store.put(topic_section, table_key, {"topic": vector.tolist()})
            topics = np.tile(vector, (features.shape[0], 1))
        return self._finish_record(record, stream, features, topics)

    # -------------------------------------------------------------- record io

    @staticmethod
    def _record_header(stream: TableStream, n_rows: int, n_columns: int) -> dict:
        return {
            "table_id": stream.table_id,
            "source": stream.metadata.get("source"),
            "n_rows": n_rows,
            "n_columns": n_columns,
            "columns": [],
        }

    def _document(self, per_column_tokens) -> list[str]:
        """Assemble the capped table document from per-column token prefixes."""
        document: list[str] = []
        for tokens in per_column_tokens:
            document.extend(tokens)
            if len(document) >= self.intent.max_tokens_per_table:
                break
        return document

    def _finish_record(self, record, stream, features, topics) -> dict:
        probabilities = self.model.column_model.predict_proba_matrix(features, topics)
        marginals = self.model.marginals_from_proba(probabilities)
        labels = self.model.labels_from_proba(probabilities)
        for index, label in enumerate(labels):
            confidence = float(marginals[index, TYPE_TO_INDEX[label]])
            record["columns"].append(
                {
                    "index": index,
                    "header": stream.headers[index],
                    "predicted_type": label,
                    "confidence": round(confidence, 6),
                }
            )
        return record

    def annotate_source(
        self,
        path,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        format: str | None = None,
    ):
        """Yield one record per table stream under a file or directory."""
        for stream in open_source(path, chunk_rows, format):
            yield self.annotate_stream(stream)
