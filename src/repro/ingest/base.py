"""The source adapter protocol and registry.

A :class:`SourceAdapter` turns one external data source (a CSV file, an
NDJSON file, a SQLite database, ...) into :class:`~repro.tables.TableStream`
objects whose chunks are bounded in memory.  Concrete adapters register
themselves with :func:`register_adapter`; :func:`discover_sources` maps a
path (file or directory) to ``(path, adapter)`` pairs and
:func:`open_source` yields the streams themselves.

All ingestion failures surface as :class:`IngestError` with the offending
source path in the message — callers get one clear error per source, never
a raw parser traceback.

Examples:
    >>> from repro.ingest import registered_adapters
    >>> sorted(registered_adapters())
    ['csv', 'ndjson', 'parquet', 'sqlite', 'tables-jsonl']
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

from repro.tables import Table, TableStream
from repro.tables.chunks import DEFAULT_CHUNK_ROWS

__all__ = [
    "DEFAULT_CHUNK_ROWS",
    "IngestError",
    "SourceAdapter",
    "register_adapter",
    "registered_adapters",
    "adapter_for",
    "discover_sources",
    "open_source",
]


class IngestError(Exception):
    """A data source could not be ingested.

    Raised (never a parser traceback) for every failure mode: missing or
    unreadable files, malformed content, unsupported formats.  The source
    path is folded into the message and kept on ``.source``.
    """

    def __init__(self, message: str, source: str | Path | None = None) -> None:
        if source is not None:
            message = f"{source}: {message}"
        super().__init__(message)
        self.source = str(source) if source is not None else None


class SourceAdapter:
    """Base class for ingestion adapters.

    Subclasses set ``name`` and ``suffixes`` and implement
    :meth:`streams`; :meth:`write_fixture` is the inverse used by the
    round-trip tests (and anything that needs to emit a sample source).
    """

    #: Registry key and ``--format`` spelling.
    name: str = ""
    #: Lower-case file suffixes this adapter claims.
    suffixes: tuple[str, ...] = ()

    @property
    def available(self) -> bool:
        """Whether the adapter's backing parser is importable."""
        return True

    def can_ingest(self, path: Path) -> bool:
        """Whether this adapter claims ``path`` (by suffix, on files)."""
        return path.is_file() and path.suffix.lower() in self.suffixes

    def streams(
        self, path: str | Path, chunk_rows: int = DEFAULT_CHUNK_ROWS
    ) -> Iterator[TableStream]:
        """Yield one :class:`TableStream` per table in the source."""
        raise NotImplementedError

    def write_fixture(self, table: Table, path: str | Path) -> Path:
        """Write ``table`` as a source this adapter can re-ingest."""
        raise NotImplementedError


_REGISTRY: dict[str, SourceAdapter] = {}


def register_adapter(cls: type) -> type:
    """Class decorator: instantiate and register an adapter under its name."""
    adapter = cls()
    if not adapter.name:
        raise ValueError(f"{cls.__name__} must set a non-empty name")
    _REGISTRY[adapter.name] = adapter
    return cls


def registered_adapters() -> dict[str, SourceAdapter]:
    """Snapshot of the adapter registry (name -> adapter instance)."""
    return dict(_REGISTRY)


def adapter_for(path: str | Path, format: str | None = None) -> SourceAdapter:
    """Resolve the adapter for a source file.

    ``format`` forces a registered adapter by name; otherwise the file
    suffix decides.
    """
    path = Path(path)
    if format is not None:
        try:
            return _REGISTRY[format]
        except KeyError:
            known = ", ".join(sorted(_REGISTRY))
            raise IngestError(
                f"unknown format {format!r} (known formats: {known})", source=path
            ) from None
    for adapter in _REGISTRY.values():
        if adapter.can_ingest(path):
            return adapter
    known = ", ".join(
        sorted(suffix for adapter in _REGISTRY.values() for suffix in adapter.suffixes)
    )
    raise IngestError(
        f"no adapter recognises this source (known suffixes: {known})", source=path
    )


def discover_sources(
    path: str | Path, format: str | None = None
) -> list[tuple[Path, SourceAdapter]]:
    """Map a file or directory to ``(file, adapter)`` pairs.

    Directories are walked recursively in sorted order (deterministic
    output ordering); files with unrecognised suffixes are skipped.  A
    single-file path with an unrecognised suffix is an error — pointing
    the tool at one specific file that cannot be read deserves a
    complaint, a stray file in a directory does not.
    """
    path = Path(path)
    if not path.exists():
        raise IngestError("source does not exist", source=path)
    if path.is_dir():
        sources: list[tuple[Path, SourceAdapter]] = []
        for child in sorted(path.iterdir()):
            if child.is_dir():
                sources.extend(discover_sources(child, format))
            else:
                try:
                    sources.append((child, adapter_for(child, format)))
                except IngestError:
                    continue
        return sources
    return [(path, adapter_for(path, format))]


def open_source(
    path: str | Path,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    format: str | None = None,
) -> Iterator[TableStream]:
    """Yield every :class:`TableStream` under a file or directory path."""
    for source_path, adapter in discover_sources(path, format):
        yield from adapter.streams(source_path, chunk_rows)
