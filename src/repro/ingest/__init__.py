"""Ingestion adapters: external sources in, chunked table streams out.

``repro.ingest`` is how bulk data enters the pipeline without a full
in-memory copy.  A thin :class:`~repro.ingest.base.SourceAdapter`
protocol plus a registry of concrete adapters (CSV, NDJSON, SQLite via
stdlib ``sqlite3``, the native tables-JSONL corpus format, and Parquet
behind an optional ``pyarrow`` guard) turn files, directories and
databases into :class:`~repro.tables.TableStream` objects, which the
streaming featurization path consumes chunk by chunk.
:class:`~repro.ingest.annotate.StreamingAnnotator` drives a fitted model
over those streams — the engine behind ``repro-sato annotate``.
"""

from repro.ingest.base import (
    DEFAULT_CHUNK_ROWS,
    IngestError,
    SourceAdapter,
    adapter_for,
    discover_sources,
    open_source,
    register_adapter,
    registered_adapters,
)

# Importing the adapter modules registers them.
from repro.ingest.csv_source import CsvAdapter
from repro.ingest.ndjson_source import NdjsonAdapter
from repro.ingest.sqlite_source import SqliteAdapter
from repro.ingest.jsonl_source import TablesJsonlAdapter
from repro.ingest.parquet_source import ParquetAdapter
from repro.ingest.annotate import StreamingAnnotator

__all__ = [
    "DEFAULT_CHUNK_ROWS",
    "IngestError",
    "SourceAdapter",
    "adapter_for",
    "discover_sources",
    "open_source",
    "register_adapter",
    "registered_adapters",
    "CsvAdapter",
    "NdjsonAdapter",
    "SqliteAdapter",
    "TablesJsonlAdapter",
    "ParquetAdapter",
    "StreamingAnnotator",
]
