"""Parquet source adapter (optional, behind an import guard).

Parquet needs ``pyarrow``, which is not a dependency of this project.
The adapter is always registered so ``--format parquet`` and suffix
dispatch give a *clear* :class:`IngestError` explaining the missing
backend instead of an ``ImportError`` traceback; when ``pyarrow`` is
importable it streams record batches of ``chunk_rows`` rows.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

from repro.ingest.base import (
    DEFAULT_CHUNK_ROWS,
    IngestError,
    SourceAdapter,
    register_adapter,
)
from repro.tables import Table, TableChunk, TableStream

try:  # pragma: no cover - exercised only where pyarrow is installed
    import pyarrow.parquet as _parquet
except ImportError:  # pragma: no cover
    _parquet = None

__all__ = ["ParquetAdapter"]


def _cell(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


@register_adapter
class ParquetAdapter(SourceAdapter):
    """One table per ``.parquet`` file (requires ``pyarrow``)."""

    name = "parquet"
    suffixes = (".parquet",)

    @property
    def available(self) -> bool:
        return _parquet is not None

    def _require_backend(self, path: Path) -> None:
        if _parquet is None:
            raise IngestError(
                "parquet support requires the optional 'pyarrow' package, "
                "which is not installed",
                source=path,
            )

    def streams(
        self, path: str | Path, chunk_rows: int = DEFAULT_CHUNK_ROWS
    ) -> Iterator[TableStream]:
        path = Path(path)
        self._require_backend(path)
        try:
            parquet_file = _parquet.ParquetFile(path)
        except Exception as exc:
            raise IngestError(f"malformed parquet: {exc}", source=path) from exc
        headers = tuple(parquet_file.schema_arrow.names)

        def chunks() -> Iterator[TableChunk]:
            try:
                start_row = 0
                for batch in parquet_file.iter_batches(batch_size=chunk_rows):
                    columns = tuple(
                        tuple(_cell(value) for value in batch.column(j).to_pylist())
                        for j in range(batch.num_columns)
                    )
                    yield TableChunk(columns=columns, start_row=start_row)
                    start_row += batch.num_rows
            except Exception as exc:
                if isinstance(exc, IngestError):
                    raise
                raise IngestError(f"malformed parquet: {exc}", source=path) from exc

        yield TableStream(
            headers=headers,
            chunks=chunks(),
            table_id=path.stem,
            metadata={"source": str(path), "format": self.name},
        )

    def write_fixture(self, table: Table, path: str | Path) -> Path:
        path = Path(path)
        self._require_backend(path)
        import pyarrow as pa

        headers = [
            column.header if column.header is not None else f"col{i}"
            for i, column in enumerate(table.columns)
        ]
        n_rows = table.n_rows
        arrays = [
            pa.array(
                list(column.values) + [""] * (n_rows - len(column.values)),
                type=pa.string(),
            )
            for column in table.columns
        ]
        _parquet.write_table(pa.table(arrays, names=headers), path)
        return path
