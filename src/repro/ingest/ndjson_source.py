"""NDJSON (newline-delimited JSON objects) source adapter.

Each line is one JSON object = one row.  The first object fixes the
column schema (its keys, in insertion order) — a streaming reader cannot
widen columns it has already emitted, so later objects introducing new
keys are a structural error.  Missing keys and JSON ``null`` both map to
the missing cell (the empty string); other scalars keep their JSON
spelling (``true``/``false``, ``1.5``); nested arrays/objects are stored
as compact JSON text.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator

from repro.ingest.base import (
    DEFAULT_CHUNK_ROWS,
    IngestError,
    SourceAdapter,
    register_adapter,
)
from repro.tables import Table, TableChunk, TableStream

__all__ = ["NdjsonAdapter"]


def _cell(value: object) -> str:
    """Canonical string form of one JSON cell value."""
    if value is None:
        return ""
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return json.dumps(value)
    return json.dumps(value, ensure_ascii=False, separators=(",", ":"))


@register_adapter
class NdjsonAdapter(SourceAdapter):
    """One table per ``.ndjson`` file; one JSON object per line."""

    name = "ndjson"
    suffixes = (".ndjson",)

    def streams(
        self, path: str | Path, chunk_rows: int = DEFAULT_CHUNK_ROWS
    ) -> Iterator[TableStream]:
        path = Path(path)
        try:
            handle = path.open(encoding="utf-8-sig")
        except OSError as exc:
            raise IngestError(f"cannot open: {exc}", source=path) from exc

        def rows() -> Iterator[dict]:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                    raise IngestError(
                        f"malformed NDJSON on line {line_number}: {exc}", source=path
                    ) from exc
                if not isinstance(record, dict):
                    raise IngestError(
                        f"line {line_number} is not a JSON object "
                        f"(got {type(record).__name__})",
                        source=path,
                    )
                yield record

        row_iter = rows()
        try:
            first = next(row_iter)
        except StopIteration:
            handle.close()
            raise IngestError("empty NDJSON file (no rows)", source=path) from None
        except IngestError:
            handle.close()
            raise
        headers = tuple(first.keys())
        header_set = set(headers)

        def chunks() -> Iterator[TableChunk]:
            try:
                block: list[list[str]] = [[] for _ in headers]
                start_row = 0
                block_rows = 0
                for record_number, record in enumerate(
                    _chain_first(first, row_iter), start=1
                ):
                    unknown = set(record) - header_set
                    if unknown:
                        raise IngestError(
                            f"object {record_number} introduces keys not in the "
                            f"first object's schema: {sorted(unknown)}",
                            source=path,
                        )
                    for j, key in enumerate(headers):
                        block[j].append(_cell(record.get(key)))
                    block_rows += 1
                    if block_rows >= chunk_rows:
                        yield TableChunk(
                            columns=tuple(tuple(values) for values in block),
                            start_row=start_row,
                        )
                        start_row += block_rows
                        block_rows = 0
                        block = [[] for _ in headers]
                if block_rows:
                    yield TableChunk(
                        columns=tuple(tuple(values) for values in block),
                        start_row=start_row,
                    )
            finally:
                handle.close()

        yield TableStream(
            headers=headers,
            chunks=chunks(),
            table_id=path.stem,
            metadata={"source": str(path), "format": self.name},
        )

    def write_fixture(self, table: Table, path: str | Path) -> Path:
        path = Path(path)
        headers = [
            column.header if column.header is not None else f"col{i}"
            for i, column in enumerate(table.columns)
        ]
        with path.open("w", encoding="utf-8") as handle:
            for row in table.rows():
                record = dict(zip(headers, row))
                handle.write(json.dumps(record, ensure_ascii=False))
                handle.write("\n")
        return path


def _chain_first(first: dict, rest: Iterator[dict]) -> Iterator[dict]:
    yield first
    yield from rest
