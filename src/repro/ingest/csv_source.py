"""CSV source adapter.

Reads ``utf-8`` CSV with an optional leading BOM (``utf-8-sig`` strips
it), takes the first row as headers, and streams the remaining rows in
``chunk_rows``-row column-major chunks.  Values round-trip byte-exactly:
quoting and embedded newlines are the :mod:`csv` module's, and unicode is
never normalized (NFD stays NFD).

Rows shorter than the header are padded with missing cells; rows *longer*
than the header are a structural error (a streaming reader cannot widen
columns it has already emitted) and raise :class:`IngestError`.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterator

from repro.ingest.base import (
    DEFAULT_CHUNK_ROWS,
    IngestError,
    SourceAdapter,
    register_adapter,
)
from repro.tables import Table, TableChunk, TableStream
from repro.tables.io import table_to_csv

__all__ = ["CsvAdapter"]


@register_adapter
class CsvAdapter(SourceAdapter):
    """One table per ``.csv`` file; first row is the header."""

    name = "csv"
    suffixes = (".csv",)

    def streams(
        self, path: str | Path, chunk_rows: int = DEFAULT_CHUNK_ROWS
    ) -> Iterator[TableStream]:
        path = Path(path)
        try:
            handle = path.open(newline="", encoding="utf-8-sig")
        except OSError as exc:
            raise IngestError(f"cannot open: {exc}", source=path) from exc
        reader = csv.reader(handle)
        try:
            headers = next(reader)
        except StopIteration:
            handle.close()
            raise IngestError("empty CSV file (no header row)", source=path) from None
        except (csv.Error, UnicodeDecodeError) as exc:
            handle.close()
            raise IngestError(f"malformed CSV: {exc}", source=path) from exc

        n_columns = len(headers)

        def chunks() -> Iterator[TableChunk]:
            try:
                block: list[list[str]] = [[] for _ in range(n_columns)]
                start_row = 0
                block_rows = 0
                for line_number, row in enumerate(reader, start=2):
                    if len(row) > n_columns:
                        raise IngestError(
                            f"row on line {line_number} has {len(row)} cells but "
                            f"the header declares {n_columns} columns",
                            source=path,
                        )
                    for j in range(n_columns):
                        block[j].append(row[j] if j < len(row) else "")
                    block_rows += 1
                    if block_rows >= chunk_rows:
                        yield TableChunk(
                            columns=tuple(tuple(values) for values in block),
                            start_row=start_row,
                        )
                        start_row += block_rows
                        block_rows = 0
                        block = [[] for _ in range(n_columns)]
                if block_rows:
                    yield TableChunk(
                        columns=tuple(tuple(values) for values in block),
                        start_row=start_row,
                    )
            except (csv.Error, UnicodeDecodeError) as exc:
                raise IngestError(f"malformed CSV: {exc}", source=path) from exc
            finally:
                handle.close()

        yield TableStream(
            headers=tuple(headers),
            chunks=chunks(),
            table_id=path.stem,
            metadata={"source": str(path), "format": self.name},
        )

    def write_fixture(self, table: Table, path: str | Path) -> Path:
        path = Path(path)
        table_to_csv(table, path)
        return path
