"""Adapter for the native tables-JSONL corpus format.

``.jsonl`` files written by :func:`repro.tables.tables_to_jsonl` (one
:class:`~repro.tables.Table` per line, values + headers + labels) ingest
back as one stream per line, re-chunked to ``chunk_rows``.  This lets
``repro-sato annotate`` run over generated corpora and evaluation suites
exactly like over external CSV/SQLite sources.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator

from repro.ingest.base import (
    DEFAULT_CHUNK_ROWS,
    IngestError,
    SourceAdapter,
    register_adapter,
)
from repro.tables import Table, TableStream, table_stream
from repro.tables.io import tables_to_jsonl

__all__ = ["TablesJsonlAdapter"]


@register_adapter
class TablesJsonlAdapter(SourceAdapter):
    """One table per line of a native-format ``.jsonl`` corpus file."""

    name = "tables-jsonl"
    suffixes = (".jsonl",)

    def streams(
        self, path: str | Path, chunk_rows: int = DEFAULT_CHUNK_ROWS
    ) -> Iterator[TableStream]:
        path = Path(path)
        try:
            handle = path.open(encoding="utf-8-sig")
        except OSError as exc:
            raise IngestError(f"cannot open: {exc}", source=path) from exc
        with handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                    raise IngestError(
                        f"malformed JSONL on line {line_number}: {exc}", source=path
                    ) from exc
                if not isinstance(payload, dict) or "columns" not in payload:
                    raise IngestError(
                        f"line {line_number} is not a serialised table "
                        "(expected an object with a 'columns' key)",
                        source=path,
                    )
                table = Table.from_dict(payload)
                if table.table_id is None:
                    table.table_id = f"{path.stem}:{line_number}"
                stream = table_stream(table, chunk_rows)
                stream.metadata.setdefault("source", str(path))
                stream.metadata.setdefault("format", self.name)
                yield stream

    def write_fixture(self, table: Table, path: str | Path) -> Path:
        path = Path(path)
        tables_to_jsonl([table], path)
        return path
