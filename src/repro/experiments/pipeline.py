"""Shared experiment pipeline: corpus, model factories, Table 1 runs.

``run_main_results`` is the workhorse behind Table 1 and Figures 7-8: it
cross-validates Base, Sato, SatoNoStruct and SatoNoTopic on both Dmult and D
and caches the result per configuration so that multiple benchmarks reuse
one round of training.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable

from repro.corpus import CorpusConfig, CorpusGenerator, Dataset
from repro.evaluation.cross_validation import CrossValidationResult, evaluate_model_cv
from repro.experiments.config import ExperimentConfig
from repro.features import ColumnFeaturizer
from repro.models import SatoConfig, SatoModel, TrainingConfig

__all__ = ["MainResults", "build_corpus", "make_model_factories", "run_main_results"]

#: The four model variants evaluated in Table 1, in the paper's order.
MODEL_VARIANTS: tuple[str, ...] = ("Base", "Sato", "SatoNoStruct", "SatoNoTopic")


@dataclass
class MainResults:
    """Cross-validation results per dataset (Dmult, D) and model variant."""

    config: ExperimentConfig
    results: dict[str, dict[str, CrossValidationResult]] = field(default_factory=dict)

    def result(self, dataset: str, model: str) -> CrossValidationResult:
        """Result of one (dataset, model) cell of Table 1."""
        return self.results[dataset][model]

    def relative_improvement(self, dataset: str, model: str, metric: str = "macro") -> float:
        """Relative improvement of a model over Base in percent."""
        base = self.result(dataset, "Base")
        other = self.result(dataset, model)
        if metric == "macro":
            reference, value = base.macro_f1, other.macro_f1
        else:
            reference, value = base.weighted_f1, other.weighted_f1
        if reference <= 0:
            return 0.0
        return (value - reference) / reference * 100.0


def build_corpus(config: ExperimentConfig) -> Dataset:
    """Generate the synthetic corpus D for an experiment configuration."""
    corpus_config = CorpusConfig(
        n_tables=config.n_tables,
        min_rows=config.min_rows,
        max_rows=config.max_rows,
        singleton_rate=config.singleton_rate,
        seed=config.corpus_seed,
    )
    generator = CorpusGenerator(corpus_config)
    return Dataset(tables=generator.generate(), name="D")


def _training_config(config: ExperimentConfig) -> TrainingConfig:
    return TrainingConfig(
        n_epochs=config.nn_epochs,
        learning_rate=config.learning_rate,
        weight_decay=config.weight_decay,
        batch_size=config.batch_size,
        subnet_dim=config.subnet_dim,
        hidden_dim=config.hidden_dim,
        dropout=config.dropout,
        seed=config.seed,
    )


def _featurizer(config: ExperimentConfig) -> ColumnFeaturizer:
    return ColumnFeaturizer(
        word_dim=config.word_dim,
        para_dim=config.para_dim,
        seed=config.seed,
        backend=config.feature_backend,
        workers=config.feature_workers,
    )


def make_model_factories(
    config: ExperimentConfig,
) -> dict[str, Callable[[], SatoModel]]:
    """Factories building fresh instances of the four Table 1 variants."""

    def sato_config(use_topic: bool, use_struct: bool) -> SatoConfig:
        return SatoConfig(
            use_topic=use_topic,
            use_struct=use_struct,
            n_topics=config.n_topics,
            training=_training_config(config),
            crf_learning_rate=config.crf_learning_rate,
            crf_epochs=config.crf_epochs,
            crf_batch_size=config.crf_batch_size,
            seed=config.seed,
        )

    def factory(use_topic: bool, use_struct: bool) -> Callable[[], SatoModel]:
        def build() -> SatoModel:
            model = SatoModel(
                config=sato_config(use_topic, use_struct),
                featurizer=_featurizer(config),
            ).set_model_backend(config.model_backend)
            if use_topic:
                # Keep the LDA budget under experiment control.
                model.column_model.intent_estimator.lda.n_iterations = config.lda_iterations
                model.column_model.intent_estimator.lda.infer_iterations = (
                    config.lda_infer_iterations
                )
            return model

        return build

    return {
        "Base": factory(False, False),
        "Sato": factory(True, True),
        "SatoNoStruct": factory(True, False),
        "SatoNoTopic": factory(False, True),
    }


@lru_cache(maxsize=4)
def run_main_results(config: ExperimentConfig) -> MainResults:
    """Cross-validate all four variants on Dmult and D (Table 1).

    Results are cached per configuration: Figures 7-9 and Table 4 reuse the
    same training rounds rather than re-fitting models.
    """
    dataset = build_corpus(config)
    dmult = dataset.multi_column()
    factories = make_model_factories(config)
    results: dict[str, dict[str, CrossValidationResult]] = {}
    for dataset_name, tables in (("Dmult", dmult.tables), ("D", dataset.tables)):
        results[dataset_name] = {}
        for model_name in MODEL_VARIANTS:
            results[dataset_name][model_name] = evaluate_model_cv(
                factories[model_name],
                tables,
                k=config.k_folds,
                seed=config.split_seed,
                model_name=model_name,
            )
    return MainResults(config=config, results=results)
