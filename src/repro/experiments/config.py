"""Experiment configuration presets.

The paper's full setting (80K tables, 400 topics, 100 epochs, 5 folds) is
far beyond what an offline CI run should attempt, so the default
configuration is scaled down while keeping every pipeline stage intact.
``ExperimentConfig.paper()`` documents the full-scale parameters;
``ExperimentConfig.tiny()`` is what unit tests use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.registry.gates import (
    DEFAULT_GATE_MIN_AGREEMENT,
    DEFAULT_GATE_MIN_F1,
    DEFAULT_SUITE_REGRESSION_TOLERANCE,
)
from repro.registry.watch import DEFAULT_WATCH_INTERVAL
from repro.serving.scheduler import (
    DEFAULT_MAX_BATCH_SIZE,
    DEFAULT_MAX_QUEUE,
    DEFAULT_MAX_WAIT_MS,
)

__all__ = ["ExperimentConfig"]


@dataclass(frozen=True)
class ExperimentConfig:
    """All knobs of one experiment run (hashable so results can be cached)."""

    # Corpus
    n_tables: int = 300
    min_rows: int = 4
    max_rows: int = 18
    singleton_rate: float = 0.3
    corpus_seed: int = 13

    # Evaluation protocol
    k_folds: int = 3
    split_seed: int = 0

    # Featurizer
    word_dim: int = 24
    para_dim: int = 16
    feature_backend: str = "vectorized"
    feature_workers: int = 0

    # Batch inference (structured decode backend; see docs/performance.md)
    model_backend: str = "batched"

    # Bulk ingestion (streaming chunked annotate; see docs/ingest.md)
    ingest_chunk_rows: int = 4096
    # Persistent column-sketch store for incremental re-annotation
    # (directory path or None = off; see docs/performance.md).  The
    # sample dial bounds featurization of store misses to each column's
    # first N values; fingerprints always cover the full content.
    sketch_store: str | None = None
    sketch_sample_rows: int | None = None

    # Online serving (micro-batching policy; see docs/operations.md)
    serve_max_batch_size: int = DEFAULT_MAX_BATCH_SIZE
    serve_max_wait_ms: float = DEFAULT_MAX_WAIT_MS
    serve_max_queue: int = DEFAULT_MAX_QUEUE
    # Prefork worker fleet over a shared-memory bundle (0 = single process)
    serve_fleet_workers: int = 0

    # Model lifecycle (registry hot-swap + shadow/canary; see docs/registry.md)
    registry_watch_interval: float = DEFAULT_WATCH_INTERVAL
    serve_shadow_fraction: float = 0.1
    gate_min_macro_f1: float = DEFAULT_GATE_MIN_F1
    gate_min_agreement: float = DEFAULT_GATE_MIN_AGREEMENT
    # Per-suite promotion criteria (hard-case eval suites; docs/corpus_spec.md).
    # Empty tuple = no suite gates; names match specs/<name>.json.
    gate_suites: tuple = ()
    gate_suite_preset: str = "tiny"
    gate_suite_tolerance: float = DEFAULT_SUITE_REGRESSION_TOLERANCE

    # Topic model
    n_topics: int = 24
    lda_iterations: int = 15
    lda_infer_iterations: int = 16

    # Column network
    nn_epochs: int = 30
    learning_rate: float = 3e-3
    weight_decay: float = 1e-4
    batch_size: int = 64
    subnet_dim: int = 32
    hidden_dim: int = 64
    dropout: float = 0.2

    # CRF
    crf_epochs: int = 6
    crf_learning_rate: float = 1e-2
    crf_batch_size: int = 10

    seed: int = 7

    @classmethod
    def tiny(cls) -> "ExperimentConfig":
        """Smallest configuration that still exercises every component."""
        return cls(
            n_tables=70,
            max_rows=10,
            k_folds=2,
            word_dim=16,
            para_dim=12,
            n_topics=8,
            lda_iterations=6,
            lda_infer_iterations=6,
            nn_epochs=6,
            subnet_dim=16,
            hidden_dim=32,
            crf_epochs=3,
        )

    @classmethod
    def fast(cls) -> "ExperimentConfig":
        """Default benchmark configuration (minutes, not hours)."""
        return cls()

    @classmethod
    def large(cls) -> "ExperimentConfig":
        """A larger offline run for closer-to-paper behaviour."""
        return cls(
            n_tables=1500,
            k_folds=5,
            n_topics=64,
            nn_epochs=50,
            learning_rate=1e-3,
            hidden_dim=128,
            subnet_dim=64,
            word_dim=48,
            para_dim=32,
            crf_epochs=10,
        )

    @classmethod
    def paper(cls) -> "ExperimentConfig":
        """The paper's own setting, documented for reference.

        Running this offline is possible but slow: 80K tables, 400 LDA
        topics, 100 training epochs, 5-fold cross-validation.
        """
        return cls(
            n_tables=80000,
            k_folds=5,
            n_topics=400,
            nn_epochs=100,
            learning_rate=1e-4,
            hidden_dim=256,
            subnet_dim=128,
            word_dim=200,
            para_dim=400,
            crf_epochs=15,
        )
