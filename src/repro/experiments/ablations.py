"""Ablation studies over Sato's design choices.

The paper motivates two design decisions this module sweeps explicitly:

* the dimensionality of the topic vector (Section 3.2 fixes 400 topics);
* initialising CRF pairwise potentials from the co-occurrence matrix and
  then training them (Section 4.3), versus starting from zeros or skipping
  CRF training entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.corpus.splits import train_test_split
from repro.evaluation.cross_validation import collect_predictions
from repro.evaluation.metrics import classification_report
from repro.experiments.config import ExperimentConfig
from repro.experiments.pipeline import build_corpus, make_model_factories

__all__ = [
    "AblationPoint",
    "run_topic_dimension_sweep",
    "run_crf_init_ablation",
]


@dataclass
class AblationPoint:
    """One setting of an ablation sweep and its test scores."""

    setting: str
    macro_f1: float
    weighted_f1: float


def _score_model(model, test_tables) -> tuple[float, float]:
    y_true, y_pred = collect_predictions(model, test_tables)
    report = classification_report(y_true, y_pred)
    return report.macro_f1, report.weighted_f1


def run_topic_dimension_sweep(
    config: ExperimentConfig,
    dimensions: tuple[int, ...] = (4, 16, 48),
) -> list[AblationPoint]:
    """Sweep the number of LDA topics used by the topic-aware model."""
    dataset = build_corpus(config)
    dmult = dataset.multi_column()
    train, test = train_test_split(dmult.tables, test_fraction=0.2, seed=config.split_seed)
    points: list[AblationPoint] = []
    for dim in dimensions:
        sweep_config = replace(config, n_topics=dim)
        model = make_model_factories(sweep_config)["SatoNoStruct"]()
        model.fit(train)
        macro, weighted = _score_model(model, test)
        points.append(
            AblationPoint(setting=f"topics={dim}", macro_f1=macro, weighted_f1=weighted)
        )
    return points


def run_crf_init_ablation(config: ExperimentConfig) -> list[AblationPoint]:
    """Compare CRF pairwise initialisation strategies (SatoNoTopic setting)."""
    dataset = build_corpus(config)
    dmult = dataset.multi_column()
    train, test = train_test_split(dmult.tables, test_fraction=0.2, seed=config.split_seed)
    factories = make_model_factories(config)
    points: list[AblationPoint] = []

    # (a) co-occurrence initialisation + training (the paper's setting)
    model = factories["SatoNoTopic"]()
    model.fit(train)
    macro, weighted = _score_model(model, test)
    points.append(AblationPoint("cooccurrence-init + trained", macro, weighted))

    # (b) zero initialisation + training
    model = factories["SatoNoTopic"]()
    model.config.crf_cooccurrence_init = False
    model.fit(train)
    macro, weighted = _score_model(model, test)
    points.append(AblationPoint("zero-init + trained", macro, weighted))

    # (c) co-occurrence initialisation, no CRF training
    model = factories["SatoNoTopic"]()
    model.config.crf_epochs = 0
    model.fit(train)
    macro, weighted = _score_model(model, test)
    points.append(AblationPoint("cooccurrence-init only", macro, weighted))

    # (d) no CRF at all (equals Base)
    model = factories["Base"]()
    model.fit(train)
    macro, weighted = _score_model(model, test)
    points.append(AblationPoint("no CRF (Base)", macro, weighted))
    return points
