"""Plain-text report formatting for every regenerated table and figure."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.corpus.statistics import top_cooccurring_pairs
from repro.evaluation import CorrectionExample, TimingResult
from repro.evaluation.importance import GroupImportance
from repro.evaluation.per_type import PerTypeComparison
from repro.experiments.pipeline import MainResults
from repro.topic.analysis import TopicSummary

__all__ = [
    "format_table1",
    "format_table2",
    "format_table3",
    "format_table4",
    "format_figure5",
    "format_figure6",
    "format_per_type_figure",
    "format_figure9",
    "format_figure10",
    "format_learned_repr",
    "format_ablation",
]


def format_table1(results: MainResults) -> str:
    """Render the Table 1 grid (macro / weighted F1 per variant and dataset)."""
    lines = [
        "Table 1: semantic type detection performance",
        f"{'model':<14}{'dataset':<8}{'macro F1':>12}{'+/-':>8}{'weighted F1':>14}{'+/-':>8}{'rel. macro':>12}",
    ]
    for dataset in ("Dmult", "D"):
        for model in ("Base", "Sato", "SatoNoStruct", "SatoNoTopic"):
            result = results.result(dataset, model)
            relative = results.relative_improvement(dataset, model, "macro")
            lines.append(
                f"{model:<14}{dataset:<8}"
                f"{result.macro_f1:>12.3f}{result.confidence_interval('macro'):>8.3f}"
                f"{result.weighted_f1:>14.3f}{result.confidence_interval('weighted'):>8.3f}"
                f"{relative:>11.1f}%"
            )
    return "\n".join(lines)


def format_table2(timings: Mapping[str, TimingResult]) -> str:
    """Render Table 2 (training / CRF / prediction time)."""
    lines = [
        "Table 2: average training and prediction time (seconds)",
        f"{'model':<10}{'features train':>16}{'crf train':>12}{'predict':>10}",
    ]
    for name, timing in timings.items():
        train_mean, _ = timing.train_time
        crf_mean, _ = timing.crf_train_time
        predict_mean, _ = timing.predict_time
        lines.append(
            f"{name:<10}{train_mean:>16.2f}{crf_mean:>12.2f}{predict_mean:>10.2f}"
        )
    return "\n".join(lines)


def format_table3(summaries: Sequence[TopicSummary]) -> str:
    """Render Table 3 (salient topics and their representative types)."""
    lines = ["Table 3: salient LDA topics"]
    for summary in summaries:
        types = ", ".join(summary.top_types)
        lines.append(f"topic #{summary.topic:<4} saliency={summary.saliency:.3f}  {types}")
    return "\n".join(lines)


def format_table4(examples: Mapping[str, Sequence[CorrectionExample]]) -> str:
    """Render Table 4 (mispredictions corrected by structured prediction)."""
    lines = ["Table 4: corrections from structured prediction"]
    titles = {
        "base_to_notopic": "(a) corrected from Base predictions",
        "nostruct_to_sato": "(b) corrected from SatoNoStruct predictions",
    }
    for key, title in titles.items():
        lines.append(title)
        for example in examples.get(key, []):
            lines.append(
                f"  table={example.table_id}  true={example.true_types}  "
                f"before={example.before}  after={example.after}"
            )
    return "\n".join(lines)


def format_figure5(counts: Mapping[str, int], top: int = 20) -> str:
    """Render Figure 5 (long-tailed type counts) as a text histogram."""
    ordered = sorted(counts.items(), key=lambda kv: -kv[1])
    peak = max((count for _, count in ordered), default=1)
    lines = ["Figure 5: semantic type counts (head and tail)"]
    shown = ordered[:top] + [("...", 0)] + ordered[-5:] if len(ordered) > top else ordered
    for name, count in shown:
        bar = "#" * max(0, int(40 * count / peak))
        lines.append(f"{name:<16}{count:>8} {bar}")
    return "\n".join(lines)


def format_figure6(matrix, k: int = 10) -> str:
    """Render Figure 6 (co-occurrence) as its top-k pairs."""
    lines = ["Figure 6: most frequent co-occurring type pairs"]
    for a, b, count in top_cooccurring_pairs(matrix, k=k):
        lines.append(f"({a}, {b}): {count:.0f}")
    return "\n".join(lines)


def format_per_type_figure(comparison: PerTypeComparison, title: str, top: int = 15) -> str:
    """Render a Figure 7/8 panel: per-type F1 with vs without a component."""
    lines = [
        title,
        f"improved types: {len(comparison.improved_types)}  "
        f"degraded: {len(comparison.degraded_types)}  "
        f"unchanged: {len(comparison.unchanged_types)}",
        f"{'type':<16}{comparison.model_a:>14}{comparison.model_b:>14}{'delta':>10}",
    ]
    best = sorted(comparison.types, key=lambda t: -abs(comparison.delta(t)))[:top]
    for semantic_type in best:
        lines.append(
            f"{semantic_type:<16}"
            f"{comparison.f1_a.get(semantic_type, 0.0):>14.3f}"
            f"{comparison.f1_b.get(semantic_type, 0.0):>14.3f}"
            f"{comparison.delta(semantic_type):>10.3f}"
        )
    return "\n".join(lines)


def format_figure9(importances: Mapping[str, Mapping[str, GroupImportance]]) -> str:
    """Render Figure 9 (permutation importance per model and feature group)."""
    lines = ["Figure 9: permutation importance (normalised F1 drop, %)"]
    for model_name, groups in importances.items():
        lines.append(f"{model_name}:")
        for group_name, importance in sorted(
            groups.items(), key=lambda kv: -kv[1].macro_drop
        ):
            lines.append(
                f"  {group_name:<8} macro drop={importance.macro_drop:>7.2f}%"
                f"  weighted drop={importance.weighted_drop:>7.2f}%"
            )
    return "\n".join(lines)


def format_figure10(result) -> str:
    """Render Figure 10 (cluster separation of column embeddings)."""
    return "\n".join(
        [
            "Figure 10: column embedding (Col2Vec) separation",
            f"SatoNoStruct separation score: {result.separation_sato:.3f} "
            f"({len(result.labels_sato)} columns)",
            f"Sherlock/Base separation score: {result.separation_base:.3f} "
            f"({len(result.labels_base)} columns)",
        ]
    )


def format_learned_repr(scores: Mapping[str, Mapping[str, float]]) -> str:
    """Render the Section 6 learned-representation comparison."""
    lines = [
        "Section 6: learned representations vs feature engineering",
        f"{'model':<14}{'macro F1':>12}{'weighted F1':>14}",
    ]
    for name, values in scores.items():
        lines.append(f"{name:<14}{values['macro_f1']:>12.3f}{values['weighted_f1']:>14.3f}")
    return "\n".join(lines)


def format_ablation(points, title: str) -> str:
    """Render an ablation sweep."""
    lines = [title, f"{'setting':<32}{'macro F1':>12}{'weighted F1':>14}"]
    for point in points:
        lines.append(f"{point.setting:<32}{point.macro_f1:>12.3f}{point.weighted_f1:>14.3f}")
    return "\n".join(lines)
