"""Declarative experiment harness regenerating the paper's tables and figures.

Each public function corresponds to one experiment (table or figure) of the
paper's evaluation section; the benchmarks in ``benchmarks/`` are thin
wrappers that call these functions and print the regenerated rows/series.
Results are cached per configuration so that several benchmarks can share
one (expensive) round of model training.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.pipeline import (
    MainResults,
    build_corpus,
    make_model_factories,
    run_main_results,
)
from repro.experiments.analyses import (
    run_col2vec,
    run_efficiency,
    run_importance,
    run_learned_repr,
    run_qualitative,
    run_topic_analysis,
)
from repro.experiments.ablations import run_crf_init_ablation, run_topic_dimension_sweep
from repro.experiments import reporting

__all__ = [
    "ExperimentConfig",
    "MainResults",
    "build_corpus",
    "make_model_factories",
    "run_main_results",
    "run_efficiency",
    "run_topic_analysis",
    "run_qualitative",
    "run_importance",
    "run_col2vec",
    "run_learned_repr",
    "run_topic_dimension_sweep",
    "run_crf_init_ablation",
    "reporting",
]
