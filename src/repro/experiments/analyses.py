"""Secondary experiments: efficiency, topics, qualitative, importance, Col2Vec.

Each function regenerates one of the paper's analysis tables/figures from a
single train/test split (which is what the paper itself does for these
analyses); the main-results cross-validation lives in ``pipeline.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

from repro.corpus.splits import train_test_split
from repro.evaluation import (
    CorrectionExample,
    TimingResult,
    cluster_separation,
    collect_column_embeddings,
    find_corrections,
    permutation_importance,
    time_model,
)
from repro.evaluation.cross_validation import collect_predictions
from repro.evaluation.embeddings import ORGANIZATION_TYPES, project_jointly
from repro.evaluation.importance import GroupImportance
from repro.evaluation.metrics import classification_report
from repro.experiments.config import ExperimentConfig
from repro.experiments.pipeline import build_corpus, make_model_factories
from repro.models import AttentionColumnModel, SatoModel, TrainingConfig
from repro.tables import Table
from repro.topic.analysis import TopicSummary, top_salient_topics

__all__ = [
    "FittedVariants",
    "fit_variants_once",
    "run_efficiency",
    "run_topic_analysis",
    "run_qualitative",
    "run_importance",
    "run_col2vec",
    "run_learned_repr",
]


@dataclass
class FittedVariants:
    """All four variants fitted on one shared train split."""

    config: ExperimentConfig
    train: list[Table]
    test: list[Table]
    models: dict[str, SatoModel]


@lru_cache(maxsize=4)
def fit_variants_once(config: ExperimentConfig) -> FittedVariants:
    """Fit Base / Sato / SatoNoStruct / SatoNoTopic on one Dmult split."""
    dataset = build_corpus(config)
    dmult = dataset.multi_column()
    train, test = train_test_split(dmult.tables, test_fraction=0.2, seed=config.split_seed)
    factories = make_model_factories(config)
    models = {}
    for name, factory in factories.items():
        model = factory()
        model.fit(train)
        models[name] = model
    return FittedVariants(config=config, train=train, test=test, models=models)


def run_efficiency(config: ExperimentConfig, n_trials: int = 3) -> dict[str, TimingResult]:
    """Table 2: training and prediction time of Base vs Sato."""
    dataset = build_corpus(config)
    dmult = dataset.multi_column()
    train, test = train_test_split(dmult.tables, test_fraction=0.2, seed=config.split_seed)
    factories = make_model_factories(config)
    return {
        "Base": time_model(factories["Base"], train, test, n_trials=n_trials, model_name="Base"),
        "Sato": time_model(factories["Sato"], train, test, n_trials=n_trials, model_name="Sato"),
    }


def run_topic_analysis(
    config: ExperimentConfig, n_topics: int = 5, k_types: int = 5
) -> list[TopicSummary]:
    """Table 3: the most salient LDA topics and their representative types."""
    variants = fit_variants_once(config)
    sato = variants.models["Sato"]
    estimator = sato.column_model.intent_estimator  # type: ignore[attr-defined]
    tables = variants.train + variants.test
    return top_salient_topics(estimator, tables, n_topics=n_topics, k_types=k_types)


def run_qualitative(
    config: ExperimentConfig, max_examples: int = 10
) -> dict[str, list[CorrectionExample]]:
    """Table 4: tables whose predictions the CRF corrects.

    Part (a): Base -> SatoNoTopic (CRF over Base unaries).
    Part (b): SatoNoStruct -> Sato (CRF over topic-aware unaries).
    """
    variants = fit_variants_once(config)
    models = variants.models
    return {
        "base_to_notopic": find_corrections(
            models["Base"], models["SatoNoTopic"], variants.test, max_examples=max_examples
        ),
        "nostruct_to_sato": find_corrections(
            models["SatoNoStruct"], models["Sato"], variants.test, max_examples=max_examples
        ),
    }


def run_importance(
    config: ExperimentConfig, n_repeats: int = 3
) -> dict[str, dict[str, GroupImportance]]:
    """Figure 9: permutation importance of feature groups for all variants."""
    variants = fit_variants_once(config)
    importances: dict[str, dict[str, GroupImportance]] = {}
    for name, model in variants.models.items():
        importances[name] = permutation_importance(
            model, variants.test, n_repeats=n_repeats, seed=config.seed
        )
    return importances


@dataclass
class Col2VecResult:
    """Figure 10 data: projected embeddings and separation scores."""

    labels_sato: list[str]
    labels_base: list[str]
    projection_sato: "object"
    projection_base: "object"
    separation_sato: float
    separation_base: float


def run_col2vec(
    config: ExperimentConfig, types: Sequence[str] = ORGANIZATION_TYPES
) -> Col2VecResult:
    """Figure 10: column embeddings of SatoNoStruct vs the Base (Sherlock) model."""
    variants = fit_variants_once(config)
    # The paper compares the single-column layers, i.e. before the CRF.  The
    # paper evaluates on test columns only; our synthetic test split is small
    # and the organisation-related types are rare, so the train split is
    # appended as a fallback pool to obtain enough columns to project.
    pool = variants.test + variants.train
    sato_embeddings = collect_column_embeddings(
        variants.models["SatoNoStruct"].column_model, pool, types=types
    )
    base_embeddings = collect_column_embeddings(
        variants.models["Base"].column_model, pool, types=types
    )
    projection_sato, projection_base = project_jointly(
        sato_embeddings, base_embeddings, seed=config.seed
    )
    return Col2VecResult(
        labels_sato=sato_embeddings.labels,
        labels_base=base_embeddings.labels,
        projection_sato=projection_sato,
        projection_base=projection_base,
        separation_sato=cluster_separation(sato_embeddings.embeddings, sato_embeddings.labels),
        separation_base=cluster_separation(base_embeddings.embeddings, base_embeddings.labels),
    )


def run_learned_repr(config: ExperimentConfig) -> dict[str, dict[str, float]]:
    """Section 6: featurisation-free single-column model vs Base vs Sato."""
    variants = fit_variants_once(config)
    attention_model = AttentionColumnModel(
        config=TrainingConfig(
            n_epochs=max(5, config.nn_epochs),
            learning_rate=1e-3,
            batch_size=config.batch_size,
            seed=config.seed,
        )
    )
    attention_model.fit(variants.train)
    scores: dict[str, dict[str, float]] = {}
    for name, model in (
        ("LearnedRepr", attention_model),
        ("Base", variants.models["Base"]),
        ("Sato", variants.models["Sato"]),
    ):
        y_true, y_pred = collect_predictions(model, variants.test)
        report = classification_report(y_true, y_pred)
        scores[name] = {
            "macro_f1": report.macro_f1,
            "weighted_f1": report.weighted_f1,
        }
    return scores
