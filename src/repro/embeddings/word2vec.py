"""Count-based word embeddings (PPMI + truncated SVD).

This substitutes for the pre-trained GloVe vectors used by Sherlock's Word
features.  Positive pointwise mutual information over a sliding co-occurrence
window followed by a truncated SVD is a classical, well-understood way to
obtain dense distributional vectors (Levy & Goldberg showed it approximates
skip-gram with negative sampling), and it trains in seconds on the corpus.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import svds

from repro.embeddings.vocabulary import Vocabulary

__all__ = ["WordEmbeddingModel"]


class WordEmbeddingModel:
    """Train and query dense word vectors from tokenised documents.

    Parameters
    ----------
    dim:
        Embedding dimensionality.
    window:
        Symmetric co-occurrence window size.
    min_count:
        Minimum token frequency for inclusion in the vocabulary.
    max_vocab:
        Cap on vocabulary size (most frequent tokens kept).
    """

    def __init__(
        self,
        dim: int = 50,
        window: int = 4,
        min_count: int = 2,
        max_vocab: int | None = 20000,
        seed: int = 0,
    ) -> None:
        if dim < 1:
            raise ValueError("dim must be positive")
        if window < 1:
            raise ValueError("window must be positive")
        self.dim = dim
        self.window = window
        self.min_count = min_count
        self.max_vocab = max_vocab
        self.seed = seed
        self.vocabulary: Vocabulary | None = None
        self.vectors: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self.vectors is not None

    def fit(self, documents: Iterable[Sequence[str]]) -> "WordEmbeddingModel":
        """Train embeddings from tokenised documents."""
        documents = [list(doc) for doc in documents]
        self.vocabulary = Vocabulary.from_documents(
            documents, min_count=self.min_count, max_size=self.max_vocab
        )
        n_tokens = len(self.vocabulary)
        if n_tokens == 0:
            self.vectors = np.zeros((0, self.dim), dtype=np.float64)
            return self
        cooc = self._cooccurrence(documents, n_tokens)
        ppmi = self._ppmi(cooc)
        self.vectors = self._factorize(ppmi, n_tokens)
        return self

    def _cooccurrence(
        self, documents: list[list[str]], n_tokens: int
    ) -> sparse.csr_matrix:
        rows: list[int] = []
        cols: list[int] = []
        data: list[float] = []
        assert self.vocabulary is not None
        for document in documents:
            ids = self.vocabulary.encode(document)
            length = len(ids)
            for i, center in enumerate(ids):
                upper = min(length, i + self.window + 1)
                for j in range(i + 1, upper):
                    weight = 1.0 / (j - i)
                    rows.append(center)
                    cols.append(ids[j])
                    data.append(weight)
                    rows.append(ids[j])
                    cols.append(center)
                    data.append(weight)
        matrix = sparse.coo_matrix(
            (data, (rows, cols)), shape=(n_tokens, n_tokens), dtype=np.float64
        )
        return matrix.tocsr()

    @staticmethod
    def _ppmi(cooc: sparse.csr_matrix) -> sparse.csr_matrix:
        total = cooc.sum()
        if total == 0:
            return cooc
        row_sums = np.asarray(cooc.sum(axis=1)).ravel()
        col_sums = np.asarray(cooc.sum(axis=0)).ravel()
        cooc = cooc.tocoo()
        with np.errstate(divide="ignore", invalid="ignore"):
            pmi = np.log(
                (cooc.data * total)
                / (row_sums[cooc.row] * col_sums[cooc.col])
            )
        pmi[~np.isfinite(pmi)] = 0.0
        pmi = np.maximum(pmi, 0.0)
        result = sparse.coo_matrix((pmi, (cooc.row, cooc.col)), shape=cooc.shape)
        result.eliminate_zeros()
        return result.tocsr()

    def _factorize(self, ppmi: sparse.csr_matrix, n_tokens: int) -> np.ndarray:
        k = min(self.dim, max(1, min(ppmi.shape) - 1))
        if ppmi.nnz == 0 or k < 1:
            return np.zeros((n_tokens, self.dim), dtype=np.float64)
        try:
            u, s, _ = svds(ppmi, k=k, random_state=self.seed)
        except Exception:
            dense = ppmi.toarray()
            u, s, _ = np.linalg.svd(dense, full_matrices=False)
            u, s = u[:, :k], s[:k]
        # svds returns singular values in ascending order; flip for stability.
        order = np.argsort(-s)
        u, s = u[:, order], s[order]
        vectors = u * np.sqrt(np.maximum(s, 0.0))
        if vectors.shape[1] < self.dim:
            pad = np.zeros((n_tokens, self.dim - vectors.shape[1]))
            vectors = np.hstack([vectors, pad])
        return vectors.astype(np.float64)

    # -------------------------------------------------------- serialisation

    def config_dict(self) -> dict:
        """JSON-serialisable constructor configuration."""
        return {
            "dim": self.dim,
            "window": self.window,
            "min_count": self.min_count,
            "max_vocab": self.max_vocab,
            "seed": self.seed,
        }

    def state_dict(self) -> dict[str, np.ndarray]:
        """Serialisable fitted state (vocabulary order + vectors)."""
        if not self.is_fitted:
            raise RuntimeError("embedding model is not fitted")
        assert self.vocabulary is not None and self.vectors is not None
        return {
            "tokens": np.array(list(self.vocabulary), dtype=np.str_),
            "vectors": self.vectors.copy(),
        }

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore state produced by :meth:`state_dict`."""
        self.vocabulary = Vocabulary.from_tokens(
            state["tokens"].tolist(), min_count=self.min_count, max_size=self.max_vocab
        )
        # Zero-copy on purpose: serving loads this state as read-only views
        # into a shared-memory store (one physical copy for a whole worker
        # fleet), and inference never writes the vectors.  Refitting simply
        # rebinds the attribute to fresh arrays.
        self.vectors = np.asarray(state["vectors"], dtype=np.float64)

    def vector(self, token: str) -> np.ndarray:
        """Return the vector of a token (zeros when out of vocabulary)."""
        if not self.is_fitted:
            raise RuntimeError("embedding model is not fitted")
        assert self.vocabulary is not None and self.vectors is not None
        token_id = self.vocabulary.get(token)
        if token_id is None:
            return np.zeros(self.dim, dtype=np.float64)
        return self.vectors[token_id]

    def mean_vector(self, tokens: Sequence[str]) -> np.ndarray:
        """Mean vector of in-vocabulary tokens (zeros when none are known)."""
        if not self.is_fitted:
            raise RuntimeError("embedding model is not fitted")
        assert self.vocabulary is not None and self.vectors is not None
        ids = self.vocabulary.encode(tokens)
        if not ids:
            return np.zeros(self.dim, dtype=np.float64)
        return self.vectors[ids].mean(axis=0)

    def most_similar(self, token: str, k: int = 5) -> list[tuple[str, float]]:
        """Nearest neighbours of a token by cosine similarity."""
        if not self.is_fitted:
            raise RuntimeError("embedding model is not fitted")
        assert self.vocabulary is not None and self.vectors is not None
        token_id = self.vocabulary.get(token)
        if token_id is None:
            return []
        query = self.vectors[token_id]
        norms = np.linalg.norm(self.vectors, axis=1) * (np.linalg.norm(query) + 1e-12)
        sims = self.vectors @ query / np.maximum(norms, 1e-12)
        order = np.argsort(-sims)
        results = []
        for index in order:
            if index == token_id:
                continue
            results.append((self.vocabulary.token(int(index)), float(sims[index])))
            if len(results) >= k:
                break
        return results
