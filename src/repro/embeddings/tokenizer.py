"""Tokenisation of table cell values.

Cell values are short, noisy strings mixing words, numbers and punctuation.
The tokeniser lower-cases, splits on non-alphanumeric boundaries and maps
digit runs to a small set of shape tokens (``<num1>`` .. ``<num4+>``) so that
numeric columns still produce informative, shareable tokens.
"""

from __future__ import annotations

import re
from typing import Iterable

__all__ = ["TOKEN_RE", "tokenize", "tokenize_values", "number_shape_token"]

#: The token pattern, exposed so that batched featurization backends can run
#: the exact same scan in a single pass over joined column text.
TOKEN_RE = re.compile(r"[a-z]+|[0-9]+")

_TOKEN_RE = TOKEN_RE


def number_shape_token(digits: str) -> str:
    """Map a digit run to a length-bucketed shape token."""
    length = len(digits)
    if length <= 1:
        return "<num1>"
    if length == 2:
        return "<num2>"
    if length <= 4:
        return "<num4>"
    return "<numlong>"


def tokenize(text: str) -> list[str]:
    """Tokenise one cell value.

    >>> tokenize("New York, NY 10027")
    ['new', 'york', 'ny', '<numlong>']
    """
    if not text:
        return []
    tokens: list[str] = []
    for match in _TOKEN_RE.finditer(str(text).lower()):
        piece = match.group(0)
        if piece.isdigit():
            tokens.append(number_shape_token(piece))
        else:
            tokens.append(piece)
    return tokens


def tokenize_values(values: Iterable[str]) -> list[str]:
    """Tokenise a sequence of cell values into one flat token list."""
    tokens: list[str] = []
    for value in values:
        tokens.extend(tokenize(value))
    return tokens
