"""Training-free hashing embeddings.

Maps tokens to dense vectors by hashing character n-grams into a fixed number
of buckets.  Used as a fallback when no corpus is available for training
embeddings, and as the token representation of the attention column model
(the "featurisation-free" BERT substitute of Section 6).
"""

from __future__ import annotations

import hashlib
from typing import Sequence

import numpy as np

__all__ = ["HashingEmbedder"]


class HashingEmbedder:
    """Deterministic token embeddings from hashed character n-grams."""

    def __init__(self, dim: int = 32, n_grams: tuple[int, ...] = (2, 3), seed: int = 7) -> None:
        if dim < 1:
            raise ValueError("dim must be positive")
        self.dim = dim
        self.n_grams = n_grams
        self.seed = seed
        rng = np.random.default_rng(seed)
        # A fixed random codebook: each hash bucket owns one random direction.
        self._n_buckets = 4096
        self._codebook = rng.normal(scale=1.0, size=(self._n_buckets, dim))

    def _bucket(self, piece: str) -> int:
        digest = hashlib.blake2b(piece.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "little") % self._n_buckets

    def vector(self, token: str) -> np.ndarray:
        """Embed one token."""
        if not token:
            return np.zeros(self.dim, dtype=np.float64)
        padded = f"#{token}#"
        pieces = [token]
        for n in self.n_grams:
            pieces.extend(padded[i: i + n] for i in range(len(padded) - n + 1))
        accumulator = np.zeros(self.dim, dtype=np.float64)
        for piece in pieces:
            accumulator += self._codebook[self._bucket(piece)]
        return accumulator / max(1, len(pieces))

    def mean_vector(self, tokens: Sequence[str]) -> np.ndarray:
        """Mean embedding of a token sequence."""
        if not tokens:
            return np.zeros(self.dim, dtype=np.float64)
        return np.mean([self.vector(t) for t in tokens], axis=0)

    def embed_sequence(self, tokens: Sequence[str], max_len: int | None = None) -> np.ndarray:
        """Embed a token sequence as a (len, dim) matrix, optionally truncated."""
        if max_len is not None:
            tokens = list(tokens)[:max_len]
        if not tokens:
            return np.zeros((0, self.dim), dtype=np.float64)
        return np.stack([self.vector(t) for t in tokens])
