"""Token vocabulary with frequency-based pruning."""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator

__all__ = ["Vocabulary"]


class Vocabulary:
    """A token -> id mapping built from token streams.

    Tokens below ``min_count`` or beyond ``max_size`` (by frequency) are
    dropped; unknown tokens map to ``None`` from :meth:`get` and are skipped
    by :meth:`encode`.
    """

    def __init__(self, min_count: int = 1, max_size: int | None = None) -> None:
        if min_count < 1:
            raise ValueError("min_count must be >= 1")
        self.min_count = min_count
        self.max_size = max_size
        self._token_to_id: dict[str, int] = {}
        self._id_to_token: list[str] = []
        self._counts: Counter = Counter()
        self._finalized = False

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_token)

    @property
    def counts(self) -> Counter:
        """Raw token counts observed during :meth:`add`."""
        return self._counts

    def add(self, tokens: Iterable[str]) -> None:
        """Accumulate token counts; call :meth:`finalize` when done."""
        if self._finalized:
            raise RuntimeError("vocabulary is already finalized")
        self._counts.update(tokens)

    def finalize(self) -> "Vocabulary":
        """Freeze the vocabulary, applying min_count / max_size pruning."""
        if self._finalized:
            return self
        items = [
            (token, count)
            for token, count in self._counts.items()
            if count >= self.min_count
        ]
        items.sort(key=lambda kv: (-kv[1], kv[0]))
        if self.max_size is not None:
            items = items[: self.max_size]
        self._id_to_token = [token for token, _ in items]
        self._token_to_id = {token: i for i, token in enumerate(self._id_to_token)}
        self._finalized = True
        return self

    @classmethod
    def from_tokens(
        cls,
        tokens: Iterable[str],
        min_count: int = 1,
        max_size: int | None = None,
    ) -> "Vocabulary":
        """Rebuild a finalised vocabulary from an ordered token list.

        Used when restoring a persisted model: the token order *is* the id
        assignment, so no counts are needed (and none survive).
        """
        vocabulary = cls(min_count=min_count, max_size=max_size)
        vocabulary._id_to_token = [str(t) for t in tokens]
        vocabulary._token_to_id = {
            token: i for i, token in enumerate(vocabulary._id_to_token)
        }
        vocabulary._finalized = True
        return vocabulary

    @classmethod
    def from_documents(
        cls,
        documents: Iterable[Iterable[str]],
        min_count: int = 1,
        max_size: int | None = None,
    ) -> "Vocabulary":
        """Build and finalise a vocabulary from tokenised documents."""
        vocabulary = cls(min_count=min_count, max_size=max_size)
        for document in documents:
            vocabulary.add(document)
        return vocabulary.finalize()

    def get(self, token: str) -> int | None:
        """Return the id of a token, or None when out of vocabulary."""
        return self._token_to_id.get(token)

    def token(self, index: int) -> str:
        """Return the token with a given id."""
        return self._id_to_token[index]

    def encode(self, tokens: Iterable[str]) -> list[int]:
        """Map tokens to ids, silently dropping out-of-vocabulary tokens."""
        ids = []
        for token in tokens:
            token_id = self._token_to_id.get(token)
            if token_id is not None:
                ids.append(token_id)
        return ids
