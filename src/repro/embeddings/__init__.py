"""Distributional embedding substrate.

Sherlock's Word and Para features rely on pre-trained GloVe word vectors and
gensim paragraph vectors.  Neither is available offline, so this package
trains the closest equivalent directly on the corpus: PPMI + truncated-SVD
word embeddings over cell-value tokens, and idf-weighted mean word vectors as
paragraph (column) embeddings.  A hashing embedder is provided as a
training-free fallback and as the token representation of the attention
column model.
"""

from repro.embeddings.tokenizer import tokenize, tokenize_values
from repro.embeddings.vocabulary import Vocabulary
from repro.embeddings.word2vec import WordEmbeddingModel
from repro.embeddings.paragraph import ParagraphEmbedder
from repro.embeddings.hashing import HashingEmbedder

__all__ = [
    "tokenize",
    "tokenize_values",
    "Vocabulary",
    "WordEmbeddingModel",
    "ParagraphEmbedder",
    "HashingEmbedder",
]
