"""Paragraph (column-level) embeddings.

Sherlock's Para features come from a gensim Doc2Vec model over whole-column
text.  The offline substitute represents a column as the idf-weighted mean of
its token word vectors — the standard strong baseline for paragraph vectors —
optionally followed by a random projection to decouple the paragraph
dimensionality from the word dimensionality.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.embeddings.word2vec import WordEmbeddingModel

__all__ = ["ParagraphEmbedder"]


class ParagraphEmbedder:
    """Column/document embedding built on a word embedding model."""

    def __init__(
        self,
        word_model: WordEmbeddingModel,
        dim: int | None = None,
        seed: int = 0,
    ) -> None:
        self.word_model = word_model
        self.dim = dim or word_model.dim
        self.seed = seed
        self._idf: dict[str, float] = {}
        self._projection: np.ndarray | None = None
        self._fitted = False

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._fitted

    def fit(self, documents: Iterable[Sequence[str]]) -> "ParagraphEmbedder":
        """Estimate idf weights (and the projection) from tokenised documents."""
        documents = [list(doc) for doc in documents]
        n_docs = max(1, len(documents))
        document_frequency: dict[str, int] = {}
        for document in documents:
            for token in set(document):
                document_frequency[token] = document_frequency.get(token, 0) + 1
        self._idf = {
            token: math.log((1 + n_docs) / (1 + freq)) + 1.0
            for token, freq in document_frequency.items()
        }
        if self.dim != self.word_model.dim:
            rng = np.random.default_rng(self.seed)
            self._projection = rng.normal(
                scale=1.0 / math.sqrt(self.word_model.dim),
                size=(self.word_model.dim, self.dim),
            )
        self._fitted = True
        return self

    def embed(self, tokens: Sequence[str]) -> np.ndarray:
        """Embed one tokenised column/document."""
        if not self._fitted:
            raise RuntimeError("paragraph embedder is not fitted")
        if not self.word_model.is_fitted:
            raise RuntimeError("underlying word model is not fitted")
        accumulator = np.zeros(self.word_model.dim, dtype=np.float64)
        total_weight = 0.0
        for token in tokens:
            weight = self._idf.get(token, 1.0)
            vector = self.word_model.vector(token)
            accumulator += weight * vector
            total_weight += weight
        if total_weight > 0:
            accumulator /= total_weight
        if self._projection is not None:
            accumulator = accumulator @ self._projection
        return accumulator.astype(np.float64)
