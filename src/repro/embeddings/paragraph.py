"""Paragraph (column-level) embeddings.

Sherlock's Para features come from a gensim Doc2Vec model over whole-column
text.  The offline substitute represents a column as the idf-weighted mean of
its token word vectors — the standard strong baseline for paragraph vectors —
optionally followed by a random projection to decouple the paragraph
dimensionality from the word dimensionality.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.embeddings.word2vec import WordEmbeddingModel

__all__ = ["ParagraphEmbedder"]


class ParagraphEmbedder:
    """Column/document embedding built on a word embedding model."""

    def __init__(
        self,
        word_model: WordEmbeddingModel,
        dim: int | None = None,
        seed: int = 0,
    ) -> None:
        self.word_model = word_model
        self.dim = dim or word_model.dim
        self.seed = seed
        self._idf: dict[str, float] = {}
        self._projection: np.ndarray | None = None
        self._fitted = False

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._fitted

    @property
    def projection(self) -> np.ndarray | None:
        """The random projection matrix (None when dims already match)."""
        return self._projection

    def idf_weight(self, token: str) -> float:
        """The idf weight of a token (1.0 for tokens unseen during fit)."""
        return self._idf.get(token, 1.0)

    def fit(self, documents: Iterable[Sequence[str]]) -> "ParagraphEmbedder":
        """Estimate idf weights (and the projection) from tokenised documents."""
        documents = [list(doc) for doc in documents]
        n_docs = max(1, len(documents))
        document_frequency: dict[str, int] = {}
        for document in documents:
            for token in set(document):
                document_frequency[token] = document_frequency.get(token, 0) + 1
        self._idf = {
            token: math.log((1 + n_docs) / (1 + freq)) + 1.0
            for token, freq in document_frequency.items()
        }
        if self.dim != self.word_model.dim:
            rng = np.random.default_rng(self.seed)
            self._projection = rng.normal(
                scale=1.0 / math.sqrt(self.word_model.dim),
                size=(self.word_model.dim, self.dim),
            )
        self._fitted = True
        return self

    # -------------------------------------------------------- serialisation

    def config_dict(self) -> dict:
        """JSON-serialisable constructor configuration."""
        return {"dim": self.dim, "seed": self.seed}

    def state_dict(self) -> dict[str, np.ndarray]:
        """Serialisable fitted state (idf table + optional projection)."""
        if not self._fitted:
            raise RuntimeError("paragraph embedder is not fitted")
        tokens = sorted(self._idf)
        state = {
            "idf_tokens": np.array(tokens, dtype=np.str_),
            "idf_values": np.array([self._idf[t] for t in tokens], dtype=np.float64),
        }
        if self._projection is not None:
            state["projection"] = self._projection.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore state produced by :meth:`state_dict`."""
        tokens = state["idf_tokens"].tolist()
        values = np.asarray(state["idf_values"], dtype=np.float64)
        self._idf = {token: float(value) for token, value in zip(tokens, values)}
        if "projection" in state:
            # Zero-copy: shared-memory serving hands in read-only views and
            # embedding only ever multiplies by the projection.
            self._projection = np.asarray(state["projection"], dtype=np.float64)
        else:
            self._projection = None
        self._fitted = True

    def embed(self, tokens: Sequence[str]) -> np.ndarray:
        """Embed one tokenised column/document."""
        if not self._fitted:
            raise RuntimeError("paragraph embedder is not fitted")
        if not self.word_model.is_fitted:
            raise RuntimeError("underlying word model is not fitted")
        accumulator = np.zeros(self.word_model.dim, dtype=np.float64)
        total_weight = 0.0
        for token in tokens:
            weight = self._idf.get(token, 1.0)
            vector = self.word_model.vector(token)
            accumulator += weight * vector
            total_weight += weight
        if total_weight > 0:
            accumulator /= total_weight
        if self._projection is not None:
            accumulator = accumulator @ self._projection
        return accumulator.astype(np.float64)
