"""CRF training loop.

Trains the pairwise potential matrix by maximising the summed per-table
log-likelihood with Adam, mirroring the paper's setting (batch size of 10
tables, learning rate 1e-2, 15 epochs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.crf.linear_chain import LinearChainCRF
from repro.nn.optim import Adam
from repro.nn.parameter import Parameter

__all__ = ["CRFTrainingExample", "CRFTrainer"]


@dataclass
class CRFTrainingExample:
    """One table: its unary potential matrix and gold label indices."""

    unary: np.ndarray
    labels: np.ndarray


class CRFTrainer:
    """Adam-based trainer for :class:`LinearChainCRF` pairwise potentials."""

    def __init__(
        self,
        crf: LinearChainCRF,
        learning_rate: float = 1e-2,
        n_epochs: int = 15,
        batch_size: int = 10,
        l2: float = 0.0,
        seed: int = 0,
        verbose: bool = False,
    ) -> None:
        self.crf = crf
        self.learning_rate = learning_rate
        self.n_epochs = n_epochs
        self.batch_size = batch_size
        self.l2 = l2
        self.seed = seed
        self.verbose = verbose
        self.history: list[float] = []

    def fit(self, examples: Sequence[CRFTrainingExample]) -> LinearChainCRF:
        """Train the CRF on a set of tables; returns the trained CRF."""
        examples = [e for e in examples if e.unary.shape[0] > 0]
        if not examples:
            return self.crf
        parameter = Parameter(self.crf.pairwise.copy(), name="crf.pairwise")
        optimizer = Adam(
            [parameter], learning_rate=self.learning_rate, weight_decay=self.l2
        )
        rng = np.random.default_rng(self.seed)
        for _ in range(self.n_epochs):
            order = rng.permutation(len(examples))
            epoch_ll = 0.0
            for start in range(0, len(order), self.batch_size):
                batch = order[start: start + self.batch_size]
                optimizer.zero_grad()
                self.crf.pairwise = parameter.data
                for index in batch:
                    example = examples[index]
                    epoch_ll += self.crf.log_likelihood(example.unary, example.labels)
                    # Gradient ascent on log-likelihood == descent on negative.
                    parameter.grad -= self.crf.gradients(example.unary, example.labels)
                parameter.grad /= max(1, len(batch))
                optimizer.step()
            self.crf.pairwise = parameter.data
            self.history.append(epoch_ll / len(examples))
            if self.verbose:  # pragma: no cover - logging only
                print(f"crf epoch ll={self.history[-1]:.4f}")
        self.crf.pairwise = parameter.data
        return self.crf
