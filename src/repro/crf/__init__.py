"""Linear-chain conditional random field (the structured-prediction module).

Unary potentials are the (log of) column-wise prediction scores from the
topic-aware model; pairwise potentials are a trainable ``|T| x |T|`` matrix
initialised from adjacent-column co-occurrence counts.  Training maximises
the per-table log-likelihood with Adam; prediction uses Viterbi decoding.
"""

from repro.crf.linear_chain import LinearChainCRF
from repro.crf.trainer import CRFTrainer, CRFTrainingExample

__all__ = ["LinearChainCRF", "CRFTrainer", "CRFTrainingExample"]
