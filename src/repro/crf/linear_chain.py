"""Linear-chain CRF with exact inference.

For a table with columns ``c_1 .. c_m`` and candidate types ``t_1 .. t_m``:

.. math::

    P(t | c) = \\frac{1}{Z(c)} \\exp\\Big(\\sum_i \\psi_{UNI}(t_i, c_i)
               + \\sum_i \\psi_{PAIR}(t_i, t_{i+1})\\Big)

``Z`` is computed exactly with the forward algorithm (log-sum-exp), the MAP
sequence with Viterbi, and pairwise/unary marginals with forward-backward —
all in log-space for numerical stability.
"""

from __future__ import annotations

import numpy as np

from scipy.special import logsumexp

from repro.obs import span

__all__ = ["LinearChainCRF"]


class LinearChainCRF:
    """Linear-chain CRF over semantic-type sequences.

    Parameters
    ----------
    n_states:
        Number of semantic types.
    pairwise:
        Optional initial pairwise potential matrix of shape
        ``(n_states, n_states)``; defaults to zeros.
    unary_weight:
        Scalar multiplier applied to unary potentials (fixed to 1 in the
        paper's setting; exposed for ablations).
    """

    def __init__(
        self,
        n_states: int,
        pairwise: np.ndarray | None = None,
        unary_weight: float = 1.0,
    ) -> None:
        if n_states < 1:
            raise ValueError("n_states must be positive")
        self.n_states = n_states
        if pairwise is None:
            pairwise = np.zeros((n_states, n_states), dtype=np.float64)
        pairwise = np.asarray(pairwise, dtype=np.float64)
        if pairwise.shape != (n_states, n_states):
            raise ValueError("pairwise matrix has wrong shape")
        self.pairwise = pairwise.copy()
        self.unary_weight = float(unary_weight)

    # ----------------------------------------------------------- inference

    def _check_unary(self, unary: np.ndarray) -> np.ndarray:
        unary = np.asarray(unary, dtype=np.float64)
        if unary.ndim != 2 or unary.shape[1] != self.n_states:
            raise ValueError(
                f"unary potentials must have shape (m, {self.n_states})"
            )
        return self.unary_weight * unary

    def log_partition(self, unary: np.ndarray) -> float:
        """Log of the normalisation constant Z(c) via the forward algorithm."""
        unary = self._check_unary(unary)
        alpha = unary[0].copy()
        for i in range(1, unary.shape[0]):
            alpha = unary[i] + logsumexp(alpha[:, None] + self.pairwise, axis=0)
        return float(logsumexp(alpha))

    def score(self, unary: np.ndarray, labels: np.ndarray) -> float:
        """Unnormalised log-score of a label sequence."""
        unary = self._check_unary(unary)
        labels = np.asarray(labels, dtype=np.int64)
        if labels.shape[0] != unary.shape[0]:
            raise ValueError("labels and unary lengths differ")
        total = float(unary[np.arange(unary.shape[0]), labels].sum())
        for a, b in zip(labels, labels[1:]):
            total += float(self.pairwise[a, b])
        return total

    def log_likelihood(self, unary: np.ndarray, labels: np.ndarray) -> float:
        """Log-probability of the gold label sequence."""
        return self.score(unary, labels) - self.log_partition(unary)

    def forward_backward(self, unary: np.ndarray) -> tuple[np.ndarray, np.ndarray, float]:
        """Forward and backward log-messages and the log-partition."""
        unary = self._check_unary(unary)
        m = unary.shape[0]
        alpha = np.zeros((m, self.n_states))
        beta = np.zeros((m, self.n_states))
        alpha[0] = unary[0]
        for i in range(1, m):
            alpha[i] = unary[i] + logsumexp(
                alpha[i - 1][:, None] + self.pairwise, axis=0
            )
        beta[m - 1] = 0.0
        for i in range(m - 2, -1, -1):
            beta[i] = logsumexp(
                self.pairwise + (unary[i + 1] + beta[i + 1])[None, :], axis=1
            )
        log_z = float(logsumexp(alpha[m - 1]))
        return alpha, beta, log_z

    def marginals(self, unary: np.ndarray) -> np.ndarray:
        """Per-column posterior marginals P(t_i | c)."""
        alpha, beta, log_z = self.forward_backward(unary)
        return np.exp(alpha + beta - log_z)

    def pairwise_marginals(self, unary: np.ndarray) -> np.ndarray:
        """Posterior pairwise marginals P(t_i, t_{i+1} | c), shape (m-1, S, S)."""
        scaled = self._check_unary(unary)
        alpha, beta, log_z = self.forward_backward(unary)
        m = scaled.shape[0]
        result = np.zeros((max(0, m - 1), self.n_states, self.n_states))
        for i in range(m - 1):
            log_joint = (
                alpha[i][:, None]
                + self.pairwise
                + (scaled[i + 1] + beta[i + 1])[None, :]
                - log_z
            )
            result[i] = np.exp(log_joint)
        return result

    def viterbi(self, unary: np.ndarray) -> np.ndarray:
        """MAP decoding of the most probable type sequence."""
        unary = self._check_unary(unary)
        m = unary.shape[0]
        if m == 0:
            return np.zeros(0, dtype=np.int64)
        delta = unary[0].copy()
        backpointers = np.zeros((m, self.n_states), dtype=np.int64)
        for i in range(1, m):
            scores = delta[:, None] + self.pairwise
            backpointers[i] = np.argmax(scores, axis=0)
            delta = unary[i] + scores[backpointers[i], np.arange(self.n_states)]
        best = np.zeros(m, dtype=np.int64)
        best[m - 1] = int(np.argmax(delta))
        for i in range(m - 2, -1, -1):
            best[i] = backpointers[i + 1, best[i + 1]]
        return best

    def viterbi_batch(
        self, unaries: np.ndarray, lengths: np.ndarray
    ) -> list[np.ndarray]:
        """MAP-decode many chains at once over a padded unary tensor.

        Parameters
        ----------
        unaries:
            Padded unary potentials of shape ``(n_tables, max_cols,
            n_states)``.  Row ``b`` carries the real potentials of table
            ``b`` in positions ``0 .. lengths[b]-1``; padded positions are
            never read, so their fill value is irrelevant (zeros, ``nan``
            and ``-inf`` all decode identically).
        lengths:
            Per-table chain lengths, shape ``(n_tables,)``.

        Returns
        -------
        One int64 label array per table, trimmed to its true length and
        bit-identical to calling :meth:`viterbi` on that table's own
        ``(lengths[b], n_states)`` slice: the recurrence maxima and the
        backtrace use ``argmax`` over the same state axis in the same
        order, so even tie-breaking matches the per-table loop exactly.

        The recurrence runs one vectorised step per column position across
        every table simultaneously (``max(lengths)`` steps total instead of
        ``sum(lengths)``), with finished chains carrying their final
        ``delta`` forward unchanged (length masking).
        """
        with span("decode.viterbi", n_chains=len(unaries)):
            return self._viterbi_batch_impl(unaries, lengths)

    def _viterbi_batch_impl(
        self, unaries: np.ndarray, lengths: np.ndarray
    ) -> list[np.ndarray]:
        unaries = np.asarray(unaries, dtype=np.float64)
        if unaries.ndim != 3 or unaries.shape[2] != self.n_states:
            raise ValueError(
                f"unaries must have shape (n_tables, max_cols, {self.n_states})"
            )
        lengths = np.asarray(lengths, dtype=np.int64)
        n_tables, max_cols, _ = unaries.shape
        if lengths.shape != (n_tables,):
            raise ValueError("lengths must have one entry per table")
        if n_tables and (lengths.min() < 0 or lengths.max() > max_cols):
            raise ValueError("lengths must lie in [0, max_cols]")
        if n_tables == 0:
            return []
        max_len = int(lengths.max())
        if max_len == 0:
            return [np.zeros(0, dtype=np.int64) for _ in range(n_tables)]

        scaled = self.unary_weight * unaries
        # delta[b] is table b's running Viterbi scores; rows whose chain has
        # already ended simply stop being updated (length masking), so padded
        # positions — whatever their fill value, zeros or NaN — are never
        # read.  Scores are laid out as [chain, next, prev] (the transposed
        # pairwise matrix) so both reductions run over the contiguous last
        # axis, and each step only computes the chains still active at that
        # position.
        delta = scaled[:, 0].copy()
        pairwise_t = np.ascontiguousarray(self.pairwise.T)
        backpointers = np.zeros((n_tables, max_len, self.n_states), dtype=np.int64)
        for i in range(1, max_len):
            active = np.flatnonzero(lengths > i)
            d = delta if active.size == n_tables else delta[active]
            scores = d[:, None, :] + pairwise_t[None, :, :]
            pointers = np.argmax(scores, axis=2)
            best = np.take_along_axis(scores, pointers[:, :, None], axis=2)[:, :, 0]
            if active.size == n_tables:
                backpointers[:, i] = pointers
                delta = scaled[:, i] + best
            else:
                backpointers[active, i] = pointers
                delta[active] = scaled[active, i] + best

        labels = np.zeros((n_tables, max_len), dtype=np.int64)
        last = np.maximum(lengths - 1, 0)
        labels[np.arange(n_tables), last] = np.argmax(delta, axis=1)
        for i in range(max_len - 2, -1, -1):
            follow = i < lengths - 1  # position i+1 is real, its pointer valid
            nxt = backpointers[np.arange(n_tables), i + 1, labels[:, i + 1]]
            labels[:, i] = np.where(follow, nxt, labels[:, i])
        return [labels[b, : lengths[b]].copy() for b in range(n_tables)]

    # ------------------------------------------------------------ learning

    def gradients(self, unary: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Gradient of the log-likelihood with respect to the pairwise matrix.

        Equals observed adjacent-pair counts minus expected counts under the
        model's posterior (the classic CRF moment-matching gradient).
        """
        labels = np.asarray(labels, dtype=np.int64)
        grad = np.zeros_like(self.pairwise)
        for a, b in zip(labels, labels[1:]):
            grad[a, b] += 1.0
        if labels.shape[0] > 1:
            grad -= self.pairwise_marginals(unary).sum(axis=0)
        return grad

    # -------------------------------------------------------- serialisation

    def config_dict(self) -> dict:
        """JSON-serialisable constructor configuration."""
        return {"n_states": self.n_states, "unary_weight": self.unary_weight}

    def state_dict(self) -> dict[str, np.ndarray]:
        """Serialisable state."""
        return {
            "pairwise": self.pairwise.copy(),
            "unary_weight": np.array([self.unary_weight]),
        }

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore state produced by :meth:`state_dict`."""
        self.pairwise = np.asarray(state["pairwise"], dtype=np.float64).copy()
        if "unary_weight" in state:
            self.unary_weight = float(np.asarray(state["unary_weight"]).ravel()[0])

    @classmethod
    def from_cooccurrence(
        cls,
        cooccurrence: np.ndarray,
        scale: float = 1.0,
        smoothing: float = 1.0,
    ) -> "LinearChainCRF":
        """Initialise pairwise potentials from adjacent co-occurrence counts.

        The paper initialises the CRF pairwise parameters with the column
        co-occurrence matrix computed from a held-out WebTables sample; log
        counts keep the potentials on the same scale as log-probability
        unaries.
        """
        cooccurrence = np.asarray(cooccurrence, dtype=np.float64)
        pairwise = scale * np.log(cooccurrence + smoothing)
        pairwise -= pairwise.mean()
        return cls(n_states=cooccurrence.shape[0], pairwise=pairwise)
