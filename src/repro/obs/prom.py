"""Prometheus text-format exposition for the serving metrics snapshot.

``GET /metrics`` returns the nested JSON snapshot the dashboards and tests
consume; ``GET /metrics.prom`` renders the *same* snapshot in the
Prometheus text exposition format (version 0.0.4) so a stock Prometheus
scrape job can ingest it without an exporter sidecar.  The mapping is
mechanical and total:

* every numeric leaf of the nested snapshot becomes one gauge sample whose
  name is the underscore-joined path (``latency_ms.p99`` →
  ``repro_latency_ms_p99``);
* the ``stages`` subtree (per-stage tracing aggregates) is special-cased
  into label-style samples — ``repro_stage_p99_ms{stage="forward"}`` — so
  stage names stay one queryable dimension instead of exploding the metric
  namespace;
* booleans render as 0/1, non-numeric leaves (version strings, worker
  lists) are skipped — Prometheus has no string samples.

Stdlib only; no client library.
"""

from __future__ import annotations

import re

__all__ = ["render_prometheus"]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")

#: Snapshot subtree rendered with a ``stage`` label instead of flattening.
_STAGE_KEY = "stages"


def _sanitize(part: str) -> str:
    """A snapshot key as a legal Prometheus metric-name fragment."""
    cleaned = _NAME_OK.sub("_", str(part))
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _escape_label(value: str) -> str:
    """Escape a label value per the text exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    return repr(float(value))


def _numeric(value) -> bool:
    return isinstance(value, (bool, int, float))


def _flatten(prefix: list[str], node, samples: list[tuple[str, str | None, str]]):
    """Collect ``(metric_name, label, value)`` samples from a nested dict."""
    if isinstance(node, dict):
        for key, child in node.items():
            _flatten(prefix + [_sanitize(key)], child, samples)
    elif _numeric(node):
        samples.append(("_".join(prefix), None, _format_value(node)))


def render_prometheus(snapshot: dict, namespace: str = "repro") -> str:
    """Render a metrics snapshot in Prometheus text exposition format.

    Parameters
    ----------
    snapshot:
        The nested dict served on ``/metrics`` (any depth; only numeric
        leaves are rendered).  A ``stages`` key matching the
        :meth:`repro.obs.StageAggregates.snapshot` shape is rendered with a
        ``stage`` label.
    namespace:
        Prefix for every metric name.

    Examples:
        >>> text = render_prometheus(
        ...     {
        ...         "uptime_seconds": 2.0,
        ...         "latency_ms": {"p99": 1.5},
        ...         "stages": {"forward": {"count": 3, "p99_ms": 0.5}},
        ...     }
        ... )
        >>> print(text, end="")
        # TYPE repro_uptime_seconds gauge
        repro_uptime_seconds 2.0
        # TYPE repro_latency_ms_p99 gauge
        repro_latency_ms_p99 1.5
        # TYPE repro_stage_count gauge
        repro_stage_count{stage="forward"} 3.0
        # TYPE repro_stage_p99_ms gauge
        repro_stage_p99_ms{stage="forward"} 0.5
    """
    samples: list[tuple[str, str | None, str]] = []
    for key, node in snapshot.items():
        if key == _STAGE_KEY and isinstance(node, dict):
            for stage, fields in node.items():
                if not isinstance(fields, dict):
                    continue
                label = f'stage="{_escape_label(str(stage))}"'
                for field, value in fields.items():
                    if _numeric(value):
                        samples.append(
                            (
                                f"stage_{_sanitize(field)}",
                                label,
                                _format_value(value),
                            )
                        )
        else:
            _flatten([_sanitize(key)], node, samples)

    # The exposition format wants every sample of a metric in one group
    # under its TYPE line, so regroup by metric name (first-seen order).
    grouped: dict[str, list[str]] = {}
    for name, label, value in samples:
        metric = f"{namespace}_{name}"
        body = f"{metric} {value}" if label is None else f"{metric}{{{label}}} {value}"
        grouped.setdefault(metric, []).append(body)

    lines: list[str] = []
    for metric, bodies in grouped.items():
        lines.append(f"# TYPE {metric} gauge")
        lines.extend(bodies)
    return "\n".join(lines) + "\n" if lines else ""
