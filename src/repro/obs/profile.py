"""Hot-path profiling: replay a corpus and attribute wall time to stages.

``repro-sato profile`` answers the question the ROADMAP's compiled-kernel
item opens with: *which stage actually dominates a served request?*  It
replays a corpus through a real :class:`~repro.serving.Predictor` in
micro-batch-sized slices, with the process tracer recording every
instrumented stage (codepoint featurization, embedding gather, topic
inference, column-network forward, Viterbi/argmax decode, JSON encode),
then reduces the spans into:

* a **flame-style table** — stages nested by their observed parent/child
  structure, each with a share bar, counts and percentiles; and
* a **JSON report** (written under ``benchmarks/results/``) whose
  ``coverage`` field proves the accounting: the top-level pipeline stages
  must explain ≥90% of the measured wall time, or the profile is lying by
  omission.

The stage *shares* in the report are the artifact later optimisation PRs
cite — a compiled kernel should move its stage's share, visibly, in this
exact output.
"""

from __future__ import annotations

import time
from collections import Counter
from typing import Sequence

from repro.obs.trace import Span, Tracer, get_tracer

__all__ = ["COVERAGE_STAGES", "profile_predictor", "render_flame"]

#: Sequential, non-overlapping top-level stages of one request: their
#: summed time over measured wall time defines the report's ``coverage``.
COVERAGE_STAGES = (
    "featurize",
    "topic.infer",
    "forward",
    "decode",
    "encode.json",
)


def profile_predictor(
    predictor,
    tables: Sequence,
    batch_size: int = 8,
    tracer: Tracer | None = None,
    model: str | None = None,
    suite: str | None = None,
) -> dict:
    """Replay ``tables`` through ``predictor`` and profile every stage.

    The replay mirrors the serving hot path: tables go through
    ``predict_tables`` in ``batch_size`` slices (one micro-batch each,
    wrapped in a ``request`` root span) and every batch's labels are JSON
    encoded under ``encode.json``, exactly as the HTTP server would.  The
    tracer is reset first so the report reflects only this replay.

    Returns the JSON-ready report dict (stages, shares, coverage).

    Examples:
        >>> from repro.tables import Column, Table
        >>> class Fake:
        ...     def predict_tables(self, tables):
        ...         return [["name"] * t.n_columns for t in tables]
        >>> table = Table(columns=[Column(values=["x"]), Column(values=["y"])])
        >>> report = profile_predictor(Fake(), [table], batch_size=4)
        >>> report["n_tables"], report["n_columns"]
        (1, 2)
        >>> 0.0 <= report["coverage"] <= 1.0
        True
        >>> "encode.json" in report["stages"]
        True
    """
    import json

    tracer = tracer if tracer is not None else get_tracer()
    was_enabled = tracer.enabled
    tracer.enabled = True
    tracer.reset()

    n_tables = 0
    n_columns = 0
    started = time.perf_counter()
    try:
        for offset in range(0, len(tables), batch_size):
            batch = list(tables[offset : offset + batch_size])
            with tracer.span("request", batch_size=len(batch)):
                labels = predictor.predict_tables(batch)
                with tracer.span("encode.json"):
                    for table_labels in labels:
                        json.dumps({"labels": table_labels})
            n_tables += len(batch)
            n_columns += sum(table.n_columns for table in batch)
    finally:
        wall = time.perf_counter() - started
        tracer.enabled = was_enabled

    stages = tracer.stages.snapshot()
    covered = sum(
        stages[name]["total_seconds"] for name in COVERAGE_STAGES if name in stages
    )
    shares = {
        name: stages[name]["total_seconds"] / wall
        for name in COVERAGE_STAGES
        if name in stages and wall > 0.0
    }
    return {
        "model": model,
        "suite": suite,
        "n_tables": n_tables,
        "n_columns": n_columns,
        "batch_size": batch_size,
        "wall_seconds": wall,
        "coverage": covered / wall if wall > 0.0 else 0.0,
        "stage_shares": shares,
        "stages": stages,
        "tree": _stage_tree(tracer.spans()),
    }


def _stage_tree(spans: Sequence[Span]) -> dict[str, str | None]:
    """Map each stage name to its most common parent stage name.

    Spans record parent *IDs*; for display we want the stable stage-level
    hierarchy (``decode.viterbi`` under ``decode`` under ``request``), so
    each stage votes with its observed parents and the majority wins.
    """
    names = {span.span_id: span.name for span in spans}
    votes: dict[str, Counter] = {}
    for span in spans:
        parent = names.get(span.parent_id) if span.parent_id else None
        votes.setdefault(span.name, Counter())[parent] += 1
    return {name: counter.most_common(1)[0][0] for name, counter in votes.items()}


def render_flame(report: dict, width: int = 30) -> str:
    """Render a report as a flame-style text table (stdout of the CLI).

    Stages are nested by the report's parent tree and sorted by cumulative
    time; each row shows a share bar scaled to the root stage, counts and
    window percentiles.

    Examples:
        >>> report = {
        ...     "wall_seconds": 0.01,
        ...     "coverage": 0.95,
        ...     "stages": {
        ...         "request": {"count": 1, "total_seconds": 0.01,
        ...                     "share": 1.0, "p50_ms": 10.0, "p95_ms": 10.0},
        ...         "forward": {"count": 1, "total_seconds": 0.004,
        ...                     "share": 0.4, "p50_ms": 4.0, "p95_ms": 4.0},
        ...     },
        ...     "tree": {"request": None, "forward": "request"},
        ... }
        >>> print(render_flame(report, width=10))
        stage                      share  count    total_ms    p50_ms    p95_ms
        request                   100.0%      1        10.0      10.0      10.0  ██████████
          forward                  40.0%      1         4.0       4.0       4.0  ████
        coverage: 95.0% of 0.010s wall
    """
    stages: dict = report["stages"]
    tree: dict = report.get("tree", {})
    children: dict[str | None, list[str]] = {}
    for name in stages:
        parent = tree.get(name)
        if parent is not None and parent not in stages:
            parent = None
        children.setdefault(parent, []).append(name)
    for siblings in children.values():
        siblings.sort(key=lambda n: stages[n]["total_seconds"], reverse=True)

    lines = [
        f"{'stage':<24}{'share':>8}{'count':>7}{'total_ms':>12}"
        f"{'p50_ms':>10}{'p95_ms':>10}"
    ]

    def emit(name: str, depth: int) -> None:
        stage = stages[name]
        share = stage.get("share", 0.0)
        bar = "█" * max(1, round(share * width)) if share > 0 else ""
        label = "  " * depth + name
        lines.append(
            f"{label:<24}{share * 100:>7.1f}%{stage['count']:>7}"
            f"{stage['total_seconds'] * 1e3:>12.1f}"
            f"{stage.get('p50_ms', 0.0):>10.1f}{stage.get('p95_ms', 0.0):>10.1f}"
            f"  {bar}"
        )
        for child in children.get(name, []):
            emit(child, depth + 1)

    for root in children.get(None, []):
        emit(root, 0)
    lines.append(
        f"coverage: {report.get('coverage', 0.0) * 100:.1f}% of "
        f"{report.get('wall_seconds', 0.0):.3f}s wall"
    )
    return "\n".join(lines)
