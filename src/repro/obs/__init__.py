"""Observability for the serving stack: tracing, telemetry, profiling.

Dependency-free (stdlib only).  Four pieces:

* :mod:`repro.obs.trace` — thread/process-safe :class:`Tracer` with
  nesting ``span()`` context managers, cross-process span shipping for the
  fleet, and always-on bounded-window per-stage aggregates.
* :mod:`repro.obs.prom` — Prometheus text exposition of the metrics
  snapshot (``GET /metrics.prom``).
* :mod:`repro.obs.logs` — structured JSON request logs
  (``serve --log-format json``).
* :mod:`repro.obs.profile` — corpus replay profiling behind
  ``repro-sato profile`` (flame table + coverage-checked JSON report).

See ``docs/observability.md`` for the span taxonomy and runbooks.
"""

from repro.obs.logs import RequestLogger
from repro.obs.profile import COVERAGE_STAGES, profile_predictor, render_flame
from repro.obs.prom import render_prometheus
from repro.obs.trace import (
    Span,
    SpanContext,
    StageAggregates,
    Tracer,
    get_tracer,
    new_span_id,
    new_trace_id,
    observe,
    set_enabled,
    span,
)

__all__ = [
    "COVERAGE_STAGES",
    "RequestLogger",
    "Span",
    "SpanContext",
    "StageAggregates",
    "Tracer",
    "get_tracer",
    "new_span_id",
    "new_trace_id",
    "observe",
    "profile_predictor",
    "render_flame",
    "render_prometheus",
    "set_enabled",
    "span",
]
