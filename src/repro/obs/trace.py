"""Dependency-free tracing for the online serving path.

The serving stack is profiled at the *stage* level: the codepoint pass, the
embedding gather, the LDA topic inference, the column-network forward, the
batched Viterbi decode and the JSON encode each get a named span, so
``/metrics`` can answer which kernel actually dominates a request instead
of reporting one opaque end-to-end latency.  Everything here is stdlib
only and built for an always-on deployment:

* :class:`Tracer` hands out ``with tracer.span("featurize.char"):`` context
  managers timed on the monotonic performance counter.  Spans nest through
  a :mod:`contextvars` variable, so the parent/child structure follows the
  code — across ``await`` points on the event loop and, via
  :meth:`Tracer.attach`, across thread and process hops.
* Every finished span feeds :class:`StageAggregates`: bounded-window
  per-stage latency percentiles plus cumulative totals, cheap enough to
  leave on in production (the overhead contract is enforced by
  ``benchmarks/test_obs_overhead.py``).
* A bounded ring buffer keeps recently finished spans so tests, the
  profiling CLI and the fleet front-end can reassemble whole traces by
  trace ID.  Worker processes ship their spans back over the request pipe
  (:meth:`Span.to_wire`) and the front-end re-parents them with
  :meth:`Tracer.adopt`, so one trace covers the whole fleet round-trip.

Most call sites use the module-level helpers (:func:`span`,
:func:`observe`, :func:`get_tracer`) bound to one process-wide tracer:
instrumented layers deep inside the featurizer or the CRF never need a
tracer handle plumbed through their signatures.
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, NamedTuple, Sequence

__all__ = [
    "Span",
    "SpanContext",
    "StageAggregates",
    "Tracer",
    "get_tracer",
    "new_span_id",
    "new_trace_id",
    "observe",
    "set_enabled",
    "span",
]


def new_trace_id() -> str:
    """A fresh 64-bit hex trace ID (collision-safe at window scale)."""
    return os.urandom(8).hex()


def new_span_id() -> str:
    """A fresh 32-bit hex span ID (unique within one trace)."""
    return os.urandom(4).hex()


class SpanContext(NamedTuple):
    """The propagatable part of a span: ``(trace_id, span_id)``.

    A plain tuple on purpose: it pickles through the fleet's request pipes
    and serialises into JSON logs without any adapter.
    """

    trace_id: str
    span_id: str


@dataclass
class Span:
    """One finished (or in-flight) timed operation.

    ``start`` is a ``time.perf_counter`` reading, meaningful only for
    ordering spans recorded by the same process; ``duration`` is wall
    seconds and is what every aggregate consumes.

    Examples:
        >>> span = Span("t" * 16, "s" * 8, None, "featurize", 0.0, 0.25)
        >>> span.to_wire()[3]
        'featurize'
        >>> Span.from_wire(span.to_wire()) == span
        True
    """

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    start: float
    duration: float
    worker: str | None = None
    meta: dict | None = None

    def context(self) -> SpanContext:
        """This span's propagatable context."""
        return SpanContext(self.trace_id, self.span_id)

    def to_wire(self) -> tuple:
        """Serialise to the plain tuple shipped over fleet worker pipes."""
        return (
            self.trace_id,
            self.span_id,
            self.parent_id,
            self.name,
            self.start,
            self.duration,
            self.worker,
            self.meta,
        )

    @classmethod
    def from_wire(cls, payload: Sequence) -> "Span":
        """Rebuild a span from its wire tuple."""
        return cls(*payload)

    def to_dict(self) -> dict:
        """JSON-friendly form (profiling reports, tests)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "duration_ms": self.duration * 1e3,
            "worker": self.worker,
            "meta": self.meta,
        }


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending list (0.0 for an empty one)."""
    if not sorted_values:
        return 0.0
    rank = round(fraction * (len(sorted_values) - 1))
    return sorted_values[min(len(sorted_values) - 1, max(0, rank))]


class _StageWindow:
    """Cumulative + bounded-window accounting for one stage name."""

    __slots__ = ("count", "total_seconds", "window")

    def __init__(self, window: int) -> None:
        self.count = 0
        self.total_seconds = 0.0
        self.window: deque[float] = deque(maxlen=window)


class StageAggregates:
    """Bounded-window per-stage latency aggregates (the ``stages`` metric).

    Each observed duration updates a cumulative count/total plus a bounded
    recent window, so :meth:`snapshot` reports both all-time stage shares
    and percentiles that reflect *recent* traffic.  Thread-safe: stages are
    recorded from the event loop, the dispatch thread and fleet pipe-reader
    callbacks concurrently.

    Examples:
        >>> stages = StageAggregates(window=16)
        >>> stages.observe("request", 0.010)
        >>> stages.observe("forward", 0.004)
        >>> snap = stages.snapshot()
        >>> snap["forward"]["count"], round(snap["forward"]["share"], 2)
        (1, 0.4)
        >>> round(snap["request"]["p50_ms"], 1)
        10.0
    """

    #: Stage whose cumulative time defines ``share`` (the per-request root).
    ROOT_STAGE = "request"

    def __init__(self, window: int = 512) -> None:
        self.window = window
        self._lock = threading.Lock()
        self._stages: dict[str, _StageWindow] = {}

    def observe(self, name: str, seconds: float) -> None:
        """Record one duration for a stage."""
        with self._lock:
            stage = self._stages.get(name)
            if stage is None:
                stage = self._stages[name] = _StageWindow(self.window)
            stage.count += 1
            stage.total_seconds += seconds
            stage.window.append(seconds)

    def reset(self) -> None:
        """Drop every stage (tests and profiling runs start clean)."""
        with self._lock:
            self._stages.clear()

    def snapshot(self) -> dict:
        """Per-stage aggregates, JSON-friendly, sorted by cumulative time.

        ``share`` is the stage's cumulative seconds over the root stage's
        (``request``) cumulative seconds — the fraction of request time the
        stage accounts for.  Nested stages overlap their parents, so shares
        do not sum to 1 across the whole dictionary; compare siblings.
        When no root stage has been observed the share is computed against
        the largest stage total instead.
        """
        with self._lock:
            totals = {name: stage.total_seconds for name, stage in self._stages.items()}
            root_total = totals.get(self.ROOT_STAGE, 0.0)
            if root_total <= 0.0:
                root_total = max(totals.values(), default=0.0)
            out: dict[str, dict] = {}
            order = sorted(self._stages, key=lambda name: totals[name], reverse=True)
            for name in order:
                stage = self._stages[name]
                window = sorted(stage.window)
                out[name] = {
                    "count": stage.count,
                    "total_seconds": stage.total_seconds,
                    "share": (
                        stage.total_seconds / root_total if root_total else 0.0
                    ),
                    "p50_ms": _percentile(window, 0.50) * 1e3,
                    "p95_ms": _percentile(window, 0.95) * 1e3,
                    "p99_ms": _percentile(window, 0.99) * 1e3,
                    "window": len(window),
                }
            return out


#: The active span context of the calling task/thread.  One module-level
#: contextvar (not per-tracer): a context can only describe one position in
#: one trace at a time, whichever tracer recorded it.
_CURRENT: contextvars.ContextVar[SpanContext | None] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)

#: Shared placeholder yielded by disabled spans, so call sites can set
#: ``handle.meta``/``handle.worker`` unconditionally.
_DISABLED_SPAN = Span("", "", None, "disabled", 0.0, 0.0)


class Tracer:
    """Thread- and process-safe span recorder with always-on stage timers.

    Parameters
    ----------
    window:
        Bounded window per stage for percentile aggregates.
    max_spans:
        Ring-buffer capacity for finished spans (trace reassembly).
    enabled:
        When False, :meth:`span` yields a shared no-op handle and records
        nothing — the control arm of the overhead benchmark.

    Examples:
        >>> tracer = Tracer()
        >>> with tracer.span("request") as root:
        ...     with tracer.span("forward") as child:
        ...         pass
        >>> child.trace_id == root.trace_id
        True
        >>> child.parent_id == root.span_id
        True
        >>> [s.name for s in tracer.trace(root.trace_id)]
        ['forward', 'request']
        >>> sorted(tracer.stages.snapshot())
        ['forward', 'request']
    """

    def __init__(
        self, window: int = 512, max_spans: int = 4096, enabled: bool = True
    ) -> None:
        self.enabled = enabled
        self.stages = StageAggregates(window=window)
        self._spans: deque[Span] = deque(maxlen=max_spans)
        self._lock = threading.Lock()

    # ---------------------------------------------------------- propagation

    def current(self) -> SpanContext | None:
        """The active span context of this task/thread (None outside spans)."""
        return _CURRENT.get()

    def attach(self, context) -> contextvars.Token:
        """Adopt a foreign span context (cross-thread / cross-process hop).

        ``context`` is a :class:`SpanContext`, a plain ``(trace_id,
        span_id)`` tuple off the wire, or None.  Returns a token for
        :meth:`detach`; always pair the two (``try/finally``).
        """
        if context is not None and not isinstance(context, SpanContext):
            context = SpanContext(*context)
        return _CURRENT.set(context)

    def detach(self, token: contextvars.Token) -> None:
        """Restore the context active before the matching :meth:`attach`."""
        _CURRENT.reset(token)

    # -------------------------------------------------------------- spans

    @contextmanager
    def span(self, name: str, worker: str | None = None, **meta) -> Iterator[Span]:
        """Time a named stage; nests under the active span.

        Yields the live :class:`Span` so callers can annotate
        ``handle.meta`` mid-flight; the span is recorded (ring buffer +
        stage aggregates) when the block exits, whether or not it raised.
        """
        if not self.enabled:
            yield _DISABLED_SPAN
            return
        parent = _CURRENT.get()
        trace_id = parent.trace_id if parent is not None else new_trace_id()
        handle = Span(
            trace_id=trace_id,
            span_id=new_span_id(),
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            start=time.perf_counter(),
            duration=0.0,
            worker=worker,
            meta=meta or None,
        )
        token = _CURRENT.set(handle.context())
        try:
            yield handle
        finally:
            handle.duration = time.perf_counter() - handle.start
            _CURRENT.reset(token)
            self.record(handle)

    def observe(self, name: str, seconds: float) -> None:
        """Record a stage duration measured outside a live span.

        Queue waits are the canonical case: the wait starts on the event
        loop and ends on the dispatch thread, so there is no single block
        to wrap — the scheduler measures the gap and reports it here.
        """
        if self.enabled:
            self.stages.observe(name, seconds)

    def record(self, span: Span) -> None:
        """Add one finished span to the buffer and the stage aggregates."""
        with self._lock:
            self._spans.append(span)
        self.stages.observe(span.name, span.duration)

    def adopt(self, wire_spans: Sequence, worker: str | None = None) -> list[Span]:
        """Re-parent spans shipped from a worker process into this tracer.

        The worker recorded them under the request's propagated context, so
        trace and parent IDs are already correct; adoption stamps the
        front-end's worker tag (``wid:pid`` — a restarted worker shows its
        new pid) and records them here so one trace covers the whole fleet
        round-trip.
        """
        adopted = []
        for payload in wire_spans:
            span = payload if isinstance(payload, Span) else Span.from_wire(payload)
            if worker is not None:
                span.worker = worker
            with self._lock:
                self._spans.append(span)
            adopted.append(span)
        return adopted

    # ----------------------------------------------------------- reporting

    def trace(self, trace_id: str) -> list[Span]:
        """Every buffered span of one trace (recording order)."""
        with self._lock:
            return [span for span in self._spans if span.trace_id == trace_id]

    def take(self, trace_id: str) -> list[tuple]:
        """Remove and return one trace's spans in wire form.

        Fleet workers call this after serving a batch to ship the batch's
        spans back to the front-end exactly once.
        """
        with self._lock:
            taken = [span for span in self._spans if span.trace_id == trace_id]
            if taken:
                kept = [span for span in self._spans if span.trace_id != trace_id]
                self._spans.clear()
                self._spans.extend(kept)
        return [span.to_wire() for span in taken]

    def spans(self) -> list[Span]:
        """Every buffered span (newest last)."""
        with self._lock:
            return list(self._spans)

    def reset(self) -> None:
        """Clear the span buffer and stage aggregates (tests, profiling)."""
        with self._lock:
            self._spans.clear()
        self.stages.reset()


#: One tracer per process: instrumented layers call the helpers below, so
#: span recording needs no handle threading through the serving stack.
#: Fleet workers are separate processes and therefore get their own.
_GLOBAL = Tracer(enabled=os.environ.get("REPRO_OBS_DISABLED", "") != "1")


def get_tracer() -> Tracer:
    """The process-wide tracer every instrumented layer records into."""
    return _GLOBAL


def span(name: str, worker: str | None = None, **meta):
    """Open a span on the process-wide tracer (see :meth:`Tracer.span`)."""
    return _GLOBAL.span(name, worker=worker, **meta)


def observe(name: str, seconds: float) -> None:
    """Record a measured duration on the process-wide tracer."""
    _GLOBAL.observe(name, seconds)


def set_enabled(enabled: bool) -> None:
    """Toggle the process-wide tracer (the overhead benchmark's control)."""
    _GLOBAL.enabled = enabled
