"""Structured JSON request logs for the serving stack.

``serve --log-format json`` switches the server's per-request logging from
free text to one JSON object per line on stderr — the shape log pipelines
(Loki, CloudWatch, `jq`) ingest without a parse rule.  Every record
carries the request's trace ID, so a slow line in the logs links directly
to its per-stage spans.

The logger is deliberately tiny: no handlers, no levels beyond the
``event`` field, no buffering.  A line is one ``json.dumps`` and one
atomic ``write`` (atomic for sane line lengths on POSIX pipes), so it is
safe from the event loop and the dispatch thread without a lock.
"""

from __future__ import annotations

import json
import sys
import time
from typing import IO

__all__ = ["RequestLogger"]


class RequestLogger:
    """Emit one structured JSON line per serving event.

    Parameters
    ----------
    stream:
        Destination (defaults to ``sys.stderr``, the conventional log fd
        for a server whose stdout may carry protocol output).
    enabled:
        When False every call is a no-op — the ``--log-format text``
        default keeps the pre-existing quiet behaviour.

    Examples:
        >>> import io
        >>> buffer = io.StringIO()
        >>> logger = RequestLogger(stream=buffer)
        >>> logger.log("request", trace_id="ab12", status=200, clock=lambda: 5.0)
        >>> record = json.loads(buffer.getvalue())
        >>> record["event"], record["trace_id"], record["status"], record["ts"]
        ('request', 'ab12', 200, 5.0)
    """

    def __init__(self, stream: IO[str] | None = None, enabled: bool = True) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.enabled = enabled

    def log(self, event: str, clock=time.time, **fields) -> None:
        """Write one record; non-serialisable values degrade to ``repr``.

        ``clock`` is injectable so tests and doctests stay deterministic.
        """
        if not self.enabled:
            return
        record = {"ts": clock(), "event": event}
        record.update(fields)
        line = json.dumps(record, default=repr, separators=(",", ":"))
        self.stream.write(line + "\n")
