"""Persistent, content-fingerprint-keyed store of per-column feature sketches.

PR 8 made every per-column quantity the featurizer needs reducible to a
mergeable accumulator; this module makes that state *persistent*.  A
:class:`SketchStore` maps ``(section, column fingerprint)`` to a JSON
sketch — char/stat accumulator state, the capped token prefix, the pooled
word/para vectors and the assembled raw feature row — so re-annotating a
mostly-unchanged corpus only featurizes the columns whose content actually
changed.  Inferred table-topic vectors are stored the same way, keyed by
the table fingerprint, removing LDA inference from repeat traffic.

Design points:

* **Keys are content fingerprints.**  :func:`values_fingerprint` hashes a
  column's values with the exact length-prefixed blake2b scheme the
  serving :class:`~repro.serving.Predictor` uses, so every layer of the
  system agrees on what "the same column" means.  Headers never hash:
  they are not model input.
* **Sections are config hashes.**  A sketch is only reusable under the
  featurizer configuration that produced it, so entries live in sections
  keyed by a hash over the store format version, the producer (backend),
  the char vocabulary, the token caps, the sampling dial and the fitted
  substrate (:func:`state_hash` over the embedding arrays).  A config
  mismatch is simply a different section — a miss, never a wrong hit.
* **Append-friendly on-disk layout.**  Each section is one append-only
  log of CRC-framed JSON records under the store directory; a ``put`` is
  a single flushed append.  Re-puts append a newer record that shadows
  the older one at load time.
* **LRU-bounded with explicit GC.**  The in-memory index keeps at most
  ``capacity`` most-recently-used entries per section; :meth:`gc`
  compacts each log down to the live entries (and optionally deletes
  stale sections from older configs).
* **Corruption-tolerant.**  A corrupt or truncated record ends the
  readable prefix of its log: the store warns (:class:`SketchStoreWarning`),
  truncates the log back to the last good record and carries on.  A bad
  store can cost recomputation, never correctness and never a crash.

The store assumes a single writer process (the fleet's prefork workers
must not share one store directory; concurrent appends would interleave
records).

Examples:
    >>> import tempfile
    >>> root = tempfile.mkdtemp()
    >>> store = SketchStore(root, capacity=4)
    >>> section = store.section({"producer": "doctest"})
    >>> store.get(section, "abc") is None
    True
    >>> store.put(section, "abc", {"row": [1.0, 2.0]})
    >>> store.get(section, "abc")["row"]
    [1.0, 2.0]
    >>> reopened = SketchStore(root, capacity=4)
    >>> reopened.get(reopened.section({"producer": "doctest"}), "abc")["row"]
    [1.0, 2.0]
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import warnings
import zlib
from collections import OrderedDict
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.features.accumulators import (
    CharAccumulator,
    ColumnAccumulator,
    StatAccumulator,
    TokenAccumulator,
)
from repro.features.char_features import CHAR_VOCABULARY

__all__ = [
    "DEFAULT_CAPACITY",
    "DEFAULT_DEFER_VALUES",
    "STORE_FORMAT",
    "SketchStoreWarning",
    "SketchStore",
    "StreamSketcher",
    "ColumnFingerprinter",
    "values_fingerprint",
    "combine_fingerprints",
    "state_hash",
    "substrate_hash",
    "column_section_config",
    "content_section_config",
    "topic_section_config",
    "column_sketch",
    "content_sketch",
    "accumulator_from_sketch",
    "sketch_row",
    "sketch_tokens",
    "topic_vector_from_sketch",
    "open_store",
    "sampled_column",
    "sampled_table",
]

#: On-disk format version; bumped on any incompatible layout change and
#: folded into every section config, so old entries become misses.
STORE_FORMAT = 1

#: Default per-section LRU bound of the in-memory index.
DEFAULT_CAPACITY = 16384

#: Default total deferred-value budget of :class:`StreamSketcher` before
#: it falls back to eager accumulation (bounded-memory guarantee).
DEFAULT_DEFER_VALUES = 262144

_MAGIC = b"SKC1"
_HEADER_SIZE = 12  # magic + uint32 payload length + uint32 crc32


class SketchStoreWarning(UserWarning):
    """Raised as a warning when a store entry or log is unusable.

    The store never turns corruption into an exception: the affected
    entries are dropped (and recomputed by the caller) and the log is
    truncated back to its last good record.
    """


# ------------------------------------------------------------ fingerprints


class ColumnFingerprinter:
    """Incrementally hash a column's values, chunk by chunk.

    Produces the exact same digest as :func:`values_fingerprint` over the
    concatenated values (and therefore the same fingerprint the serving
    predictor computes): each value is length-prefixed so value
    boundaries are unambiguous across chunk boundaries.
    """

    __slots__ = ("_digest",)

    def __init__(self) -> None:
        self._digest = hashlib.blake2b(digest_size=16)

    def update(self, values: Iterable[str]) -> "ColumnFingerprinter":
        """Fold a batch of values into the running digest."""
        digest = self._digest
        for value in values:
            encoded = value.encode("utf-8")
            digest.update(len(encoded).to_bytes(4, "little"))
            digest.update(encoded)
        return self

    def hexdigest(self) -> str:
        """The fingerprint of everything folded in so far."""
        return self._digest.hexdigest()


def values_fingerprint(values: Iterable[str]) -> str:
    """Content hash of a column's values (order-sensitive, header-blind).

    This is the canonical column-identity hash of the whole system:
    :func:`repro.serving.predictor.column_fingerprint` delegates here.

    Examples:
        >>> values_fingerprint(["ab", "c"]) == values_fingerprint(["a", "bc"])
        False
    """
    return ColumnFingerprinter().update(values).hexdigest()


def combine_fingerprints(fingerprints: Sequence[str]) -> str:
    """Table fingerprint: one digest over the column fingerprint bytes.

    Matches the serving predictor's table fingerprint, so topic vectors
    cached by ``annotate`` are hits for ``predict`` and vice versa.
    """
    digest = hashlib.blake2b(digest_size=16)
    for fingerprint in fingerprints:
        digest.update(bytes.fromhex(fingerprint))
    return digest.hexdigest()


def state_hash(state: dict, prefixes: tuple[str, ...] | None = None) -> str:
    """Hash a ``state_dict`` of named arrays (dtype + shape + bytes).

    ``prefixes`` restricts the hash to keys starting with any of the
    given prefixes (e.g. the embedding substrate without the
    standardizer, which sketches bypass by storing *raw* rows).
    """
    digest = hashlib.blake2b(digest_size=16)
    for key in sorted(state):
        if prefixes is not None and not key.startswith(prefixes):
            continue
        array = np.ascontiguousarray(state[key])
        digest.update(key.encode("utf-8"))
        digest.update(str(array.dtype).encode("utf-8"))
        digest.update(repr(array.shape).encode("utf-8"))
        digest.update(array.tobytes())
    return digest.hexdigest()


def substrate_hash(featurizer) -> str:
    """Hash of the fitted embedding substrate (word + para arrays only).

    The standardizer is deliberately excluded: sketches store raw
    (unstandardized) feature rows and re-standardize on every hit, so a
    refreshed mean/std never invalidates them.
    """
    return state_hash(featurizer.state_dict(), prefixes=("word.", "para."))


# --------------------------------------------------------- section configs


def column_section_config(
    featurizer,
    producer: str,
    token_cap: int | None = None,
    sample_rows: int | None = None,
) -> dict:
    """Section config for fitted-featurizer column sketches.

    ``producer`` names the code path that computed the rows (the
    ``"accumulator"`` streaming path, or a transform backend name), so
    paths with different bit-level guarantees never share entries.
    """
    if token_cap is None:
        token_cap = featurizer.max_tokens_per_column
    return {
        "kind": "column-sketch",
        "format": STORE_FORMAT,
        "producer": producer,
        "char_vocabulary": CHAR_VOCABULARY,
        "word_dim": featurizer.word_dim,
        "para_dim": featurizer.para_dim,
        "max_tokens_per_column": featurizer.max_tokens_per_column,
        "token_cap": token_cap,
        "sample_rows": sample_rows,
        "substrate": substrate_hash(featurizer),
    }


def content_section_config(token_cap: int, sample_rows: int | None = None) -> dict:
    """Section config for pre-fit content sketches (``fit_stream``).

    No substrate hash: accumulator state is a function of the values and
    the token cap alone, so it survives across refits.
    """
    return {
        "kind": "column-content",
        "format": STORE_FORMAT,
        "producer": "content",
        "char_vocabulary": CHAR_VOCABULARY,
        "token_cap": token_cap,
        "sample_rows": sample_rows,
    }


def topic_section_config(intent, sample_rows: int | None = None) -> dict:
    """Section config for table-topic vectors keyed by table fingerprint."""
    return {
        "kind": "table-topic",
        "format": STORE_FORMAT,
        "producer": "topic",
        "n_topics": intent.n_topics,
        "max_tokens_per_table": intent.max_tokens_per_table,
        "sample_rows": sample_rows,
        "state": state_hash(intent.state_dict()),
    }


# ------------------------------------------------------- sketch (de)coding


def column_sketch(
    featurizer, accumulator, n_rows: int, row: np.ndarray | None = None
) -> dict:
    """Full sketch of one column under a fitted featurizer.

    Holds the exact accumulator states (char counts, stat counter, token
    prefix), the pooled word/para vectors and the assembled raw feature
    row, so a hit can serve the row directly, rebuild the topic document
    from the tokens, or reconstruct the accumulator for future merging.
    ``row`` lets a caller that already finalized the accumulator pass the
    raw row in instead of recomputing it.
    """
    if row is None:
        row = featurizer.raw_from_accumulator(accumulator)
    groups = {group.name: group for group in featurizer.groups}
    return {
        "n": int(n_rows),
        "tokens": accumulator.token_list(),
        "char": accumulator.char.to_state(),
        "stat": accumulator.stat.to_state(),
        "word": row[groups["word"].slice].tolist(),
        "para": row[groups["para"].slice].tolist(),
        "row": row.tolist(),
    }


def content_sketch(accumulator, n_rows: int) -> dict:
    """Substrate-free sketch (accumulator state only, for ``fit_stream``)."""
    return {
        "n": int(n_rows),
        "tokens": accumulator.token_list(),
        "char": accumulator.char.to_state(),
        "stat": accumulator.stat.to_state(),
    }


def accumulator_from_sketch(
    sketch: dict | None, token_cap: int
) -> ColumnAccumulator | None:
    """Rebuild a column accumulator from a stored sketch.

    Returns ``None`` when the sketch is missing or malformed (the caller
    recomputes).  The token prefix is reinstated as one segment covering
    the sketched rows, so ``token_list`` and ``finalize`` reproduce the
    original bits exactly.
    """
    if not isinstance(sketch, dict):
        return None
    tokens = sketch.get("tokens")
    n_rows = sketch.get("n")
    if not isinstance(tokens, list) or not isinstance(n_rows, int) or n_rows < 0:
        return None
    if len(tokens) > token_cap or not all(isinstance(t, str) for t in tokens):
        return None
    try:
        char = CharAccumulator.from_state(sketch["char"])
        stat = StatAccumulator.from_state(sketch["stat"])
    except (KeyError, TypeError, ValueError):
        return None
    accumulator = ColumnAccumulator(token_cap)
    accumulator.char = char
    accumulator.stat = stat
    accumulator.tokens = TokenAccumulator.from_state(
        {"max_tokens": token_cap, "segments": [[0, n_rows, tokens]]}
    )
    return accumulator


def sketch_row(sketch: dict | None, n_features: int) -> np.ndarray | None:
    """The raw feature row of a sketch, or ``None`` when unusable."""
    if not isinstance(sketch, dict):
        return None
    row = sketch.get("row")
    if not isinstance(row, list) or len(row) != n_features:
        return None
    try:
        array = np.asarray(row, dtype=np.float64)
    except (TypeError, ValueError):
        return None
    return array if array.shape == (n_features,) else None


def sketch_tokens(sketch: dict | None) -> list[str] | None:
    """The token prefix of a sketch, or ``None`` when unusable."""
    if not isinstance(sketch, dict):
        return None
    tokens = sketch.get("tokens")
    if not isinstance(tokens, list) or not all(isinstance(t, str) for t in tokens):
        return None
    return tokens


def topic_vector_from_sketch(sketch: dict | None, n_topics: int) -> np.ndarray | None:
    """The stored topic vector, or ``None`` when missing/malformed."""
    if not isinstance(sketch, dict):
        return None
    topic = sketch.get("topic")
    if not isinstance(topic, list) or len(topic) != n_topics:
        return None
    try:
        array = np.asarray(topic, dtype=np.float64)
    except (TypeError, ValueError):
        return None
    return array if array.shape == (n_topics,) else None


# ------------------------------------------------------------ sample dials


def sampled_column(column, sample_rows: int):
    """A copy of ``column`` trimmed to its first ``sample_rows`` values."""
    if len(column.values) <= sample_rows:
        return column
    from repro.tables import Column

    return Column(
        values=list(column.values[:sample_rows]),
        header=column.header,
        semantic_type=column.semantic_type,
    )


def sampled_table(table, sample_rows: int):
    """A copy of ``table`` with every column trimmed to ``sample_rows``."""
    if all(len(column.values) <= sample_rows for column in table.columns):
        return table
    from repro.tables import Table

    return Table(
        columns=[sampled_column(column, sample_rows) for column in table.columns],
        table_id=table.table_id,
        metadata=dict(table.metadata),
    )


# ---------------------------------------------------------------- the store


class _Section:
    """One config hash's entries: an LRU index over an append-only log."""

    __slots__ = ("path", "entries", "handle")

    def __init__(self, path: Path) -> None:
        self.path = path
        self.entries: OrderedDict[str, dict] = OrderedDict()
        self.handle = None


class SketchStore:
    """Persistent LRU-bounded map of content fingerprints to sketches.

    Parameters
    ----------
    path:
        Store directory (created on first use).  Layout: ``STORE.json``
        (format metadata) plus one ``<config-hash>.log`` append-only
        record log and one ``<config-hash>.json`` config sidecar per
        section.
    capacity:
        Per-section LRU bound of the in-memory index.  Logs grow past it
        on disk until :meth:`gc` compacts them.
    """

    def __init__(self, path, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.path = Path(path)
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.corrupt_records = 0
        self._sections: dict[str, _Section] = {}
        self._lock = threading.RLock()
        self.path.mkdir(parents=True, exist_ok=True)
        self._check_meta()

    # ------------------------------------------------------------- lifecycle

    def _check_meta(self) -> None:
        meta_path = self.path / "STORE.json"
        if meta_path.exists():
            try:
                meta = json.loads(meta_path.read_text(encoding="utf-8"))
                known = meta.get("format")
            except (OSError, ValueError):
                known = None
            if known != STORE_FORMAT:
                warnings.warn(
                    f"sketch store at {self.path} has format {known!r}, "
                    f"expected {STORE_FORMAT}; treating it as empty",
                    SketchStoreWarning,
                    stacklevel=3,
                )
                self._stale_format = True
            else:
                self._stale_format = False
        else:
            self._stale_format = False
        meta_path.write_text(
            json.dumps({"format": STORE_FORMAT}, indent=2) + "\n",
            encoding="utf-8",
        )

    def close(self) -> None:
        """Flush and close every open section log handle.

        The store stays usable: handles reopen lazily on the next put.
        """
        with self._lock:
            for section in self._sections.values():
                if section.handle is not None:
                    section.handle.close()
                    section.handle = None

    def __enter__(self) -> "SketchStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -------------------------------------------------------------- sections

    def section(self, config: dict) -> str:
        """Resolve (and lazily load) the section for a config dict.

        The returned id is a hash over the canonical JSON encoding of
        ``config``; any difference in configuration yields a different
        section, so stale sketches are structurally unreachable.
        """
        encoded = json.dumps(config, sort_keys=True, ensure_ascii=True)
        section_id = hashlib.blake2b(
            encoded.encode("utf-8"), digest_size=16
        ).hexdigest()
        with self._lock:
            if section_id not in self._sections:
                section = _Section(self.path / f"{section_id}.log")
                if not self._stale_format:
                    self._load_section(section)
                self._sections[section_id] = section
                sidecar = self.path / f"{section_id}.json"
                if not sidecar.exists():
                    sidecar.write_text(encoded + "\n", encoding="utf-8")
        return section_id

    def _load_section(self, section: _Section) -> None:
        try:
            data = section.path.read_bytes()
        except FileNotFoundError:
            return
        entries = section.entries
        offset = 0
        size = len(data)
        reason = None
        while offset < size:
            if size - offset < _HEADER_SIZE:
                reason = "truncated record header"
                break
            if data[offset : offset + 4] != _MAGIC:
                reason = "bad record magic"
                break
            length = int.from_bytes(data[offset + 4 : offset + 8], "little")
            crc = int.from_bytes(data[offset + 8 : offset + 12], "little")
            start = offset + _HEADER_SIZE
            end = start + length
            if end > size:
                reason = "truncated record payload"
                break
            payload = data[start:end]
            if zlib.crc32(payload) != crc:
                reason = "record checksum mismatch"
                break
            try:
                record = json.loads(payload.decode("ascii"))
            except (UnicodeDecodeError, ValueError):
                reason = "undecodable record payload"
                break
            if not isinstance(record, dict) or not isinstance(record.get("fp"), str):
                reason = "malformed record"
                break
            fingerprint = record["fp"]
            entries.pop(fingerprint, None)
            entries[fingerprint] = record.get("sketch")
            offset = end
        if reason is not None:
            self.corrupt_records += 1
            warnings.warn(
                f"sketch log {section.path.name}: {reason} at byte {offset}; "
                f"keeping the {len(entries)} readable entr"
                f"{'y' if len(entries) == 1 else 'ies'} and truncating "
                "the log (dropped entries will be recomputed)",
                SketchStoreWarning,
                stacklevel=4,
            )
            with open(section.path, "r+b") as handle:
                handle.truncate(offset)
        while len(entries) > self.capacity:
            entries.popitem(last=False)

    # --------------------------------------------------------------- get/put

    def get(self, section_id: str, fingerprint: str) -> dict | None:
        """Look up one sketch, refreshing its LRU recency.

        The returned dict is the store's live entry: treat it as
        read-only.
        """
        with self._lock:
            section = self._sections.get(section_id)
            if section is None:
                raise KeyError(f"unknown section {section_id!r}")
            sketch = section.entries.get(fingerprint)
            if sketch is None:
                self.misses += 1
                return None
            section.entries.move_to_end(fingerprint)
            self.hits += 1
            return sketch

    def put(self, section_id: str, fingerprint: str, sketch: dict) -> None:
        """Append one sketch to the section log and index it."""
        record = json.dumps(
            {"fp": fingerprint, "sketch": sketch},
            ensure_ascii=True,
            separators=(",", ":"),
        ).encode("ascii")
        frame = (
            _MAGIC
            + len(record).to_bytes(4, "little")
            + zlib.crc32(record).to_bytes(4, "little")
            + record
        )
        with self._lock:
            section = self._sections.get(section_id)
            if section is None:
                raise KeyError(f"unknown section {section_id!r}")
            if section.handle is None:
                section.handle = open(section.path, "ab")
            section.handle.write(frame)
            section.handle.flush()
            entries = section.entries
            entries.pop(fingerprint, None)
            entries[fingerprint] = sketch
            while len(entries) > self.capacity:
                entries.popitem(last=False)

    # -------------------------------------------------------------------- gc

    def gc(self, purge_stale: bool = False) -> dict:
        """Compact every loaded section log down to its live LRU entries.

        Logs are rewritten atomically (temp file + ``os.replace``) in
        recency order, oldest first, so a reload reproduces the same LRU
        order.  With ``purge_stale``, section files not opened by this
        store instance (older config hashes) are deleted too.

        Returns a summary: live entry count, bytes reclaimed and the
        number of stale section files purged.
        """
        reclaimed = 0
        live = 0
        purged = 0
        with self._lock:
            for section_id, section in self._sections.items():
                if section.handle is not None:
                    section.handle.close()
                    section.handle = None
                before = section.path.stat().st_size if section.path.exists() else 0
                tmp_path = section.path.with_suffix(".log.tmp")
                with open(tmp_path, "wb") as handle:
                    for fingerprint, sketch in section.entries.items():
                        record = json.dumps(
                            {"fp": fingerprint, "sketch": sketch},
                            ensure_ascii=True,
                            separators=(",", ":"),
                        ).encode("ascii")
                        handle.write(_MAGIC)
                        handle.write(len(record).to_bytes(4, "little"))
                        handle.write(zlib.crc32(record).to_bytes(4, "little"))
                        handle.write(record)
                os.replace(tmp_path, section.path)
                reclaimed += max(0, before - section.path.stat().st_size)
                live += len(section.entries)
            if purge_stale:
                keep = {f"{sid}.log" for sid in self._sections}
                keep |= {f"{sid}.json" for sid in self._sections}
                keep.add("STORE.json")
                for child in self.path.iterdir():
                    if child.name in keep or child.suffix not in (".log", ".json"):
                        continue
                    child.unlink()
                    purged += 1
        return {
            "sections": len(self._sections),
            "live_entries": live,
            "reclaimed_bytes": reclaimed,
            "purged_files": purged,
        }

    def stats(self) -> dict:
        """Cumulative hit/miss/corruption counters and per-section sizes."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "corrupt_records": self.corrupt_records,
                "sections": {
                    section_id: len(section.entries)
                    for section_id, section in self._sections.items()
                },
            }


def open_store(store) -> tuple["SketchStore | None", bool]:
    """Coerce a store argument (``SketchStore`` | path | None).

    Returns ``(store, owned)`` where ``owned`` says the caller opened it
    (and is responsible for closing it).
    """
    if store is None:
        return None, False
    if isinstance(store, SketchStore):
        return store, False
    return SketchStore(store), True


# ------------------------------------------------------------ stream sketch


class StreamSketcher:
    """Fingerprint a stream's columns while deferring featurization.

    The incremental-reannotation dilemma: a column's fingerprint is only
    known once the whole stream has been consumed, but skipping
    featurization requires knowing it *first*.  The sketcher resolves it
    by buffering each column's chunk segments (positions + values) while
    hashing them, so accumulation happens lazily — only for columns that
    turn out to be store misses — by replaying the exact ``partial_fit``
    calls the eager path would have made (bit-identical by construction).

    Memory stays bounded: once the deferred-value budget is exceeded the
    sketcher flushes everything into eager accumulators and stops
    deferring (that stream gains no skip, but is still hashed and its
    sketches still warm the store).  With ``sample_rows`` set, only the
    first N values per column are retained for featurization, while the
    fingerprint always covers the full content.
    """

    def __init__(
        self,
        featurizer,
        n_columns: int,
        token_cap: int | None = None,
        sample_rows: int | None = None,
        defer_values: int = DEFAULT_DEFER_VALUES,
    ) -> None:
        if sample_rows is not None and sample_rows < 1:
            raise ValueError("sample_rows must be >= 1")
        self._featurizer = featurizer
        self._token_cap = token_cap
        self.sample_rows = sample_rows
        self._defer_limit = defer_values
        self._fingerprinters = [ColumnFingerprinter() for _ in range(n_columns)]
        self._deferred: list[list[tuple[int, int, list[str]]]] | None = [
            [] for _ in range(n_columns)
        ]
        self._accumulators: list[ColumnAccumulator] | None = None
        self._built: dict[int, ColumnAccumulator] = {}
        self._kept = [0] * n_columns
        self._pending = 0
        self.n_rows = 0

    @property
    def n_columns(self) -> int:
        """Number of columns tracked."""
        return len(self._fingerprinters)

    @property
    def flushed(self) -> bool:
        """Whether the deferred buffer spilled into eager accumulation."""
        return self._accumulators is not None

    def _new_accumulator(self) -> ColumnAccumulator:
        return self._featurizer.column_accumulator(self._token_cap)

    def feed(self, chunk) -> None:
        """Fold one :class:`~repro.tables.TableChunk` into the sketcher."""
        row_span = chunk.n_rows
        self.n_rows = max(self.n_rows, chunk.start_row + row_span)
        sample = self.sample_rows
        for index, values in enumerate(chunk.columns):
            values = list(values)
            self._fingerprinters[index].update(values)
            kept = values
            if sample is not None:
                budget = sample - self._kept[index]
                if budget <= 0:
                    kept = []
                elif len(values) > budget:
                    kept = values[:budget]
            self._kept[index] += len(kept)
            if self._accumulators is not None:
                if kept or sample is None:
                    self._accumulators[index].partial_fit(
                        kept, start_row=chunk.start_row, row_span=row_span
                    )
            else:
                if kept or sample is None:
                    self._deferred[index].append((chunk.start_row, row_span, kept))
                    self._pending += len(kept)
        if self._accumulators is None and self._pending > self._defer_limit:
            self._flush()

    def _flush(self) -> None:
        accumulators = []
        for index, segments in enumerate(self._deferred):
            accumulator = self._built.pop(index, None)
            if accumulator is None:
                accumulator = self._replay(segments)
            accumulators.append(accumulator)
        self._accumulators = accumulators
        self._deferred = None
        self._pending = 0

    def _replay(self, segments: list[tuple[int, int, list[str]]]) -> ColumnAccumulator:
        accumulator = self._new_accumulator()
        for start_row, row_span, values in segments:
            accumulator.partial_fit(values, start_row=start_row, row_span=row_span)
        return accumulator

    def fingerprints(self) -> list[str]:
        """Per-column content fingerprints of everything fed so far."""
        return [fingerprinter.hexdigest() for fingerprinter in self._fingerprinters]

    def accumulator(self, index: int) -> ColumnAccumulator:
        """The accumulator for one column, built on demand from the buffer."""
        if self._accumulators is not None:
            return self._accumulators[index]
        accumulator = self._built.get(index)
        if accumulator is None:
            accumulator = self._replay(self._deferred[index])
            self._built[index] = accumulator
        return accumulator
