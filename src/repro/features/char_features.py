"""Character-level distribution features (the Char group).

Sherlock computes, for each of 96 ASCII characters, aggregate statistics of
its per-value counts.  We reproduce the same idea at a slightly smaller
scale: for each character class member we compute the mean and presence-rate
of its occurrences across the column's values, plus a handful of shape
statistics.  The result is a fixed-length vector independent of the number
of rows.
"""

from __future__ import annotations

import string
from typing import Sequence

import numpy as np

__all__ = ["CHAR_VOCABULARY", "CHAR_FEATURE_NAMES", "char_features"]

#: Characters tracked individually: lowercase letters, digits and frequent
#: punctuation found in table cells.
CHAR_VOCABULARY: str = string.ascii_lowercase + string.digits + " .,-:/()$%#@'&+"

_SHAPE_FEATURES = [
    "frac_alpha",
    "frac_digit",
    "frac_space",
    "frac_punct",
    "frac_upper",
    "mean_length",
    "std_length",
]

CHAR_FEATURE_NAMES: list[str] = (
    [f"char_mean[{c}]" for c in CHAR_VOCABULARY]
    + [f"char_presence[{c}]" for c in CHAR_VOCABULARY]
    + [f"shape_{name}" for name in _SHAPE_FEATURES]
)

_CHAR_INDEX = {c: i for i, c in enumerate(CHAR_VOCABULARY)}


def char_features(values: Sequence[str]) -> np.ndarray:
    """Compute the Char feature vector for a column's values."""
    n_chars = len(CHAR_VOCABULARY)
    values = [v for v in values if v]
    if not values:
        return np.zeros(len(CHAR_FEATURE_NAMES), dtype=np.float64)

    counts = np.zeros((len(values), n_chars), dtype=np.float64)
    lengths = np.zeros(len(values), dtype=np.float64)
    n_alpha = n_digit = n_space = n_punct = n_upper = 0
    total_chars = 0
    for row, value in enumerate(values):
        lengths[row] = len(value)
        for char in value:
            total_chars += 1
            if char.isupper():
                n_upper += 1
            lowered = char.lower()
            if lowered.isalpha():
                n_alpha += 1
            elif lowered.isdigit():
                n_digit += 1
            elif lowered.isspace():
                n_space += 1
            else:
                n_punct += 1
            index = _CHAR_INDEX.get(lowered)
            if index is not None:
                counts[row, index] += 1.0

    mean_counts = counts.mean(axis=0)
    presence = (counts > 0).mean(axis=0)
    total_chars = max(1, total_chars)
    shape = np.array(
        [
            n_alpha / total_chars,
            n_digit / total_chars,
            n_space / total_chars,
            n_punct / total_chars,
            n_upper / total_chars,
            float(lengths.mean()),
            float(lengths.std()),
        ],
        dtype=np.float64,
    )
    return np.concatenate([mean_counts, presence, shape])
