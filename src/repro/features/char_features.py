"""Character-level distribution features (the Char group).

Sherlock computes, for each of 96 ASCII characters, aggregate statistics of
its per-value counts.  We reproduce the same idea at a slightly smaller
scale: for each character class member we compute the mean and presence-rate
of its occurrences across the column's values, plus a handful of shape
statistics.  The result is a fixed-length vector independent of the number
of rows.

The implementation is a mergeable accumulator (:class:`CharAccumulator`)
holding *exact* sufficient statistics — integer occurrence/presence counts
and a length histogram — so a column fed in chunks, in any chunk size and
any merge order, finalizes to the exact same bits as a single full scan.
:func:`char_features` is the full-scan spelling: one accumulator, one
``partial_fit``, one ``finalize``.
"""

from __future__ import annotations

import math
import string
from collections import Counter
from typing import Iterable, Sequence

import numpy as np

__all__ = ["CHAR_VOCABULARY", "CHAR_FEATURE_NAMES", "CharAccumulator", "char_features"]

#: Characters tracked individually: lowercase letters, digits and frequent
#: punctuation found in table cells.
CHAR_VOCABULARY: str = string.ascii_lowercase + string.digits + " .,-:/()$%#@'&+"

_SHAPE_FEATURES = [
    "frac_alpha",
    "frac_digit",
    "frac_space",
    "frac_punct",
    "frac_upper",
    "mean_length",
    "std_length",
]

CHAR_FEATURE_NAMES: list[str] = (
    [f"char_mean[{c}]" for c in CHAR_VOCABULARY]
    + [f"char_presence[{c}]" for c in CHAR_VOCABULARY]
    + [f"shape_{name}" for name in _SHAPE_FEATURES]
)

_CHAR_INDEX = {c: i for i, c in enumerate(CHAR_VOCABULARY)}


class CharAccumulator:
    """Mergeable sufficient statistics for the Char feature group.

    All state is exact (integers and an integer-length histogram), so
    ``partial_fit`` chunking and ``merge`` order never change the
    finalized vector: ``finalize`` reduces the same exact state through
    the same order-invariant formulas (``math.fsum`` is correctly
    rounded) no matter how the values arrived.

    Examples:
        >>> whole = CharAccumulator().partial_fit(["ab", "a"])
        >>> left = CharAccumulator().partial_fit(["ab"])
        >>> right = CharAccumulator().partial_fit(["a"])
        >>> bool((left.merge(right).finalize() == whole.finalize()).all())
        True
    """

    __slots__ = (
        "n_values",
        "counts",
        "presence",
        "n_alpha",
        "n_digit",
        "n_space",
        "n_punct",
        "n_upper",
        "total_chars",
        "lengths",
    )

    def __init__(self) -> None:
        n_chars = len(CHAR_VOCABULARY)
        self.n_values = 0
        self.counts = [0] * n_chars
        self.presence = [0] * n_chars
        self.n_alpha = 0
        self.n_digit = 0
        self.n_space = 0
        self.n_punct = 0
        self.n_upper = 0
        self.total_chars = 0
        self.lengths: Counter[int] = Counter()

    def partial_fit(self, values: Iterable[str]) -> "CharAccumulator":
        """Fold a batch of values into the accumulator."""
        counts = self.counts
        presence = self.presence
        for value in values:
            if not value:
                continue
            self.n_values += 1
            self.lengths[len(value)] += 1
            value_counts: dict[int, int] = {}
            for char in value:
                self.total_chars += 1
                if char.isupper():
                    self.n_upper += 1
                lowered = char.lower()
                if lowered.isalpha():
                    self.n_alpha += 1
                elif lowered.isdigit():
                    self.n_digit += 1
                elif lowered.isspace():
                    self.n_space += 1
                else:
                    self.n_punct += 1
                index = _CHAR_INDEX.get(lowered)
                if index is not None:
                    value_counts[index] = value_counts.get(index, 0) + 1
            for index, count in value_counts.items():
                counts[index] += count
                presence[index] += 1
        return self

    def merge(self, other: "CharAccumulator") -> "CharAccumulator":
        """Fold another accumulator's state into this one."""
        self.n_values += other.n_values
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.presence = [a + b for a, b in zip(self.presence, other.presence)]
        self.n_alpha += other.n_alpha
        self.n_digit += other.n_digit
        self.n_space += other.n_space
        self.n_punct += other.n_punct
        self.n_upper += other.n_upper
        self.total_chars += other.total_chars
        self.lengths.update(other.lengths)
        return self

    def to_state(self) -> dict:
        """JSON-serialisable exact state (round-trips via :meth:`from_state`).

        The length histogram's integer keys become strings (JSON object
        keys are strings); everything else is plain integers.
        """
        return {
            "n_values": self.n_values,
            "counts": list(self.counts),
            "presence": list(self.presence),
            "n_alpha": self.n_alpha,
            "n_digit": self.n_digit,
            "n_space": self.n_space,
            "n_punct": self.n_punct,
            "n_upper": self.n_upper,
            "total_chars": self.total_chars,
            "lengths": {str(k): v for k, v in self.lengths.items()},
        }

    @classmethod
    def from_state(cls, state: dict) -> "CharAccumulator":
        """Rebuild an accumulator from :meth:`to_state` output.

        The restored accumulator finalizes (and merges) to the exact
        same bits as the original: the state IS the sufficient
        statistics.
        """
        accumulator = cls()
        counts = [int(c) for c in state["counts"]]
        presence = [int(p) for p in state["presence"]]
        if len(counts) != len(CHAR_VOCABULARY) or len(presence) != len(CHAR_VOCABULARY):
            raise ValueError("char state does not match CHAR_VOCABULARY")
        accumulator.n_values = int(state["n_values"])
        accumulator.counts = counts
        accumulator.presence = presence
        accumulator.n_alpha = int(state["n_alpha"])
        accumulator.n_digit = int(state["n_digit"])
        accumulator.n_space = int(state["n_space"])
        accumulator.n_punct = int(state["n_punct"])
        accumulator.n_upper = int(state["n_upper"])
        accumulator.total_chars = int(state["total_chars"])
        accumulator.lengths = Counter(
            {int(k): int(v) for k, v in state["lengths"].items()}
        )
        return accumulator

    def finalize(self) -> np.ndarray:
        """Reduce the accumulated state to the Char feature vector."""
        if self.n_values == 0:
            return np.zeros(len(CHAR_FEATURE_NAMES), dtype=np.float64)
        n = self.n_values
        mean_counts = np.array(self.counts, dtype=np.float64) / n
        presence = np.array(self.presence, dtype=np.float64) / n
        total_chars = max(1, self.total_chars)
        length_sum = sum(length * count for length, count in self.lengths.items())
        mean_length = length_sum / n
        length_var = (
            math.fsum(
                count * (length - mean_length) ** 2
                for length, count in self.lengths.items()
            )
            / n
        )
        shape = np.array(
            [
                self.n_alpha / total_chars,
                self.n_digit / total_chars,
                self.n_space / total_chars,
                self.n_punct / total_chars,
                self.n_upper / total_chars,
                mean_length,
                math.sqrt(max(0.0, length_var)),
            ],
            dtype=np.float64,
        )
        return np.concatenate([mean_counts, presence, shape])


def char_features(values: Sequence[str]) -> np.ndarray:
    """Compute the Char feature vector for a column's values.

    The full-scan path is the accumulator fed once, so streamed chunked
    featurization is bit-identical to this function by construction.
    """
    return CharAccumulator().partial_fit(values).finalize()
