"""Column feature extraction (Sherlock-style feature groups).

Features come in four groups mirroring the paper: character-level
distribution features (**Char**), word embedding features (**Word**),
paragraph/column embedding features (**Para**) and global column statistics
(**Stat**).  The :class:`~repro.features.featurizer.ColumnFeaturizer`
combines them, records per-group slices (needed by the per-group
subnetworks and the permutation-importance analysis of Figure 9), and is the
only object models consume.
"""

from repro.features.char_features import (
    CHAR_FEATURE_NAMES,
    CharAccumulator,
    char_features,
)
from repro.features.stats_features import (
    STAT_FEATURE_NAMES,
    StatAccumulator,
    column_statistics,
)
from repro.features.accumulators import ColumnAccumulator, TokenAccumulator
from repro.features.featurizer import ColumnFeaturizer, FeatureGroup, FeatureMatrix
from repro.features.engine import (
    VectorizedEngine,
    char_features_batch,
    stats_features_batch,
)
from repro.features.sketchstore import (
    SketchStore,
    SketchStoreWarning,
    StreamSketcher,
    values_fingerprint,
)

__all__ = [
    "CHAR_FEATURE_NAMES",
    "CharAccumulator",
    "char_features",
    "char_features_batch",
    "STAT_FEATURE_NAMES",
    "StatAccumulator",
    "column_statistics",
    "stats_features_batch",
    "ColumnAccumulator",
    "TokenAccumulator",
    "ColumnFeaturizer",
    "FeatureGroup",
    "FeatureMatrix",
    "VectorizedEngine",
    "SketchStore",
    "SketchStoreWarning",
    "StreamSketcher",
    "values_fingerprint",
]
