"""The combined column featurizer.

Produces one fixed-length feature vector per column, organised into the
Sherlock feature groups (Char / Word / Para / Stat).  The featurizer is
*fitted* on training tables (to train the word and paragraph embedding
substrate and the feature standardiser) and then applied to any column.

The per-group index slices are exposed so that

* the models can route each group through its own subnetwork, and
* the permutation-importance analysis (Figure 9) can shuffle one group at a
  time across tables.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.embeddings import ParagraphEmbedder, WordEmbeddingModel, tokenize_values
from repro.features.char_features import CHAR_FEATURE_NAMES, char_features
from repro.features.stats_features import STAT_FEATURE_NAMES, column_statistics
from repro.tables import Column, Table

__all__ = ["FeatureGroup", "FeatureMatrix", "ColumnFeaturizer"]


@dataclass(frozen=True)
class FeatureGroup:
    """Name and index range of one feature group inside the full vector."""

    name: str
    start: int
    stop: int

    @property
    def size(self) -> int:
        """Number of features in the group."""
        return self.stop - self.start

    @property
    def slice(self) -> slice:
        """The slice selecting this group from a feature vector."""
        return slice(self.start, self.stop)


@dataclass
class FeatureMatrix:
    """Features for a set of columns, with group metadata and labels."""

    matrix: np.ndarray
    groups: tuple[FeatureGroup, ...]
    labels: list[str | None]
    table_ids: list[str | None]
    column_positions: list[int]

    def __len__(self) -> int:
        return self.matrix.shape[0]

    def group(self, name: str) -> FeatureGroup:
        """Return a group by name."""
        for group in self.groups:
            if group.name == name:
                return group
        raise KeyError(f"unknown feature group {name!r}")


class ColumnFeaturizer:
    """Extracts Char / Word / Para / Stat features for table columns.

    Parameters
    ----------
    word_dim:
        Dimensionality of the Word embedding features.
    para_dim:
        Dimensionality of the Para(graph) embedding features.
    max_tokens_per_column:
        Token budget per column when computing embedding features (keeps the
        cost of very long columns bounded).
    standardize:
        Whether to z-score features using statistics from :meth:`fit`.
    backend:
        Featurization backend: ``"vectorized"`` (the default — batched NumPy
        array ops via :class:`~repro.features.engine.VectorizedEngine`) or
        ``"loop"`` (the per-value Python reference implementation, kept as
        the parity oracle).
    workers:
        When > 1 and the backend is ``"vectorized"``, large batches are
        partitioned into contiguous column shards featurized by a process
        pool and reassembled in stable input order.  ``0``/``1`` featurize
        in-process.
    """

    BACKENDS = ("loop", "vectorized")

    def __init__(
        self,
        word_dim: int = 48,
        para_dim: int = 32,
        max_tokens_per_column: int = 256,
        standardize: bool = True,
        min_token_count: int = 2,
        seed: int = 0,
        backend: str = "vectorized",
        workers: int = 0,
    ) -> None:
        if backend not in self.BACKENDS:
            raise ValueError(f"unknown feature backend {backend!r}")
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.word_dim = word_dim
        self.para_dim = para_dim
        self.max_tokens_per_column = max_tokens_per_column
        self.standardize = standardize
        self.min_token_count = min_token_count
        self.seed = seed
        self.backend = backend
        self.workers = workers
        self.word_model = WordEmbeddingModel(
            dim=word_dim, min_count=min_token_count, seed=seed
        )
        self.paragraph_embedder = ParagraphEmbedder(
            self.word_model, dim=para_dim, seed=seed
        )
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None
        self._groups: tuple[FeatureGroup, ...] | None = None
        self._engine = None
        self._fitted = False
        # Runtime (non-fitted) sketch settings: a persistent store consulted
        # by transform_columns, and the bounded-sample dial.  See
        # :meth:`set_sketch_store`.
        self.sketch_store = None
        self.sketch_sample_rows: int | None = None
        self._sketch_section: str | None = None

    # ------------------------------------------------------------------ fit

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self._fitted

    @property
    def groups(self) -> tuple[FeatureGroup, ...]:
        """Per-group slices of the full feature vector."""
        if self._groups is None:
            char_size = len(CHAR_FEATURE_NAMES)
            stat_size = len(STAT_FEATURE_NAMES)
            boundaries = [
                ("char", char_size),
                ("word", self.word_dim),
                ("para", self.para_dim),
                ("stat", stat_size),
            ]
            groups = []
            start = 0
            for name, size in boundaries:
                groups.append(FeatureGroup(name=name, start=start, stop=start + size))
                start += size
            self._groups = tuple(groups)
        return self._groups

    @property
    def n_features(self) -> int:
        """Total feature dimensionality."""
        return self.groups[-1].stop

    def fit(self, tables: Iterable[Table]) -> "ColumnFeaturizer":
        """Fit the embedding substrate and the standardiser on training tables.

        Delegates to :meth:`fit_stream` over whole-table single-chunk
        streams, so the in-memory path and the streamed path are one code
        path (and therefore bit-identical for any chunk size).
        """
        from repro.tables.chunks import stream_tables

        return self.fit_stream(stream_tables(list(tables)))

    def fit_stream(
        self, streams, sketch_store=None, sample_rows: int | None = None
    ) -> "ColumnFeaturizer":
        """Fit from an iterable of :class:`~repro.tables.TableStream`.

        Each stream's chunks are folded into one
        :class:`~repro.features.accumulators.ColumnAccumulator` per
        column, so memory is proportional to the number of columns (plus
        distinct values per column), never the row count.  The result is
        bit-identical to :meth:`fit` on the materialized tables.

        With ``sketch_store`` (a
        :class:`~repro.features.sketchstore.SketchStore`), accumulator
        states are read through a substrate-free "content" section keyed
        by column fingerprint: refitting over a mostly-unchanged corpus
        skips accumulation for every unchanged column, bit-identically.
        ``sample_rows`` bounds accumulation to each column's first N
        values (the fingerprint still covers the full content).
        """
        self._reset_engine()
        self._sketch_section = None
        accumulators = []
        if sketch_store is None and sample_rows is None:
            for stream in streams:
                stream_accs = [
                    self.column_accumulator() for _ in range(stream.n_columns)
                ]
                for chunk in stream.chunks:
                    if chunk.n_columns != len(stream_accs):
                        raise ValueError(
                            f"chunk has {chunk.n_columns} columns, stream "
                            f"declared {len(stream_accs)}"
                        )
                    row_span = chunk.n_rows
                    for accumulator, values in zip(stream_accs, chunk.columns):
                        accumulator.partial_fit(
                            values, start_row=chunk.start_row, row_span=row_span
                        )
                accumulators.extend(stream_accs)
        else:
            accumulators = self._fit_accumulators_sketched(
                streams, sketch_store, sample_rows
            )
        documents = [
            accumulator.token_list()[: self.max_tokens_per_column]
            for accumulator in accumulators
        ]
        self.word_model.fit(documents)
        self.paragraph_embedder.fit(documents)
        # The embedding substrate is fitted, which is everything transform
        # needs; flip the flag now so the standardiser pass below can run.
        self._mean = None
        self._std = None
        self._fitted = True
        if self.standardize and accumulators:
            try:
                raw = np.stack([self._raw_from_accumulator(a) for a in accumulators])
            except BaseException:
                # A failed standardiser pass must not leave a "fitted"
                # featurizer that silently serves unstandardized features.
                self._fitted = False
                raise
            self._mean = raw.mean(axis=0)
            self._std = raw.std(axis=0)
            self._std[self._std < 1e-8] = 1.0
        return self

    def _fit_accumulators_sketched(self, streams, sketch_store, sample_rows):
        """Accumulators for ``fit_stream``, read through the sketch store."""
        from repro.features import sketchstore

        sketch_store, owns_store = sketchstore.open_store(sketch_store)
        section = None
        if sketch_store is not None:
            section = sketch_store.section(
                sketchstore.content_section_config(
                    self.max_tokens_per_column, sample_rows=sample_rows
                )
            )
        accumulators = []
        for stream in streams:
            sketcher = sketchstore.StreamSketcher(
                self, stream.n_columns, sample_rows=sample_rows
            )
            for chunk in stream.chunks:
                if chunk.n_columns != sketcher.n_columns:
                    raise ValueError(
                        f"chunk has {chunk.n_columns} columns, stream "
                        f"declared {sketcher.n_columns}"
                    )
                sketcher.feed(chunk)
            for index, fingerprint in enumerate(sketcher.fingerprints()):
                accumulator = None
                if sketch_store is not None and not sketcher.flushed:
                    accumulator = sketchstore.accumulator_from_sketch(
                        sketch_store.get(section, fingerprint),
                        self.max_tokens_per_column,
                    )
                if accumulator is None:
                    accumulator = sketcher.accumulator(index)
                    if sketch_store is not None:
                        sketch_store.put(
                            section,
                            fingerprint,
                            sketchstore.content_sketch(accumulator, sketcher.n_rows),
                        )
                accumulators.append(accumulator)
        if owns_store:
            sketch_store.close()
        return accumulators

    # ------------------------------------------------------------ transform

    @property
    def engine(self):
        """The vectorized featurization engine (built lazily, reset on refit)."""
        if self._engine is None:
            from repro.features.engine import VectorizedEngine

            self._engine = VectorizedEngine(self)
        return self._engine

    def _reset_engine(self) -> None:
        if self._engine is not None:
            self._engine.close()
            self._engine = None

    def close(self) -> None:
        """Release engine resources (worker pool, memos).

        Safe to call at any time: the featurizer stays fully usable and
        rebuilds its engine (and pool) lazily on the next transform.
        """
        self._reset_engine()

    def runtime_clone(
        self, backend: str | None = None, workers: int | None = None
    ) -> "ColumnFeaturizer":
        """A copy with independent runtime settings but shared fitted state.

        The clone aliases the (immutable once fitted) embedding substrate
        and standardiser arrays, but owns its backend/workers settings and
        its engine (memos, worker pool), so reconfiguring or closing it
        never affects the original — every :class:`~repro.serving.Predictor`
        serves through its own clone.
        """
        clone = copy.copy(self)
        clone._engine = None
        if backend is not None or workers is not None:
            clone.set_backend(backend or clone.backend, workers)
        return clone

    def set_backend(
        self, backend: str, workers: int | None = None
    ) -> "ColumnFeaturizer":
        """Switch the featurization backend (and optionally the worker count).

        The backend is runtime behaviour, not fitted state: switching never
        invalidates the embedding substrate or the standardiser, and the two
        backends produce the same features to floating-point round-off.
        """
        if backend not in self.BACKENDS:
            raise ValueError(f"unknown feature backend {backend!r}")
        self.backend = backend
        # Sketch sections are keyed by producer (= backend): re-resolve.
        self._sketch_section = None
        if workers is not None:
            if workers < 0:
                raise ValueError("workers must be >= 0")
            self.workers = workers
        return self

    def set_sketch_store(
        self, store, sample_rows: int | None = None
    ) -> "ColumnFeaturizer":
        """Attach a persistent sketch store to the transform path.

        ``store`` is a :class:`~repro.features.sketchstore.SketchStore`
        (or ``None`` to detach).  Once attached, :meth:`transform_columns`
        serves any column whose content fingerprint hits the store's
        section for this featurizer's configuration from the stored raw
        row — bit-identical to recomputing it, because the stored row IS
        a previously computed one and standardisation is elementwise —
        and writes back the rows it had to compute.

        ``sample_rows`` is the bounded-sample dial: store misses are
        featurized from each column's first N values only (fingerprints
        always cover the full content, so a differently-sampled
        configuration is a different section, never a false hit).
        """
        if sample_rows is not None and sample_rows < 1:
            raise ValueError("sample_rows must be >= 1")
        self.sketch_store = store
        self.sketch_sample_rows = sample_rows
        self._sketch_section = None
        return self

    def _raw_features(self, column: Column) -> np.ndarray:
        """The loop (oracle) backend: featurize one column in pure Python."""
        tokens = tokenize_values(column.values)[: self.max_tokens_per_column]
        char_vector = char_features(column.values)
        word_vector = self.word_model.mean_vector(tokens)
        para_vector = self.paragraph_embedder.embed(tokens)
        stat_vector = column_statistics(column.values)
        return np.concatenate([char_vector, word_vector, para_vector, stat_vector])

    # ------------------------------------------------------------ streaming

    def column_accumulator(self, max_tokens: int | None = None):
        """A fresh per-column accumulator for the streaming path.

        ``max_tokens`` defaults to the featurizer's own token budget;
        callers that also need the table-level topic document (the
        streaming annotator) pass a larger cap and
        :meth:`finalize_columns` re-slices to the per-column budget.
        """
        from repro.features.accumulators import ColumnAccumulator

        if max_tokens is None:
            max_tokens = self.max_tokens_per_column
        elif max_tokens < self.max_tokens_per_column:
            raise ValueError(
                "max_tokens must cover the featurizer's max_tokens_per_column"
            )
        return ColumnAccumulator(max_tokens)

    def _raw_from_accumulator(self, accumulator) -> np.ndarray:
        """Raw features from accumulated state.

        Bit-identical to :meth:`_raw_features` on the same values: the
        Char/Stat accumulators ARE the loop implementation, and the token
        accumulator reassembles the exact capped prefix the loop path
        tokenizes.
        """
        tokens = accumulator.token_list()[: self.max_tokens_per_column]
        char_vector = accumulator.char.finalize()
        word_vector = self.word_model.mean_vector(tokens)
        para_vector = self.paragraph_embedder.embed(tokens)
        stat_vector = accumulator.stat.finalize()
        return np.concatenate([char_vector, word_vector, para_vector, stat_vector])

    def raw_from_accumulator(self, accumulator) -> np.ndarray:
        """Public raw-row finalization for one accumulator (unstandardized).

        The building block the sketch store persists: pair with
        :meth:`standardize_matrix` to reproduce :meth:`finalize_columns`
        bit-for-bit on any mix of fresh and stored rows.
        """
        if not self._fitted:
            raise RuntimeError("featurizer must be fitted before transform")
        return self._raw_from_accumulator(accumulator)

    def standardize_matrix(self, raw: np.ndarray) -> np.ndarray:
        """Apply the fitted standardiser to a raw feature matrix.

        Elementwise (per-row independent), so standardising rows served
        from the sketch store is bit-identical to standardising them
        inside the batch that originally computed them.
        """
        if self.standardize and self._mean is not None and self._std is not None:
            return (raw - self._mean) / self._std
        return raw

    def finalize_columns(self, accumulators) -> np.ndarray:
        """Finalize a batch of column accumulators into feature vectors.

        The streaming counterpart of :meth:`transform_columns`: same
        standardisation, same output shape, bit-identical to the loop
        full-scan path for any chunking/merge order of the inputs.
        """
        accumulators = list(accumulators)
        if not accumulators:
            return np.zeros((0, self.n_features), dtype=np.float64)
        if not self._fitted:
            raise RuntimeError("featurizer must be fitted before transform")
        raw = np.stack([self._raw_from_accumulator(a) for a in accumulators])
        return self.standardize_matrix(raw)

    def transform_stream(self, stream) -> np.ndarray:
        """Featurize one :class:`~repro.tables.TableStream` in bounded memory."""
        accumulators = [self.column_accumulator() for _ in range(stream.n_columns)]
        for chunk in stream.chunks:
            row_span = chunk.n_rows
            for accumulator, values in zip(accumulators, chunk.columns):
                accumulator.partial_fit(
                    values, start_row=chunk.start_row, row_span=row_span
                )
        return self.finalize_columns(accumulators)

    def _compute_raw(self, columns: Sequence[Column]) -> np.ndarray:
        """Raw (unstandardized) features for a batch, via the active backend."""
        if self.backend == "vectorized":
            return self.engine.transform(columns)
        return np.stack([self._raw_features(column) for column in columns])

    def _raw_matrix(self, columns: Sequence[Column]) -> np.ndarray:
        """Raw features for a batch, read through the sketch store when set.

        Hits are served from stored raw rows (bit-identical to the run
        that stored them); misses are computed through the active backend
        — from a bounded sample when ``sketch_sample_rows`` is set — and
        written back.
        """
        store = self.sketch_store
        sample = self.sketch_sample_rows
        if store is None and sample is None:
            return self._compute_raw(columns)
        from repro.features import sketchstore

        keys: list[str] | None = None
        section = None
        if store is not None:
            section = self._sketch_section
            if section is None:
                section = store.section(
                    sketchstore.column_section_config(
                        self, producer=self.backend, sample_rows=sample
                    )
                )
                self._sketch_section = section
            from repro.obs import span

            with span("sketch.lookup", n_columns=len(columns)) as lookup:
                keys = [
                    sketchstore.values_fingerprint(column.values)
                    for column in columns
                ]
                rows = [
                    sketchstore.sketch_row(store.get(section, key), self.n_features)
                    for key in keys
                ]
                misses = sum(1 for row in rows if row is None)
                lookup.meta = {"hits": len(rows) - misses, "misses": misses}
        else:
            rows = [None] * len(columns)
        missing = [index for index, row in enumerate(rows) if row is None]
        if missing:
            todo = [columns[index] for index in missing]
            if sample is not None:
                todo = [sketchstore.sampled_column(column, sample) for column in todo]
            computed = self._compute_raw(todo)
            for position, index in enumerate(missing):
                row = computed[position]
                rows[index] = row
                if store is not None:
                    store.put(
                        section,
                        keys[index],
                        {
                            "n": len(columns[index].values),
                            "row": row.tolist(),
                        },
                    )
        return np.stack(rows)

    def transform_column(self, column: Column) -> np.ndarray:
        """Featurize one column."""
        return self.transform_columns([column])[0]

    def transform_table(self, table: Table) -> np.ndarray:
        """Featurize all columns of a table, returning an (m, n_features) matrix."""
        return self.transform_columns(table.columns)

    def transform_columns(self, columns: Sequence[Column]) -> np.ndarray:
        """Featurize a batch of columns into an (m, n_features) matrix.

        Raw features are computed for the whole batch at once (array ops
        under the vectorized backend, a Python loop under the loop backend)
        and standardised in one vectorised operation; this is the building
        block of both the training path and the batched serving path.
        """
        if not columns:
            return np.zeros((0, self.n_features), dtype=np.float64)
        if not self._fitted:
            raise RuntimeError("featurizer must be fitted before transform")
        return self.standardize_matrix(self._raw_matrix(columns))

    def transform_tables(self, tables: Sequence[Table]) -> FeatureMatrix:
        """Featurize every column of every table into one feature matrix.

        All columns of all tables are featurized in a single batched
        :meth:`transform_columns` call, so the training path goes through
        the same vectorized (and optionally sharded) code as serving.
        """
        columns: list[Column] = []
        labels: list[str | None] = []
        table_ids: list[str | None] = []
        positions: list[int] = []
        for table in tables:
            for position, column in enumerate(table.columns):
                columns.append(column)
                labels.append(column.semantic_type)
                table_ids.append(table.table_id)
                positions.append(position)
        matrix = self.transform_columns(columns)
        return FeatureMatrix(
            matrix=matrix,
            groups=self.groups,
            labels=labels,
            table_ids=table_ids,
            column_positions=positions,
        )

    # -------------------------------------------------------- serialisation

    def config_dict(self) -> dict:
        """JSON-serialisable constructor configuration."""
        return {
            "word_dim": self.word_dim,
            "para_dim": self.para_dim,
            "max_tokens_per_column": self.max_tokens_per_column,
            "standardize": self.standardize,
            "min_token_count": self.min_token_count,
            "seed": self.seed,
            "backend": self.backend,
            # The worker count is deployment configuration, not model
            # configuration: a bundle trained with --workers 8 must not
            # silently spawn an 8-process pool on whatever box loads it.
            "workers": 0,
        }

    def state_dict(self) -> dict[str, np.ndarray]:
        """Serialisable fitted state: embedding substrate + standardiser."""
        if not self._fitted:
            raise RuntimeError("featurizer is not fitted")
        state: dict[str, np.ndarray] = {}
        for key, value in self.word_model.state_dict().items():
            state[f"word.{key}"] = value
        for key, value in self.paragraph_embedder.state_dict().items():
            state[f"para.{key}"] = value
        if self._mean is not None and self._std is not None:
            state["mean"] = self._mean.copy()
            state["std"] = self._std.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore state produced by :meth:`state_dict`."""
        self._reset_engine()
        self._sketch_section = None
        self.word_model.load_state_dict(
            {k[len("word."):]: v for k, v in state.items() if k.startswith("word.")}
        )
        self.paragraph_embedder.load_state_dict(
            {k[len("para."):]: v for k, v in state.items() if k.startswith("para.")}
        )
        if "mean" in state and "std" in state:
            # Zero-copy: standardisation only reads these (shared-memory
            # serving hands in non-writeable views).
            self._mean = np.asarray(state["mean"], dtype=np.float64)
            self._std = np.asarray(state["std"], dtype=np.float64)
        else:
            self._mean = None
            self._std = None
        self._fitted = True

    def feature_names(self) -> list[str]:
        """Human-readable names of every feature dimension."""
        names = list(CHAR_FEATURE_NAMES)
        names.extend(f"word_emb[{i}]" for i in range(self.word_dim))
        names.extend(f"para_emb[{i}]" for i in range(self.para_dim))
        names.extend(STAT_FEATURE_NAMES)
        return names
