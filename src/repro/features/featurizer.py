"""The combined column featurizer.

Produces one fixed-length feature vector per column, organised into the
Sherlock feature groups (Char / Word / Para / Stat).  The featurizer is
*fitted* on training tables (to train the word and paragraph embedding
substrate and the feature standardiser) and then applied to any column.

The per-group index slices are exposed so that

* the models can route each group through its own subnetwork, and
* the permutation-importance analysis (Figure 9) can shuffle one group at a
  time across tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.embeddings import ParagraphEmbedder, WordEmbeddingModel, tokenize_values
from repro.features.char_features import CHAR_FEATURE_NAMES, char_features
from repro.features.stats_features import STAT_FEATURE_NAMES, column_statistics
from repro.tables import Column, Table

__all__ = ["FeatureGroup", "FeatureMatrix", "ColumnFeaturizer"]


@dataclass(frozen=True)
class FeatureGroup:
    """Name and index range of one feature group inside the full vector."""

    name: str
    start: int
    stop: int

    @property
    def size(self) -> int:
        """Number of features in the group."""
        return self.stop - self.start

    @property
    def slice(self) -> slice:
        """The slice selecting this group from a feature vector."""
        return slice(self.start, self.stop)


@dataclass
class FeatureMatrix:
    """Features for a set of columns, with group metadata and labels."""

    matrix: np.ndarray
    groups: tuple[FeatureGroup, ...]
    labels: list[str | None]
    table_ids: list[str | None]
    column_positions: list[int]

    def __len__(self) -> int:
        return self.matrix.shape[0]

    def group(self, name: str) -> FeatureGroup:
        """Return a group by name."""
        for group in self.groups:
            if group.name == name:
                return group
        raise KeyError(f"unknown feature group {name!r}")


class ColumnFeaturizer:
    """Extracts Char / Word / Para / Stat features for table columns.

    Parameters
    ----------
    word_dim:
        Dimensionality of the Word embedding features.
    para_dim:
        Dimensionality of the Para(graph) embedding features.
    max_tokens_per_column:
        Token budget per column when computing embedding features (keeps the
        cost of very long columns bounded).
    standardize:
        Whether to z-score features using statistics from :meth:`fit`.
    """

    def __init__(
        self,
        word_dim: int = 48,
        para_dim: int = 32,
        max_tokens_per_column: int = 256,
        standardize: bool = True,
        min_token_count: int = 2,
        seed: int = 0,
    ) -> None:
        self.word_dim = word_dim
        self.para_dim = para_dim
        self.max_tokens_per_column = max_tokens_per_column
        self.standardize = standardize
        self.min_token_count = min_token_count
        self.seed = seed
        self.word_model = WordEmbeddingModel(
            dim=word_dim, min_count=min_token_count, seed=seed
        )
        self.paragraph_embedder = ParagraphEmbedder(
            self.word_model, dim=para_dim, seed=seed
        )
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None
        self._groups: tuple[FeatureGroup, ...] | None = None
        self._fitted = False

    # ------------------------------------------------------------------ fit

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self._fitted

    @property
    def groups(self) -> tuple[FeatureGroup, ...]:
        """Per-group slices of the full feature vector."""
        if self._groups is None:
            char_size = len(CHAR_FEATURE_NAMES)
            stat_size = len(STAT_FEATURE_NAMES)
            boundaries = [
                ("char", char_size),
                ("word", self.word_dim),
                ("para", self.para_dim),
                ("stat", stat_size),
            ]
            groups = []
            start = 0
            for name, size in boundaries:
                groups.append(FeatureGroup(name=name, start=start, stop=start + size))
                start += size
            self._groups = tuple(groups)
        return self._groups

    @property
    def n_features(self) -> int:
        """Total feature dimensionality."""
        return self.groups[-1].stop

    def fit(self, tables: Iterable[Table]) -> "ColumnFeaturizer":
        """Fit the embedding substrate and the standardiser on training tables."""
        tables = list(tables)
        documents = [
            tokenize_values(column.values)[: self.max_tokens_per_column]
            for table in tables
            for column in table.columns
        ]
        self.word_model.fit(documents)
        self.paragraph_embedder.fit(documents)
        if self.standardize and tables:
            raw = np.stack(
                [
                    self._raw_features(column)
                    for table in tables
                    for column in table.columns
                ]
            )
            self._mean = raw.mean(axis=0)
            self._std = raw.std(axis=0)
            self._std[self._std < 1e-8] = 1.0
        self._fitted = True
        return self

    # ------------------------------------------------------------ transform

    def _raw_features(self, column: Column) -> np.ndarray:
        tokens = tokenize_values(column.values)[: self.max_tokens_per_column]
        char_vector = char_features(column.values)
        word_vector = self.word_model.mean_vector(tokens)
        para_vector = self.paragraph_embedder.embed(tokens)
        stat_vector = column_statistics(column.values)
        return np.concatenate([char_vector, word_vector, para_vector, stat_vector])

    def transform_column(self, column: Column) -> np.ndarray:
        """Featurize one column."""
        if not self._fitted:
            raise RuntimeError("featurizer must be fitted before transform")
        features = self._raw_features(column)
        if self.standardize and self._mean is not None and self._std is not None:
            features = (features - self._mean) / self._std
        return features

    def transform_table(self, table: Table) -> np.ndarray:
        """Featurize all columns of a table, returning an (m, n_features) matrix."""
        return self.transform_columns(table.columns)

    def transform_columns(self, columns: Sequence[Column]) -> np.ndarray:
        """Featurize a batch of columns into an (m, n_features) matrix.

        Raw features are stacked first and standardised in one vectorised
        operation, which is the building block of the batched serving path.
        """
        if not self._fitted:
            raise RuntimeError("featurizer must be fitted before transform")
        if not columns:
            return np.zeros((0, self.n_features), dtype=np.float64)
        raw = np.stack([self._raw_features(column) for column in columns])
        if self.standardize and self._mean is not None and self._std is not None:
            raw = (raw - self._mean) / self._std
        return raw

    def transform_tables(self, tables: Sequence[Table]) -> FeatureMatrix:
        """Featurize every column of every table into one feature matrix."""
        rows: list[np.ndarray] = []
        labels: list[str | None] = []
        table_ids: list[str | None] = []
        positions: list[int] = []
        for table in tables:
            for position, column in enumerate(table.columns):
                rows.append(self.transform_column(column))
                labels.append(column.semantic_type)
                table_ids.append(table.table_id)
                positions.append(position)
        matrix = (
            np.stack(rows)
            if rows
            else np.zeros((0, self.n_features), dtype=np.float64)
        )
        return FeatureMatrix(
            matrix=matrix,
            groups=self.groups,
            labels=labels,
            table_ids=table_ids,
            column_positions=positions,
        )

    # -------------------------------------------------------- serialisation

    def config_dict(self) -> dict:
        """JSON-serialisable constructor configuration."""
        return {
            "word_dim": self.word_dim,
            "para_dim": self.para_dim,
            "max_tokens_per_column": self.max_tokens_per_column,
            "standardize": self.standardize,
            "min_token_count": self.min_token_count,
            "seed": self.seed,
        }

    def state_dict(self) -> dict[str, np.ndarray]:
        """Serialisable fitted state: embedding substrate + standardiser."""
        if not self._fitted:
            raise RuntimeError("featurizer is not fitted")
        state: dict[str, np.ndarray] = {}
        for key, value in self.word_model.state_dict().items():
            state[f"word.{key}"] = value
        for key, value in self.paragraph_embedder.state_dict().items():
            state[f"para.{key}"] = value
        if self._mean is not None and self._std is not None:
            state["mean"] = self._mean.copy()
            state["std"] = self._std.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore state produced by :meth:`state_dict`."""
        self.word_model.load_state_dict(
            {k[len("word."):]: v for k, v in state.items() if k.startswith("word.")}
        )
        self.paragraph_embedder.load_state_dict(
            {k[len("para."):]: v for k, v in state.items() if k.startswith("para.")}
        )
        if "mean" in state and "std" in state:
            self._mean = np.asarray(state["mean"], dtype=np.float64).copy()
            self._std = np.asarray(state["std"], dtype=np.float64).copy()
        else:
            self._mean = None
            self._std = None
        self._fitted = True

    def feature_names(self) -> list[str]:
        """Human-readable names of every feature dimension."""
        names = list(CHAR_FEATURE_NAMES)
        names.extend(f"word_emb[{i}]" for i in range(self.word_dim))
        names.extend(f"para_emb[{i}]" for i in range(self.para_dim))
        names.extend(STAT_FEATURE_NAMES)
        return names
