"""Mergeable per-column accumulators for streaming featurization.

Every per-column quantity the featurizer needs — Char statistics, Stat
statistics, and the capped token prefix feeding the Word/Para embeddings
— is reducible to a mergeable accumulator with ``partial_fit`` /
``merge`` / ``finalize``.  Feeding a column's values in chunks of any
size, merging partial accumulators in any order, and finalizing yields
the exact same bits as one full scan:

* :class:`~repro.features.char_features.CharAccumulator` and
  :class:`~repro.features.stats_features.StatAccumulator` hold exact
  integer/``Counter`` state and finalize through order-invariant
  canonical formulas (see their modules);
* :class:`TokenAccumulator` handles the one *order-dependent* quantity —
  the first ``max_tokens`` tokens of the column — by tracking
  row-positioned token segments that coalesce when contiguous, so merge
  order cannot change the assembled prefix;
* :class:`ColumnAccumulator` composes the three behind one
  ``partial_fit``/``merge`` pair and is what
  :meth:`~repro.features.ColumnFeaturizer.column_accumulator` hands out.

Examples:
    >>> from repro.features.accumulators import TokenAccumulator
    >>> whole = TokenAccumulator(max_tokens=4).partial_fit(["a b", "c", "d e"])
    >>> head = TokenAccumulator(max_tokens=4).partial_fit(["a b"], start_row=0)
    >>> tail = TokenAccumulator(max_tokens=4).partial_fit(["c", "d e"], start_row=1)
    >>> tail.merge(head).tokens() == whole.tokens() == ["a", "b", "c", "d"]
    True
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.embeddings.tokenizer import tokenize
from repro.features.char_features import CharAccumulator
from repro.features.stats_features import StatAccumulator

__all__ = [
    "CharAccumulator",
    "StatAccumulator",
    "TokenAccumulator",
    "ColumnAccumulator",
]


class TokenAccumulator:
    """Order-invariant accumulator for a column's capped token prefix.

    The featurizer's Word/Para features read the first ``max_tokens``
    tokens of the column *in row order* — a prefix, not a bag, so naive
    chunk concatenation would depend on merge order.  Each
    ``partial_fit`` therefore records a *segment*: the rows it covers
    (``start_row`` + row span) and the first ``max_tokens`` tokens of
    those rows.  Contiguous segments coalesce (a segment capped at
    ``max_tokens`` already holds every token the combined prefix can
    need), so any merge order over any chunking reassembles the same
    prefix the full scan produces.

    Memory is O(``max_tokens`` + number of non-contiguous segments).
    """

    __slots__ = ("max_tokens", "_segments")

    def __init__(self, max_tokens: int) -> None:
        if max_tokens < 0:
            raise ValueError("max_tokens must be >= 0")
        self.max_tokens = max_tokens
        # Sorted, disjoint [start_row, row_span, tokens] segments.
        self._segments: list[list] = []

    @property
    def n_rows(self) -> int:
        """Total rows covered (the end of the furthest segment)."""
        if not self._segments:
            return 0
        last = self._segments[-1]
        return last[0] + last[1]

    def partial_fit(
        self,
        values: Iterable[str],
        start_row: int | None = None,
        row_span: int | None = None,
    ) -> "TokenAccumulator":
        """Fold a contiguous batch of values into the accumulator.

        ``start_row`` defaults to appending after the rows seen so far
        (the sequential-scan case).  ``row_span`` covers ragged chunks
        whose row extent exceeds the number of values this column
        contributes; it defaults to ``len(values)``.
        """
        values = list(values)
        if start_row is None:
            start_row = self.n_rows
        if row_span is None:
            row_span = len(values)
        if row_span < len(values):
            raise ValueError("row_span cannot be smaller than the number of values")
        tokens: list[str] = []
        for value in values:
            if len(tokens) >= self.max_tokens:
                break
            tokens.extend(tokenize(value))
        del tokens[self.max_tokens :]
        self._insert([start_row, row_span, tokens])
        return self

    def merge(self, other: "TokenAccumulator") -> "TokenAccumulator":
        """Fold another accumulator's segments into this one."""
        if other.max_tokens != self.max_tokens:
            raise ValueError("cannot merge TokenAccumulators with different caps")
        for start_row, row_span, tokens in other._segments:
            self._insert([start_row, row_span, list(tokens)])
        return self

    def _insert(self, segment: list) -> None:
        self._segments.append(segment)
        self._segments.sort(key=lambda seg: seg[0])
        merged: list[list] = []
        for seg in self._segments:
            if merged:
                prev = merged[-1]
                prev_end = prev[0] + prev[1]
                if seg[0] < prev_end:
                    raise ValueError(
                        f"overlapping token segments at row {seg[0]} "
                        f"(previous segment covers up to row {prev_end})"
                    )
                if seg[0] == prev_end:
                    prev[1] += seg[1]
                    if len(prev[2]) < self.max_tokens:
                        prev[2].extend(seg[2])
                        del prev[2][self.max_tokens :]
                    continue
            merged.append(seg)
        self._segments = merged

    def to_state(self) -> dict:
        """JSON-serialisable exact state (round-trips via :meth:`from_state`)."""
        return {
            "max_tokens": self.max_tokens,
            "segments": [
                [start_row, row_span, list(tokens)]
                for start_row, row_span, tokens in self._segments
            ],
        }

    @classmethod
    def from_state(cls, state: dict) -> "TokenAccumulator":
        """Rebuild an accumulator from :meth:`to_state` output."""
        accumulator = cls(int(state["max_tokens"]))
        for start_row, row_span, tokens in state["segments"]:
            accumulator._insert(
                [int(start_row), int(row_span), [str(t) for t in tokens]]
            )
        return accumulator

    def tokens(self) -> list[str]:
        """The assembled token prefix (at most ``max_tokens`` tokens)."""
        if len(self._segments) == 1:
            return list(self._segments[0][2][: self.max_tokens])
        tokens: list[str] = []
        for _, _, segment_tokens in self._segments:
            tokens.extend(segment_tokens)
            if len(tokens) >= self.max_tokens:
                break
        del tokens[self.max_tokens :]
        return tokens


class ColumnAccumulator:
    """Composite accumulator carrying everything one column needs.

    One ``partial_fit`` per chunk feeds the Char, Stat and token
    accumulators together;
    :meth:`~repro.features.ColumnFeaturizer.finalize_columns` turns a
    batch of these into the standardized feature matrix.
    """

    __slots__ = ("char", "stat", "tokens")

    def __init__(self, max_tokens: int) -> None:
        self.char = CharAccumulator()
        self.stat = StatAccumulator()
        self.tokens = TokenAccumulator(max_tokens)

    @property
    def n_rows(self) -> int:
        """Total rows folded in so far."""
        return self.tokens.n_rows

    def partial_fit(
        self,
        values: Sequence[str],
        start_row: int | None = None,
        row_span: int | None = None,
    ) -> "ColumnAccumulator":
        """Fold one contiguous chunk of column values into the accumulator."""
        values = list(values)
        self.char.partial_fit(values)
        self.stat.partial_fit(values)
        self.tokens.partial_fit(values, start_row=start_row, row_span=row_span)
        return self

    def merge(self, other: "ColumnAccumulator") -> "ColumnAccumulator":
        """Fold another column accumulator's state into this one."""
        self.char.merge(other.char)
        self.stat.merge(other.stat)
        self.tokens.merge(other.tokens)
        return self

    def token_list(self) -> list[str]:
        """The column's capped token prefix (for Word/Para features)."""
        return self.tokens.tokens()

    def to_state(self) -> dict:
        """JSON-serialisable exact state of all three sub-accumulators."""
        return {
            "char": self.char.to_state(),
            "stat": self.stat.to_state(),
            "tokens": self.tokens.to_state(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "ColumnAccumulator":
        """Rebuild a composite accumulator from :meth:`to_state` output."""
        tokens = TokenAccumulator.from_state(state["tokens"])
        accumulator = cls(tokens.max_tokens)
        accumulator.char = CharAccumulator.from_state(state["char"])
        accumulator.stat = StatAccumulator.from_state(state["stat"])
        accumulator.tokens = tokens
        return accumulator
