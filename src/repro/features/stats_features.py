"""Global column statistics (the Stat group).

Sherlock's Stat group has 27 hand-crafted global statistics per column
(entropy, uniqueness, numeric summary statistics, value-length statistics,
missing-value counts, ...).  This module reproduces a 27-dimensional Stat
vector with the same flavour of statistics.

The implementation is a mergeable accumulator (:class:`StatAccumulator`)
whose state is a missing-cell count plus a ``Counter`` of the distinct
kept values — exact sufficient statistics for every one of the 27
features.  ``finalize`` reduces that state through canonical
order-invariant formulas (weighted ``math.fsum`` sums over the *sorted*
distinct values), so a column fed in chunks, in any chunk size and any
merge order, finalizes to the exact same bits as a single full scan.
Memory is O(distinct kept values), not O(rows).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Sequence

import numpy as np

__all__ = ["STAT_FEATURE_NAMES", "StatAccumulator", "column_statistics"]

STAT_FEATURE_NAMES: list[str] = [
    "n_values",
    "n_missing",
    "frac_missing",
    "n_unique",
    "frac_unique",
    "entropy",
    "normalized_entropy",
    "frac_numeric",
    "numeric_mean",
    "numeric_std",
    "numeric_min",
    "numeric_max",
    "numeric_median",
    "numeric_sum_log",
    "frac_negative",
    "frac_integer",
    "mean_length",
    "std_length",
    "min_length",
    "max_length",
    "median_length",
    "mean_word_count",
    "max_word_count",
    "frac_contains_digit",
    "frac_contains_alpha",
    "frac_all_upper",
    "mode_frequency",
]

assert len(STAT_FEATURE_NAMES) == 27


def _try_parse_number(value: str) -> float | None:
    text = value.strip().replace(",", "").replace("$", "").replace("%", "")
    if not text:
        return None
    try:
        number = float(text)
    except ValueError:
        return None
    # Reject "inf"/"nan" spellings: they parse but are not table numbers and
    # would poison the downstream statistics.
    return number if math.isfinite(number) else None


def _weighted_median(sorted_pairs: list[tuple[float, int]], n: int) -> float:
    """Median of ``n`` values given sorted ``(value, count)`` pairs.

    Matches ``np.median`` on the expanded multiset: the average of the
    elements at 0-based positions ``(n - 1) // 2`` and ``n // 2``.
    """
    lo_index = (n - 1) // 2
    hi_index = n // 2
    lo = hi = sorted_pairs[0][0]
    cumulative = 0
    for value, count in sorted_pairs:
        if cumulative <= lo_index < cumulative + count:
            lo = value
        if cumulative <= hi_index < cumulative + count:
            hi = value
            break
        cumulative += count
    return (lo + hi) / 2.0


class StatAccumulator:
    """Mergeable sufficient statistics for the Stat feature group.

    Examples:
        >>> whole = StatAccumulator().partial_fit(["1", "2", ""])
        >>> left = StatAccumulator().partial_fit(["1"])
        >>> right = StatAccumulator().partial_fit(["2", ""])
        >>> bool((right.merge(left).finalize() == whole.finalize()).all())
        True
    """

    __slots__ = ("n_values", "n_missing", "counter")

    def __init__(self) -> None:
        self.n_values = 0
        self.n_missing = 0
        self.counter: Counter[str] = Counter()

    def partial_fit(self, values: Iterable[str]) -> "StatAccumulator":
        """Fold a batch of values into the accumulator."""
        for value in values:
            self.n_values += 1
            if value and value.strip():
                self.counter[value] += 1
            else:
                self.n_missing += 1
        return self

    def merge(self, other: "StatAccumulator") -> "StatAccumulator":
        """Fold another accumulator's state into this one."""
        self.n_values += other.n_values
        self.n_missing += other.n_missing
        self.counter.update(other.counter)
        return self

    def to_state(self) -> dict:
        """JSON-serialisable exact state (round-trips via :meth:`from_state`)."""
        return {
            "n_values": self.n_values,
            "n_missing": self.n_missing,
            "counter": dict(self.counter),
        }

    @classmethod
    def from_state(cls, state: dict) -> "StatAccumulator":
        """Rebuild an accumulator from :meth:`to_state` output."""
        accumulator = cls()
        accumulator.n_values = int(state["n_values"])
        accumulator.n_missing = int(state["n_missing"])
        accumulator.counter = Counter(
            {str(k): int(v) for k, v in state["counter"].items()}
        )
        return accumulator

    def finalize(self) -> np.ndarray:
        """Reduce the accumulated state to the 27-dimensional Stat vector."""
        if self.n_values == 0:
            return np.zeros(len(STAT_FEATURE_NAMES), dtype=np.float64)

        n_values = self.n_values
        n_missing = self.n_missing
        counter = self.counter
        n_kept = n_values - n_missing
        frac_missing = n_missing / n_values
        n_unique = len(counter)
        total = max(1, n_kept)
        frac_unique = n_unique / total
        if counter:
            entropy = -math.fsum(
                (c / total) * math.log(c / total + 1e-12) for c in counter.values()
            )
            mode_frequency = max(counter.values()) / total
        else:
            entropy = 0.0
            mode_frequency = 0.0
        normalized_entropy = (
            entropy / math.log(n_unique + 1e-12) if n_unique > 1 else 0.0
        )

        numbers: list[tuple[float, int]] = []
        n_numeric = 0
        for value, count in counter.items():
            number = _try_parse_number(value)
            if number is not None:
                numbers.append((number, count))
                n_numeric += count
        frac_numeric = n_numeric / total
        if numbers:
            numbers.sort(key=lambda pair: pair[0])
            numeric_sum = math.fsum(number * count for number, count in numbers)
            numeric_mean = numeric_sum / n_numeric
            numeric_var = (
                math.fsum(
                    count * (number - numeric_mean) ** 2 for number, count in numbers
                )
                / n_numeric
            )
            numeric_std = math.sqrt(max(0.0, numeric_var))
            numeric_min = numbers[0][0]
            numeric_max = numbers[-1][0]
            numeric_median = _weighted_median(numbers, n_numeric)
            numeric_sum_log = math.log1p(abs(numeric_sum))
            frac_negative = (
                sum(count for number, count in numbers if number < 0) / n_numeric
            )
            frac_integer = (
                sum(count for number, count in numbers if number.is_integer())
                / n_numeric
            )
        else:
            numeric_mean = numeric_std = numeric_min = numeric_max = 0.0
            numeric_median = numeric_sum_log = frac_negative = frac_integer = 0.0

        lengths: Counter[int] = Counter()
        word_counts: Counter[int] = Counter()
        n_contains_digit = n_contains_alpha = n_all_upper = 0
        for value, count in counter.items():
            lengths[len(value)] += count
            word_counts[len(value.split())] += count
            if any(ch.isdigit() for ch in value):
                n_contains_digit += count
            if any(ch.isalpha() for ch in value):
                n_contains_alpha += count
            if value.isupper():
                n_all_upper += count
        if n_kept:
            length_sum = sum(length * count for length, count in lengths.items())
            mean_length = length_sum / n_kept
            length_var = (
                math.fsum(
                    count * (length - mean_length) ** 2
                    for length, count in lengths.items()
                )
                / n_kept
            )
            std_length = math.sqrt(max(0.0, length_var))
            min_length = float(min(lengths))
            max_length = float(max(lengths))
            median_length = _weighted_median(
                sorted((float(k), c) for k, c in lengths.items()), n_kept
            )
            mean_word_count = (
                sum(words * count for words, count in word_counts.items()) / n_kept
            )
            max_word_count = float(max(word_counts))
            frac_contains_digit = n_contains_digit / n_kept
            frac_contains_alpha = n_contains_alpha / n_kept
            frac_all_upper = n_all_upper / n_kept
        else:
            mean_length = std_length = min_length = max_length = median_length = 0.0
            mean_word_count = max_word_count = 0.0
            frac_contains_digit = frac_contains_alpha = frac_all_upper = 0.0

        features = np.array(
            [
                float(n_values),
                float(n_missing),
                frac_missing,
                float(n_unique),
                frac_unique,
                entropy,
                normalized_entropy,
                frac_numeric,
                numeric_mean,
                numeric_std,
                numeric_min,
                numeric_max,
                numeric_median,
                numeric_sum_log,
                frac_negative,
                frac_integer,
                mean_length,
                std_length,
                min_length,
                max_length,
                median_length,
                mean_word_count,
                max_word_count,
                frac_contains_digit,
                frac_contains_alpha,
                frac_all_upper,
                mode_frequency,
            ],
            dtype=np.float64,
        )
        # Large magnitudes (sums, maxima) are squashed to keep the network
        # stable.
        return np.sign(features) * np.log1p(np.abs(features))


def column_statistics(values: Sequence[str]) -> np.ndarray:
    """Compute the 27-dimensional Stat vector for a column's values.

    The full-scan path is the accumulator fed once, so streamed chunked
    featurization is bit-identical to this function by construction.
    """
    return StatAccumulator().partial_fit(values).finalize()
