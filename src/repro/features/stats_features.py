"""Global column statistics (the Stat group).

Sherlock's Stat group has 27 hand-crafted global statistics per column
(entropy, uniqueness, numeric summary statistics, value-length statistics,
missing-value counts, ...).  This module reproduces a 27-dimensional Stat
vector with the same flavour of statistics.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Sequence

import numpy as np

__all__ = ["STAT_FEATURE_NAMES", "column_statistics"]

STAT_FEATURE_NAMES: list[str] = [
    "n_values",
    "n_missing",
    "frac_missing",
    "n_unique",
    "frac_unique",
    "entropy",
    "normalized_entropy",
    "frac_numeric",
    "numeric_mean",
    "numeric_std",
    "numeric_min",
    "numeric_max",
    "numeric_median",
    "numeric_sum_log",
    "frac_negative",
    "frac_integer",
    "mean_length",
    "std_length",
    "min_length",
    "max_length",
    "median_length",
    "mean_word_count",
    "max_word_count",
    "frac_contains_digit",
    "frac_contains_alpha",
    "frac_all_upper",
    "mode_frequency",
]

assert len(STAT_FEATURE_NAMES) == 27


def _try_parse_number(value: str) -> float | None:
    text = value.strip().replace(",", "").replace("$", "").replace("%", "")
    if not text:
        return None
    try:
        number = float(text)
    except ValueError:
        return None
    # Reject "inf"/"nan" spellings: they parse but are not table numbers and
    # would poison the downstream statistics.
    return number if math.isfinite(number) else None


def column_statistics(values: Sequence[str]) -> np.ndarray:
    """Compute the 27-dimensional Stat vector for a column's values."""
    values = list(values)
    n_values = len(values)
    if n_values == 0:
        return np.zeros(len(STAT_FEATURE_NAMES), dtype=np.float64)

    non_empty = [v for v in values if v and v.strip()]
    n_missing = n_values - len(non_empty)
    frac_missing = n_missing / n_values

    counter = Counter(non_empty)
    n_unique = len(counter)
    frac_unique = n_unique / max(1, len(non_empty))
    total = max(1, len(non_empty))
    entropy = -sum((c / total) * math.log(c / total + 1e-12) for c in counter.values())
    normalized_entropy = entropy / math.log(n_unique + 1e-12) if n_unique > 1 else 0.0
    mode_frequency = (counter.most_common(1)[0][1] / total) if counter else 0.0

    numbers = [n for n in (_try_parse_number(v) for v in non_empty) if n is not None]
    frac_numeric = len(numbers) / max(1, len(non_empty))
    if numbers:
        numeric = np.array(numbers, dtype=np.float64)
        numeric_mean = float(numeric.mean())
        numeric_std = float(numeric.std())
        numeric_min = float(numeric.min())
        numeric_max = float(numeric.max())
        numeric_median = float(np.median(numeric))
        numeric_sum_log = math.log1p(abs(float(numeric.sum())))
        frac_negative = float((numeric < 0).mean())
        frac_integer = float(np.mean([float(n).is_integer() for n in numbers]))
    else:
        numeric_mean = numeric_std = numeric_min = numeric_max = 0.0
        numeric_median = numeric_sum_log = frac_negative = frac_integer = 0.0

    lengths = np.array([len(v) for v in non_empty], dtype=np.float64)
    if lengths.size == 0:
        lengths = np.zeros(1)
    word_counts = np.array(
        [len(v.split()) for v in non_empty], dtype=np.float64
    ) if non_empty else np.zeros(1)

    frac_contains_digit = float(
        np.mean([any(ch.isdigit() for ch in v) for v in non_empty])
    ) if non_empty else 0.0
    frac_contains_alpha = float(
        np.mean([any(ch.isalpha() for ch in v) for v in non_empty])
    ) if non_empty else 0.0
    frac_all_upper = float(
        np.mean([v.isupper() for v in non_empty])
    ) if non_empty else 0.0

    features = np.array(
        [
            float(n_values),
            float(n_missing),
            frac_missing,
            float(n_unique),
            frac_unique,
            entropy,
            normalized_entropy,
            frac_numeric,
            numeric_mean,
            numeric_std,
            numeric_min,
            numeric_max,
            numeric_median,
            numeric_sum_log,
            frac_negative,
            frac_integer,
            float(lengths.mean()),
            float(lengths.std()),
            float(lengths.min()),
            float(lengths.max()),
            float(np.median(lengths)),
            float(word_counts.mean()),
            float(word_counts.max()),
            frac_contains_digit,
            frac_contains_alpha,
            frac_all_upper,
            mode_frequency,
        ],
        dtype=np.float64,
    )
    # Large magnitudes (sums, maxima) are squashed to keep the network stable.
    return np.sign(features) * np.log1p(np.abs(features))
