"""Vectorized, shardable featurization backend (the serving hot path).

The loop backend featurizes one column and one value at a time in pure
Python; Table 2 of the paper shows featurization dominating serving cost.
This module replaces those per-value loops with NumPy array operations over
*all* columns of a batch at once:

* one codepoint pass — every value of every column is joined, decoded to a
  flat ``uint32`` codepoint array, and classified through a lazily grown
  per-codepoint property table (exact ``str`` method semantics, cached),
* batched character features — per-(value, char) counts via ``bincount`` on
  composite keys instead of nested Python loops,
* batched statistics — segment reductions (``bincount`` with weights, one
  ``lexsort`` for min/max/median) over the same flattened arrays,
* a single tokenization pass per column feeding one pooled embedding-matrix
  gather that serves both the Word and Para feature groups.

The loop backend (``char_features`` / ``column_statistics`` /
``ColumnFeaturizer._raw_features``) stays as the oracle: every batched
function here is tested ``allclose`` against it.  On top of the in-process
engine, :class:`VectorizedEngine` offers an optional ``workers=N``
process-pool sharding mode that partitions the columns of a batch across
workers and reassembles the feature matrix in stable input order — per
column the computation is independent and deterministic, so worker count
never changes a single bit of the output.

Examples:
    >>> import numpy as np
    >>> from repro.features import char_features
    >>> from repro.features.engine import char_features_batch
    >>> batch = char_features_batch([["Paris", "Rome"], ["12", "94"]])
    >>> np.allclose(batch[0], char_features(["Paris", "Rome"]))
    True
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.embeddings.tokenizer import TOKEN_RE, number_shape_token
from repro.features.char_features import (
    CHAR_FEATURE_NAMES,
    CHAR_VOCABULARY,
    _CHAR_INDEX,
)
from repro.features.stats_features import STAT_FEATURE_NAMES, _try_parse_number
from repro.obs import span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.features.featurizer import ColumnFeaturizer
    from repro.tables import Column

__all__ = [
    "VectorizedEngine",
    "char_features_batch",
    "stats_features_batch",
]


# --------------------------------------------------------------------------
# Codepoint property table
# --------------------------------------------------------------------------

_N_ASCII = 128
_UNICODE_SIZE = 0x110000

_CLASS_ALPHA, _CLASS_DIGIT, _CLASS_SPACE, _CLASS_PUNCT = 0, 1, 2, 3
_CLASS_UNSET = 255

_FLAG_UPPER = 1  # char.isupper()
_FLAG_DIGIT = 2  # char.isdigit()
_FLAG_ALPHA = 4  # char.isalpha()
_FLAG_SPACE = 8  # char.isspace() (== str.strip() / str.split() whitespace)
_FLAG_CASED = 16  # char.islower() or char.isupper() or char.istitle()


class _CharPropertyTable:
    """Per-codepoint character properties with exact ``str`` semantics.

    ASCII is filled eagerly; other codepoints are computed lazily (via the
    Python ``str`` methods themselves, so parity with the loop backend is
    exact) the first time they appear in a batch, then cached for the life
    of the process.
    """

    def __init__(self) -> None:
        self.vocab_index = np.full(_N_ASCII, -1, dtype=np.int32)
        self.class_id = np.full(_N_ASCII, _CLASS_UNSET, dtype=np.uint8)
        self.flags = np.zeros(_N_ASCII, dtype=np.uint8)
        self._fill(range(_N_ASCII))

    def _fill(self, codepoints) -> None:
        for code in codepoints:
            char = chr(int(code))
            lowered = char.lower()
            if lowered.isalpha():
                class_id = _CLASS_ALPHA
            elif lowered.isdigit():
                class_id = _CLASS_DIGIT
            elif lowered.isspace():
                class_id = _CLASS_SPACE
            else:
                class_id = _CLASS_PUNCT
            flags = 0
            if char.isupper():
                flags |= _FLAG_UPPER
            if char.isdigit():
                flags |= _FLAG_DIGIT
            if char.isalpha():
                flags |= _FLAG_ALPHA
            if char.isspace():
                flags |= _FLAG_SPACE
            if char.islower() or char.isupper() or char.istitle():
                flags |= _FLAG_CASED
            self.vocab_index[code] = _CHAR_INDEX.get(lowered, -1)
            self.class_id[code] = class_id
            self.flags[code] = flags

    def _grow(self) -> None:
        if len(self.class_id) >= _UNICODE_SIZE:
            return
        vocab_index = np.full(_UNICODE_SIZE, -1, dtype=np.int32)
        class_id = np.full(_UNICODE_SIZE, _CLASS_UNSET, dtype=np.uint8)
        flags = np.zeros(_UNICODE_SIZE, dtype=np.uint8)
        vocab_index[: len(self.vocab_index)] = self.vocab_index
        class_id[: len(self.class_id)] = self.class_id
        flags[: len(self.flags)] = self.flags
        self.vocab_index, self.class_id, self.flags = vocab_index, class_id, flags

    def lookup(self, codes: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vocab index, char class and property flags for a codepoint array."""
        codes = codes.astype(np.int64, copy=False)
        if codes.size and int(codes.max()) >= len(self.class_id):
            self._grow()
        unset = codes[self.class_id[codes] == _CLASS_UNSET]
        if unset.size:
            self._fill(np.unique(unset))
        return self.vocab_index[codes], self.class_id[codes], self.flags[codes]


_PROPS = _CharPropertyTable()


# --------------------------------------------------------------------------
# Flattened value batch
# --------------------------------------------------------------------------


@dataclass
class _ValueBatch:
    """All values of all columns of a batch, flattened into parallel arrays."""

    n_cols: int
    values: list[str]  # every value, column by column, in input order
    value_len: np.ndarray  # (n_values,) characters per value
    col_of_value: np.ndarray  # (n_values,) owning column of each value
    value_offsets: np.ndarray  # (n_cols + 1,) value index range per column
    codes: np.ndarray  # (n_chars,) codepoint of every character
    value_ids: np.ndarray  # (n_chars,) owning value of each character
    vocab_index: np.ndarray  # (n_chars,) index into CHAR_VOCABULARY or -1
    class_id: np.ndarray  # (n_chars,) alpha / digit / space / punct
    flags: np.ndarray  # (n_chars,) _FLAG_* bitfield


def _build_batch(value_lists: Sequence[Sequence[str]]) -> _ValueBatch:
    n_cols = len(value_lists)
    values: list[str] = []
    counts = np.zeros(n_cols, dtype=np.int64)
    for j, column_values in enumerate(value_lists):
        for value in column_values:
            values.append(value)
        counts[j] = len(column_values)
    n_values = len(values)
    value_len = np.fromiter((len(v) for v in values), dtype=np.int64, count=n_values)
    value_offsets = np.concatenate([[0], np.cumsum(counts)])
    col_of_value = np.repeat(np.arange(n_cols), counts)
    joined = "".join(values)
    if joined:
        # surrogatepass: lone surrogates (reachable via JSON corpora) must
        # featurize like any other codepoint, exactly as the loop oracle's
        # per-char str methods do — not crash the batch.
        codes = np.frombuffer(
            joined.encode("utf-32-le", errors="surrogatepass"), dtype=np.uint32
        )
    else:
        codes = np.empty(0, dtype=np.uint32)
    value_ids = np.repeat(np.arange(n_values), value_len)
    vocab_index, class_id, flags = _PROPS.lookup(codes)
    return _ValueBatch(
        n_cols=n_cols,
        values=values,
        value_len=value_len,
        col_of_value=col_of_value,
        value_offsets=value_offsets,
        codes=codes,
        value_ids=value_ids,
        vocab_index=vocab_index,
        class_id=class_id,
        flags=flags,
    )


def _safe_divide(numerator: np.ndarray, denominator: np.ndarray) -> np.ndarray:
    """Elementwise division that returns 0 where the denominator is 0."""
    result = np.zeros(np.broadcast(numerator, denominator).shape, dtype=np.float64)
    np.divide(numerator, denominator, out=result, where=denominator > 0)
    return result


def _segment_mean_std(
    values: np.ndarray, cols: np.ndarray, n_cols: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-column count, mean and population std of segmented values."""
    counts = np.bincount(cols, minlength=n_cols).astype(np.float64)
    sums = np.bincount(cols, weights=values, minlength=n_cols)
    mean = _safe_divide(sums, counts)
    deviation = values - mean[cols]
    variance = _safe_divide(
        np.bincount(cols, weights=deviation * deviation, minlength=n_cols), counts
    )
    return counts, mean, np.sqrt(variance)


def _segment_order_stats(
    values: np.ndarray, cols: np.ndarray, n_cols: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-column min, max and median of segmented values (0 when empty)."""
    minimum = np.zeros(n_cols, dtype=np.float64)
    maximum = np.zeros(n_cols, dtype=np.float64)
    median = np.zeros(n_cols, dtype=np.float64)
    if values.size == 0:
        return minimum, maximum, median
    counts = np.bincount(cols, minlength=n_cols)
    order = np.lexsort((values, cols))
    ordered = values[order].astype(np.float64, copy=False)
    offsets = np.concatenate([[0], np.cumsum(counts)])[:-1]
    has = counts > 0
    minimum[has] = ordered[offsets[has]]
    maximum[has] = ordered[offsets[has] + counts[has] - 1]
    low = offsets[has] + (counts[has] - 1) // 2
    high = offsets[has] + counts[has] // 2
    median[has] = 0.5 * (ordered[low] + ordered[high])
    return minimum, maximum, median


# --------------------------------------------------------------------------
# Char feature group, batched
# --------------------------------------------------------------------------


def char_features_batch(value_lists: Sequence[Sequence[str]]) -> np.ndarray:
    """Char feature vectors for many columns at once.

    Array-op replacement for calling
    :func:`~repro.features.char_features.char_features` per column: one
    codepoint pass over every value of every column, per-(value, char)
    occurrence counts via ``bincount`` on composite keys, and per-column
    segment reductions.  Matches the loop oracle to floating-point
    round-off.

    Examples:
        >>> import numpy as np
        >>> from repro.features import CHAR_FEATURE_NAMES, char_features
        >>> from repro.features.engine import char_features_batch
        >>> columns = [["alpha", "beta"], ["", "  "], []]
        >>> batch = char_features_batch(columns)
        >>> batch.shape == (3, len(CHAR_FEATURE_NAMES))
        True
        >>> all(np.allclose(row, char_features(vals))
        ...     for row, vals in zip(batch, columns))
        True
    """
    batch = _build_batch(value_lists)
    return _char_block(batch)


def _char_block(batch: _ValueBatch) -> np.ndarray:
    n_cols = batch.n_cols
    n_chars = len(CHAR_VOCABULARY)
    out = np.zeros((n_cols, len(CHAR_FEATURE_NAMES)), dtype=np.float64)
    if n_cols == 0:
        return out

    # The loop oracle keeps every non-empty value (including whitespace-only).
    nonempty = batch.value_len > 0
    n_sel = np.bincount(batch.col_of_value[nonempty], minlength=n_cols).astype(
        np.float64
    )

    col_of_char = batch.col_of_value[batch.value_ids]
    valid = batch.vocab_index >= 0

    # Mean per-value occurrence count of each tracked character.
    char_counts = np.bincount(
        col_of_char[valid] * n_chars + batch.vocab_index[valid],
        minlength=n_cols * n_chars,
    ).reshape(n_cols, n_chars)
    mean_counts = _safe_divide(char_counts, n_sel[:, None])

    # Presence rate: fraction of values containing each character at least
    # once, from the distinct (value, char) pairs of the batch.
    pair_all = batch.value_ids[valid] * np.int64(n_chars) + batch.vocab_index[valid]
    n_pairs = len(batch.values) * n_chars
    if n_pairs <= 4_000_000:
        # Dense path (caps the transient bincount at ~32 MB): count per
        # (value, char), then find the non-zero cells.
        pair_counts = np.bincount(pair_all, minlength=n_pairs)
        pair_value, pair_char = np.nonzero(
            pair_counts.reshape(len(batch.values), n_chars)
        )
    else:
        # Sparse path for huge batches: memory proportional to the number
        # of distinct pairs actually present, at a modest sort cost.
        pair_keys = np.unique(pair_all)
        pair_value, pair_char = pair_keys // n_chars, pair_keys % n_chars
    presence_counts = np.bincount(
        batch.col_of_value[pair_value] * n_chars + pair_char,
        minlength=n_cols * n_chars,
    ).reshape(n_cols, n_chars)
    presence = _safe_divide(presence_counts, n_sel[:, None])

    # Shape statistics over all characters of the column.
    class_counts = np.bincount(
        col_of_char * 4 + batch.class_id, minlength=n_cols * 4
    ).reshape(n_cols, 4)
    n_upper = np.bincount(
        col_of_char[(batch.flags & _FLAG_UPPER) > 0], minlength=n_cols
    )
    total_chars = np.maximum(1, np.bincount(col_of_char, minlength=n_cols)).astype(
        np.float64
    )
    lengths = batch.value_len[nonempty].astype(np.float64)
    length_cols = batch.col_of_value[nonempty]
    _, mean_length, std_length = _segment_mean_std(lengths, length_cols, n_cols)

    has_values = n_sel > 0
    out[:, : n_chars] = mean_counts
    out[:, n_chars : 2 * n_chars] = presence
    shape = np.column_stack(
        [
            class_counts[:, _CLASS_ALPHA] / total_chars,
            class_counts[:, _CLASS_DIGIT] / total_chars,
            class_counts[:, _CLASS_SPACE] / total_chars,
            class_counts[:, _CLASS_PUNCT] / total_chars,
            n_upper / total_chars,
            mean_length,
            std_length,
        ]
    )
    out[:, 2 * n_chars :] = np.where(has_values[:, None], shape, 0.0)
    return out


# --------------------------------------------------------------------------
# Stat feature group, batched
# --------------------------------------------------------------------------

#: Bounded memo for string -> float parses (years, ids and ratings repeat
#: heavily across columns, so parsing each distinct spelling once pays off).
_PARSE_MEMO: dict[str, float | None] = {}
_PARSE_MEMO_LIMIT = 1 << 17


def _parse_number_memo(value: str) -> float | None:
    try:
        return _PARSE_MEMO[value]
    except KeyError:
        if len(_PARSE_MEMO) >= _PARSE_MEMO_LIMIT:
            _PARSE_MEMO.clear()
        parsed = _try_parse_number(value)
        _PARSE_MEMO[value] = parsed
        return parsed


def stats_features_batch(value_lists: Sequence[Sequence[str]]) -> np.ndarray:
    """Stat feature vectors for many columns at once.

    Array-op replacement for calling
    :func:`~repro.features.stats_features.column_statistics` per column:
    lengths, word counts and per-value character flags come from the shared
    codepoint pass; min / max / median are one ``lexsort`` + fancy indexing;
    numeric parsing is memoized across repeated spellings.  Matches the loop
    oracle to floating-point round-off.

    Examples:
        >>> import numpy as np
        >>> from repro.features import STAT_FEATURE_NAMES, column_statistics
        >>> from repro.features.engine import stats_features_batch
        >>> columns = [["1", "2", ""], ["New York", "Boston"]]
        >>> batch = stats_features_batch(columns)
        >>> batch.shape == (2, len(STAT_FEATURE_NAMES))
        True
        >>> all(np.allclose(row, column_statistics(vals))
        ...     for row, vals in zip(batch, columns))
        True
    """
    batch = _build_batch(value_lists)
    return _stats_block(batch)


def _stats_block(batch: _ValueBatch) -> np.ndarray:
    n_cols = batch.n_cols
    out = np.zeros((n_cols, len(STAT_FEATURE_NAMES)), dtype=np.float64)
    if n_cols == 0:
        return out
    n_values_total = len(batch.values)

    # ---- per-value facts from the shared codepoint pass
    n_space = np.bincount(
        batch.value_ids[(batch.flags & _FLAG_SPACE) > 0], minlength=n_values_total
    )
    blank = (batch.value_len > 0) & (n_space == batch.value_len)
    missing = (batch.value_len == 0) | blank
    keep = ~missing  # the loop oracle's ``v and v.strip()`` selection

    # Word count: runs of non-whitespace characters (== len(v.split())).
    is_space_char = (batch.flags & _FLAG_SPACE) > 0
    first_char = np.zeros(len(batch.codes), dtype=bool)
    starts = np.cumsum(np.concatenate([[0], batch.value_len[:-1]]))
    first_char[starts[batch.value_len > 0]] = True
    prev_space = np.concatenate([[True], is_space_char[:-1]])
    run_start = ~is_space_char & (first_char | prev_space)
    word_counts = np.bincount(batch.value_ids[run_start], minlength=n_values_total)

    contains_digit = (
        np.bincount(
            batch.value_ids[(batch.flags & _FLAG_DIGIT) > 0], minlength=n_values_total
        )
        > 0
    )
    contains_alpha = (
        np.bincount(
            batch.value_ids[(batch.flags & _FLAG_ALPHA) > 0], minlength=n_values_total
        )
        > 0
    )
    n_cased = np.bincount(
        batch.value_ids[(batch.flags & _FLAG_CASED) > 0], minlength=n_values_total
    )
    n_cased_lower = np.bincount(
        batch.value_ids[
            ((batch.flags & _FLAG_CASED) > 0) & ((batch.flags & _FLAG_UPPER) == 0)
        ],
        minlength=n_values_total,
    )
    all_upper = (n_cased > 0) & (n_cased_lower == 0)  # == str.isupper()

    # ---- per-column counts and fractions
    n_values = np.bincount(batch.col_of_value, minlength=n_cols).astype(np.float64)
    n_missing = np.bincount(
        batch.col_of_value[missing], minlength=n_cols
    ).astype(np.float64)
    kept_cols = batch.col_of_value[keep]
    n_kept = np.bincount(kept_cols, minlength=n_cols).astype(np.float64)
    kept_denominator = np.maximum(1.0, n_kept)
    frac_missing = _safe_divide(n_missing, n_values)

    # ---- value-length and word-count statistics over kept values
    lengths = batch.value_len[keep].astype(np.float64)
    _, mean_length, std_length = _segment_mean_std(lengths, kept_cols, n_cols)
    min_length, max_length, median_length = _segment_order_stats(
        lengths, kept_cols, n_cols
    )
    words = word_counts[keep].astype(np.float64)
    _, mean_words, _ = _segment_mean_std(words, kept_cols, n_cols)
    max_words = np.zeros(n_cols, dtype=np.float64)
    if words.size:
        np.maximum.at(max_words, kept_cols, words)

    frac_contains_digit = _safe_divide(
        np.bincount(kept_cols[contains_digit[keep]], minlength=n_cols), n_kept
    )
    frac_contains_alpha = _safe_divide(
        np.bincount(kept_cols[contains_alpha[keep]], minlength=n_cols), n_kept
    )
    frac_all_upper = _safe_divide(
        np.bincount(kept_cols[all_upper[keep]], minlength=n_cols), n_kept
    )

    # ---- one Python pass over kept values: numeric parse + value interning.
    # Interning restarts per column (ids ordered by first occurrence within
    # the column), so downstream reductions are independent of which other
    # columns share the batch — the property that makes sharding bit-stable.
    parsed = np.full(n_values_total, np.nan, dtype=np.float64)
    keep_indices = np.nonzero(keep)[0]
    values = batch.values
    col_of_value = batch.col_of_value
    intern_ids = np.empty(len(keep_indices), dtype=np.int64)
    intern_map: dict[str, int] = {}
    max_interned = 1
    current_col = -1
    for position, index in enumerate(keep_indices):
        value = values[index]
        number = _parse_number_memo(value)
        if number is not None:
            parsed[index] = number
        if col_of_value[index] != current_col:
            current_col = col_of_value[index]
            if len(intern_map) > max_interned:
                max_interned = len(intern_map)
            intern_map = {}
        value_id = intern_map.get(value)
        if value_id is None:
            value_id = len(intern_map)
            intern_map[value] = value_id
        intern_ids[position] = value_id
    if len(intern_map) > max_interned:
        max_interned = len(intern_map)
    numeric_mask = keep & ~np.isnan(parsed)
    numbers = parsed[numeric_mask]
    number_cols = batch.col_of_value[numeric_mask]
    n_numbers, numeric_mean, numeric_std = _segment_mean_std(
        numbers, number_cols, n_cols
    )
    numeric_min, numeric_max, numeric_median = _segment_order_stats(
        numbers, number_cols, n_cols
    )
    numeric_sum = np.bincount(number_cols, weights=numbers, minlength=n_cols)
    numeric_sum_log = np.where(n_numbers > 0, np.log1p(np.abs(numeric_sum)), 0.0)
    frac_negative = _safe_divide(
        np.bincount(number_cols[numbers < 0], minlength=n_cols), n_numbers
    )
    frac_integer = _safe_divide(
        np.bincount(number_cols[numbers == np.floor(numbers)], minlength=n_cols),
        n_numbers,
    )
    frac_numeric = _safe_divide(n_numbers, kept_denominator)

    # ---- uniqueness, entropy and mode (value-identity statistics).
    # Interned value ids turn string multisets into integer pairs: one
    # unique() over (column, value id) yields, per distinct column value,
    # its occurrence count — everything else is segment reductions.
    n_unique = np.zeros(n_cols, dtype=np.float64)
    entropy = np.zeros(n_cols, dtype=np.float64)
    normalized_entropy = np.zeros(n_cols, dtype=np.float64)
    mode_frequency = np.zeros(n_cols, dtype=np.float64)
    if intern_ids.size:
        n_interned = max_interned
        pair_keys, pair_counts = np.unique(
            kept_cols * np.int64(n_interned) + intern_ids, return_counts=True
        )
        pair_col = pair_keys // n_interned
        totals = kept_denominator[pair_col]
        shares = pair_counts / totals
        entropy = -np.bincount(
            pair_col, weights=shares * np.log(shares + 1e-12), minlength=n_cols
        )
        unique_counts = np.bincount(pair_col, minlength=n_cols)
        n_unique = unique_counts.astype(np.float64)
        multi = unique_counts > 1
        normalized_entropy[multi] = entropy[multi] / np.log(
            unique_counts[multi] + 1e-12
        )
        mode_counts = np.zeros(n_cols, dtype=np.int64)
        np.maximum.at(mode_counts, pair_col, pair_counts)
        mode_frequency = mode_counts / kept_denominator
        entropy[unique_counts == 0] = 0.0

    frac_unique = _safe_divide(n_unique, kept_denominator)

    out[:, 0] = n_values
    out[:, 1] = n_missing
    out[:, 2] = frac_missing
    out[:, 3] = n_unique
    out[:, 4] = frac_unique
    out[:, 5] = entropy
    out[:, 6] = normalized_entropy
    out[:, 7] = frac_numeric
    out[:, 8] = numeric_mean
    out[:, 9] = numeric_std
    out[:, 10] = numeric_min
    out[:, 11] = numeric_max
    out[:, 12] = numeric_median
    out[:, 13] = numeric_sum_log
    out[:, 14] = frac_negative
    out[:, 15] = frac_integer
    out[:, 16] = mean_length
    out[:, 17] = std_length
    out[:, 18] = min_length
    out[:, 19] = max_length
    out[:, 20] = median_length
    out[:, 21] = mean_words
    out[:, 22] = max_words
    out[:, 23] = frac_contains_digit
    out[:, 24] = frac_contains_alpha
    out[:, 25] = frac_all_upper
    out[:, 26] = mode_frequency
    # The loop oracle returns straight zeros for empty columns; the squash
    # below maps 0 -> 0, so the same rows stay zero here.
    return np.sign(out) * np.log1p(np.abs(out))


# --------------------------------------------------------------------------
# The engine: full feature matrix + optional process-pool sharding
# --------------------------------------------------------------------------


class VectorizedEngine:
    """Batched featurization bound to one fitted featurizer.

    Computes the raw (unstandardized) feature matrix for a batch of columns
    with one flattened codepoint pass (Char + Stat groups), one tokenization
    pass and one pooled embedding gather (Word + Para groups).  The engine
    memoizes token lookups and codepoint properties across calls, so
    steady-state serving traffic skips all per-token dictionary churn.

    When the owning featurizer's ``workers`` is greater than 1, batches are
    partitioned into contiguous column shards, featurized in a persistent
    process pool and reassembled in stable input order.  Per-column results
    are bit-identical for every worker count.

    Examples:
        >>> import numpy as np
        >>> from repro.corpus import CorpusConfig, CorpusGenerator
        >>> from repro.features import ColumnFeaturizer
        >>> tables = CorpusGenerator(CorpusConfig(n_tables=4, seed=0)).generate()
        >>> columns = [c for t in tables for c in t.columns]
        >>> featurizer = ColumnFeaturizer(word_dim=8, para_dim=4, backend="loop")
        >>> loop = featurizer.fit(tables).transform_columns(columns)
        >>> _ = featurizer.set_backend("vectorized")
        >>> vectorized = featurizer.transform_columns(columns)
        >>> np.allclose(loop, vectorized, rtol=1e-6, atol=1e-9)
        True
    """

    #: Cap on the token -> (id, idf) memo; cleared on overflow so serving
    #: high-cardinality text columns forever cannot grow memory unboundedly.
    TOKEN_MEMO_LIMIT = 1 << 17

    def __init__(self, featurizer: "ColumnFeaturizer") -> None:
        self.featurizer = featurizer
        self._token_memo: dict[str, tuple[int, float]] = {}
        self._pool: ProcessPoolExecutor | None = None
        self._pool_workers = 0

    # ---------------------------------------------------------------- public

    def transform(self, columns: Sequence["Column"]) -> np.ndarray:
        """Raw feature matrix for a batch of columns, sharding if configured."""
        workers = int(getattr(self.featurizer, "workers", 0) or 0)
        if workers > 1 and len(columns) >= 2 * workers:
            return self._transform_sharded(columns, workers)
        return self._transform_inline(columns)

    def close(self) -> None:
        """Shut down the worker pool (if any); the engine stays usable."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_workers = 0

    # ---------------------------------------------------------------- single

    def _transform_inline(
        self, columns: Sequence["Column"], project_para: bool = True
    ) -> np.ndarray:
        value_lists = [column.values for column in columns]
        # Kernel-level spans: the codepoint pass, the scalar stats block and
        # the embedding gathers are the candidates for compiled backends, so
        # each is timed separately under the parent ``featurize`` span.
        with span("featurize.char", n_columns=len(columns)):
            batch = _build_batch(value_lists)
            char_block = _char_block(batch)
        with span("featurize.stats"):
            stat_block = _stats_block(batch)
        with span("featurize.embed"):
            word_block, para_block = self._embedding_block(
                value_lists, project=project_para
            )
        return np.concatenate([char_block, word_block, para_block, stat_block], axis=1)

    def _token_info(self, token: str) -> tuple[int, float]:
        info = self._token_memo.get(token)
        if info is None:
            token_id = self.featurizer.word_model.vocabulary.get(token)
            info = (
                -1 if token_id is None else token_id,
                self.featurizer.paragraph_embedder.idf_weight(token),
            )
            if len(self._token_memo) >= self.TOKEN_MEMO_LIMIT:
                self._token_memo.clear()
            self._token_memo[token] = info
        return info

    def _embedding_block(
        self, value_lists: Sequence[Sequence[str]], project: bool = True
    ) -> tuple[np.ndarray, np.ndarray]:
        featurizer = self.featurizer
        n_cols = len(value_lists)
        word_dim = featurizer.word_model.dim
        max_tokens = featurizer.max_tokens_per_column
        # Gather straight from the embedding matrix: it may be a read-only
        # shared-memory view (one physical copy across a serving fleet), so
        # the engine must not materialise a private extended copy of it.
        vectors = featurizer.word_model.vectors
        if vectors is None:
            raise RuntimeError("word embedding model is not fitted")

        ids: list[int] = []
        weights: list[float] = []
        token_counts = np.zeros(n_cols, dtype=np.int64)
        token_info = self._token_info
        findall = TOKEN_RE.findall
        for j, column_values in enumerate(value_lists):
            # One tokenization pass per column over the joined lowered text:
            # "\n" never matches a token, so value boundaries are preserved,
            # and lowercasing the joined text yields the same [a-z0-9] runs
            # as lowercasing each value (ASCII case folding is context-free).
            tokens = findall("\n".join(column_values).lower())
            if len(tokens) > max_tokens:
                tokens = tokens[:max_tokens]
            token_counts[j] = len(tokens)
            for piece in tokens:
                token_id, weight = token_info(
                    number_shape_token(piece) if piece.isdigit() else piece
                )
                ids.append(token_id)
                weights.append(weight)

        word = np.zeros((n_cols, word_dim), dtype=np.float64)
        para_raw = np.zeros((n_cols, word_dim), dtype=np.float64)
        n_tokens = len(ids)
        if n_tokens:
            id_array = np.array(ids, dtype=np.int64)
            weight_array = np.array(weights, dtype=np.float64)
            col_of_token = np.repeat(np.arange(n_cols), token_counts)
            # Out-of-vocabulary tokens (id -1) keep their zero rows, exactly
            # like the former explicit OOV row of an extended matrix.
            in_vocab = id_array >= 0
            gathered = np.zeros((n_tokens, word_dim), dtype=np.float64)
            if vectors.size:
                gathered[in_vocab] = vectors[id_array[in_vocab]]

            # Segment sums via reduceat over the token-bearing columns only:
            # dropping empty segments keeps every offset strictly increasing
            # and in range, so no column's segment is ever truncated.
            offsets = np.concatenate([[0], np.cumsum(token_counts)])[:-1]
            has_tokens = token_counts > 0
            token_offsets = offsets[has_tokens]

            # Word group: mean of in-vocabulary vectors (OOV rows are the
            # zero row, so summing all tokens equals summing valid ones).
            n_valid = np.bincount(
                col_of_token[in_vocab], minlength=n_cols
            ).astype(np.float64)
            word_sums = np.zeros((n_cols, gathered.shape[1]), dtype=np.float64)
            word_sums[has_tokens] = np.add.reduceat(gathered, token_offsets, axis=0)
            word = _safe_divide(word_sums, n_valid[:, None])

            # Para group: idf-weighted mean (every token contributes weight,
            # exactly like the sequential loop accumulator).
            weighted = gathered * weight_array[:, None]
            para_sums = np.zeros((n_cols, gathered.shape[1]), dtype=np.float64)
            para_sums[has_tokens] = np.add.reduceat(weighted, token_offsets, axis=0)
            total_weight = np.bincount(
                col_of_token, weights=weight_array, minlength=n_cols
            )
            para_raw = _safe_divide(para_sums, total_weight[:, None])

        projection = featurizer.paragraph_embedder.projection
        if projection is None or not project:
            return word, para_raw
        return word, (para_raw @ projection).astype(np.float64, copy=False)

    # --------------------------------------------------------------- sharded

    def _ensure_pool(self, workers: int) -> ProcessPoolExecutor:
        if self._pool is not None and self._pool_workers == workers:
            return self._pool
        self.close()
        config = dict(self.featurizer.config_dict())
        config["workers"] = 0  # shards must never recurse into sharding
        self._pool = ProcessPoolExecutor(
            max_workers=workers,
            initializer=_shard_init,
            initargs=(config, self.featurizer.state_dict()),
        )
        self._pool_workers = workers
        return self._pool

    def _transform_sharded(
        self, columns: Sequence["Column"], workers: int
    ) -> np.ndarray:
        pool = self._ensure_pool(workers)
        boundaries = np.linspace(0, len(columns), workers + 1, dtype=np.int64)
        shards = [
            list(columns[start:stop])
            for start, stop in zip(boundaries[:-1], boundaries[1:])
            if stop > start
        ]
        futures = [pool.submit(_shard_transform, shard) for shard in shards]
        # Concatenating in submission order keeps the stable input order.
        matrix = np.concatenate([future.result() for future in futures], axis=0)
        projection = self.featurizer.paragraph_embedder.projection
        if projection is None:
            return matrix
        # Shards return the Para group unprojected; applying one projection
        # matmul over the reassembled batch keeps the BLAS call shape — and
        # therefore every output bit — independent of the worker count.
        n_char = len(CHAR_FEATURE_NAMES)
        word_dim = self.featurizer.word_model.dim
        para_start = n_char + word_dim
        para = matrix[:, para_start : para_start + word_dim] @ projection
        return np.concatenate(
            [matrix[:, :para_start], para, matrix[:, para_start + word_dim :]],
            axis=1,
        )


_WORKER_FEATURIZER = None


def _shard_init(config: dict, state: dict) -> None:
    """Process-pool initializer: rebuild the fitted featurizer once per worker."""
    from repro.features.featurizer import ColumnFeaturizer

    global _WORKER_FEATURIZER
    featurizer = ColumnFeaturizer(**config)
    featurizer.load_state_dict(state)
    _WORKER_FEATURIZER = featurizer


def _shard_transform(columns: list) -> np.ndarray:
    """Featurize one contiguous shard of columns inside a worker process.

    The Para group is returned unprojected; the parent process projects the
    whole reassembled batch in one matmul (see ``_transform_sharded``).
    """
    assert _WORKER_FEATURIZER is not None, "worker pool was not initialized"
    return _WORKER_FEATURIZER.engine._transform_inline(columns, project_para=False)
