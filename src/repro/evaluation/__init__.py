"""Evaluation harness: metrics, cross-validation, analyses.

Everything needed to regenerate the paper's tables and figures: per-type
precision/recall/F1 with macro and support-weighted averages (Section 4.4),
k-fold evaluation of model variants (Table 1), per-type comparisons
(Figures 7-8), permutation feature importance (Figure 9), timing (Table 2),
column-embedding projection (Figure 10) and qualitative correction mining
(Table 4).
"""

from repro.evaluation.metrics import (
    ClassificationReport,
    TypeMetrics,
    classification_report,
    f1_scores,
    macro_f1,
    support_weighted_f1,
)
from repro.evaluation.cross_validation import CrossValidationResult, FoldResult, evaluate_model_cv
from repro.evaluation.per_type import per_type_f1, per_type_comparison
from repro.evaluation.importance import permutation_importance
from repro.evaluation.timing import TimingResult, time_model
from repro.evaluation.tsne import pca_project, tsne_project
from repro.evaluation.embeddings import collect_column_embeddings, cluster_separation
from repro.evaluation.qualitative import CorrectionExample, find_corrections
from repro.evaluation.suites import SuiteReport, evaluate_suite, evaluate_suites

__all__ = [
    "SuiteReport",
    "evaluate_suite",
    "evaluate_suites",
    "ClassificationReport",
    "TypeMetrics",
    "classification_report",
    "f1_scores",
    "macro_f1",
    "support_weighted_f1",
    "CrossValidationResult",
    "FoldResult",
    "evaluate_model_cv",
    "per_type_f1",
    "per_type_comparison",
    "permutation_importance",
    "TimingResult",
    "time_model",
    "pca_project",
    "tsne_project",
    "collect_column_embeddings",
    "cluster_separation",
    "CorrectionExample",
    "find_corrections",
]
