"""Training / prediction timing (Table 2)."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.models.base import ColumnModel
from repro.models.sato import SatoModel
from repro.tables import Table

__all__ = ["TimingResult", "time_model"]


@dataclass
class TimingResult:
    """Timing of one model over repeated trials (seconds)."""

    model_name: str
    train_times: list[float]
    crf_train_times: list[float]
    predict_times: list[float]

    def _summary(self, values: list[float]) -> tuple[float, float]:
        if not values:
            return 0.0, 0.0
        mean = float(np.mean(values))
        if len(values) < 2:
            return mean, 0.0
        half_width = 1.96 * float(np.std(values, ddof=1)) / np.sqrt(len(values))
        return mean, half_width

    @property
    def train_time(self) -> tuple[float, float]:
        """(mean, 95% CI half-width) of feature/network training time."""
        return self._summary(self.train_times)

    @property
    def crf_train_time(self) -> tuple[float, float]:
        """(mean, 95% CI half-width) of CRF training time."""
        return self._summary(self.crf_train_times)

    @property
    def predict_time(self) -> tuple[float, float]:
        """(mean, 95% CI half-width) of prediction time over the test set."""
        return self._summary(self.predict_times)


def time_model(
    model_factory: Callable[[], ColumnModel],
    train_tables: Sequence[Table],
    test_tables: Sequence[Table],
    n_trials: int = 3,
    model_name: str | None = None,
) -> TimingResult:
    """Measure training and prediction time of a model over several trials.

    For :class:`SatoModel` instances with the CRF enabled, the CRF training
    time is measured separately (as in Table 2 of the paper) by timing the
    column-model fit and the CRF fit independently.
    """
    train_times: list[float] = []
    crf_times: list[float] = []
    predict_times: list[float] = []
    name = model_name
    for _ in range(n_trials):
        model = model_factory()
        if name is None:
            name = model.name
        if isinstance(model, SatoModel) and model.config.use_struct:
            start = time.perf_counter()
            model.column_model.fit(list(train_tables))
            train_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            model._fit_crf(list(train_tables))
            crf_times.append(time.perf_counter() - start)
        else:
            start = time.perf_counter()
            model.fit(list(train_tables))
            train_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        for table in test_tables:
            model.predict_table(table)
        predict_times.append(time.perf_counter() - start)
    return TimingResult(
        model_name=name or "model",
        train_times=train_times,
        crf_train_times=crf_times,
        predict_times=predict_times,
    )
