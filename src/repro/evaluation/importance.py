"""Permutation feature importance (Figure 9).

For each fitted model and feature group, the group's features are shuffled
*across tables* (columns keep their other features), predictions are re-run
and the drop in macro / support-weighted F1 is recorded.  Shuffling a
crucial group breaks the input-output relationship and causes a large drop;
the normalised drop is the importance score.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.evaluation.metrics import classification_report
from repro.models.sato import SatoModel
from repro.models.sherlock import SherlockModel
from repro.models.topic_aware import TopicAwareModel
from repro.tables import Table
from repro.types import INDEX_TO_TYPE

__all__ = ["GroupImportance", "permutation_importance"]

_LOG_EPS = 1e-12


@dataclass
class GroupImportance:
    """Importance of one feature group: normalised drop in F1."""

    group: str
    macro_drop: float
    weighted_drop: float


def _resolve_models(model) -> tuple[SherlockModel, SatoModel | None]:
    """Return (column-wise model, optional Sato wrapper with CRF)."""
    if isinstance(model, SatoModel):
        return model.column_model, model
    if isinstance(model, SherlockModel):
        return model, None
    raise TypeError(f"unsupported model type {type(model)!r}")


def _predict(
    column_model: SherlockModel,
    sato: SatoModel | None,
    table_features: list[np.ndarray],
    table_topics: list[np.ndarray | None],
) -> list[list[str]]:
    predictions: list[list[str]] = []
    use_struct = sato is not None and sato.config.use_struct and sato.crf is not None
    for features, topics in zip(table_features, table_topics):
        if isinstance(column_model, TopicAwareModel):
            probabilities = column_model.predict_proba_from_features(features, topics)
        else:
            probabilities = column_model.predict_proba_from_features(features)
        if use_struct and probabilities.shape[0] > 1:
            unary = np.log(probabilities + _LOG_EPS)
            indices = sato.crf.viterbi(unary)
        else:
            indices = probabilities.argmax(axis=1)
        predictions.append([INDEX_TO_TYPE[int(i)] for i in indices])
    return predictions


def _score(tables: Sequence[Table], predictions: list[list[str]]) -> tuple[float, float]:
    y_true: list[str] = []
    y_pred: list[str] = []
    for table, predicted in zip(tables, predictions):
        for column, label in zip(table.columns, predicted):
            if column.semantic_type is not None:
                y_true.append(column.semantic_type)
                y_pred.append(label)
    report = classification_report(y_true, y_pred)
    return report.macro_f1, report.weighted_f1


def permutation_importance(
    model,
    tables: Sequence[Table],
    groups: Sequence[str] | None = None,
    n_repeats: int = 3,
    seed: int = 0,
    normalize: bool = True,
) -> dict[str, GroupImportance]:
    """Permutation importance of feature groups for a fitted model.

    Parameters
    ----------
    model:
        A fitted :class:`SherlockModel`, :class:`TopicAwareModel` or
        :class:`SatoModel`.
    tables:
        Evaluation tables (typically a test fold).
    groups:
        Feature groups to evaluate.  Defaults to the model's column feature
        groups plus ``"topic"`` when the model is topic-aware.
    n_repeats:
        Number of random shuffles per group (the drop is averaged).
    normalize:
        Report drops relative to the baseline score (as percentages of the
        baseline), matching the "normalised drop" of the paper.
    """
    column_model, sato = _resolve_models(model)
    tables = [t for t in tables if t.n_columns > 0]
    rng = np.random.default_rng(seed)

    table_features = [column_model.featurizer.transform_table(t) for t in tables]
    is_topic_aware = isinstance(column_model, TopicAwareModel)
    if is_topic_aware:
        table_topics: list[np.ndarray | None] = []
        for table, features in zip(tables, table_features):
            vector = column_model.intent_estimator.topic_vector(table)
            table_topics.append(np.tile(vector, (features.shape[0], 1)))
    else:
        table_topics = [None] * len(tables)

    if groups is None:
        groups = [g.name for g in column_model.featurizer.groups]
        if is_topic_aware:
            groups = ["topic"] + groups

    baseline_macro, baseline_weighted = _score(
        tables, _predict(column_model, sato, table_features, table_topics)
    )

    importances: dict[str, GroupImportance] = {}
    column_counts = [f.shape[0] for f in table_features]
    total_columns = int(sum(column_counts))
    for group_name in groups:
        macro_drops: list[float] = []
        weighted_drops: list[float] = []
        for _ in range(n_repeats):
            if group_name == "topic":
                if not is_topic_aware:
                    continue
                order = rng.permutation(len(tables))
                shuffled_topics = []
                for i, count in enumerate(column_counts):
                    source = table_topics[order[i]]
                    row = source[0] if source is not None and len(source) else np.zeros(
                        column_model.n_topics
                    )
                    shuffled_topics.append(np.tile(row, (count, 1)))
                predictions = _predict(
                    column_model, sato, table_features, shuffled_topics
                )
            else:
                group = column_model.featurizer.groups[
                    [g.name for g in column_model.featurizer.groups].index(group_name)
                ]
                stacked = np.concatenate(table_features, axis=0)
                permuted = stacked.copy()
                permutation = rng.permutation(total_columns)
                permuted[:, group.slice] = stacked[permutation][:, group.slice]
                shuffled_features = []
                offset = 0
                for count in column_counts:
                    shuffled_features.append(permuted[offset: offset + count])
                    offset += count
                predictions = _predict(
                    column_model, sato, shuffled_features, table_topics
                )
            macro, weighted = _score(tables, predictions)
            macro_drops.append(baseline_macro - macro)
            weighted_drops.append(baseline_weighted - weighted)
        if not macro_drops:
            continue
        macro_drop = float(np.mean(macro_drops))
        weighted_drop = float(np.mean(weighted_drops))
        if normalize:
            # Guard the denominator: with a near-zero baseline the normalised
            # drop would explode and stop being interpretable.
            macro_drop = macro_drop / max(baseline_macro, 0.05) * 100.0
            weighted_drop = weighted_drop / max(baseline_weighted, 0.05) * 100.0
        importances[group_name] = GroupImportance(
            group=group_name, macro_drop=macro_drop, weighted_drop=weighted_drop
        )
    return importances
