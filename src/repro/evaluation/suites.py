"""Per-suite evaluation: one macro-F1 number per hard-case scenario.

``repro-sato evaluate --suite <name>`` and the per-suite promotion gates
both run through :func:`evaluate_suite`, so the CLI report and the gate
decision can never disagree about what a suite's score means.  A suite is
built deterministically from its spec (same seed => bit-identical tables),
so two evaluations of the same bundle at the same preset produce the same
number on any machine — suite scores are reproducible evidence, not
samples.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.corpus.suites import available_suites, build_suite, load_suite_spec
from repro.evaluation.metrics import classification_report

__all__ = ["SuiteReport", "evaluate_suite", "evaluate_suites"]


@dataclass
class SuiteReport:
    """Scores of one predictor on one suite (JSON-ready via to_dict)."""

    suite: str
    preset: str
    macro_f1: float
    weighted_f1: float
    accuracy: float
    n_tables: int
    n_columns: int
    difficulty: dict

    def to_dict(self) -> dict:
        return {
            "suite": self.suite,
            "preset": self.preset,
            "macro_f1": self.macro_f1,
            "weighted_f1": self.weighted_f1,
            "accuracy": self.accuracy,
            "n_tables": self.n_tables,
            "n_columns": self.n_columns,
            "difficulty": dict(self.difficulty),
        }


def evaluate_suite(predictor, name: str, preset: str = "tiny") -> SuiteReport:
    """Score a predictor on one suite (the whole suite is the eval set).

    ``predictor`` needs only ``predict_tables`` — the same duck type the
    promotion gates use, so bundles, registry versions and fleets all work.
    """
    spec = load_suite_spec(name)
    bundle = build_suite(name, preset)
    predictions = predictor.predict_tables(bundle.tables)
    y_true: list[str] = []
    y_pred: list[str] = []
    for table, labels in zip(bundle.tables, predictions):
        for column, label in zip(table.columns, labels):
            if column.semantic_type is not None:
                y_true.append(column.semantic_type)
                y_pred.append(label)
    report = classification_report(y_true, y_pred)
    return SuiteReport(
        suite=name,
        preset=preset,
        macro_f1=report.macro_f1,
        weighted_f1=report.weighted_f1,
        accuracy=report.accuracy,
        n_tables=len(bundle.tables),
        n_columns=len(y_true),
        difficulty=dict(spec.difficulty),
    )


def evaluate_suites(
    predictor, names: list[str] | None = None, preset: str = "tiny"
) -> dict[str, SuiteReport]:
    """Score a predictor on several suites (default: every shipped suite)."""
    if names is None:
        names = sorted(available_suites())
    return {name: evaluate_suite(predictor, name, preset) for name in names}
