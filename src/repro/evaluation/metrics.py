"""Classification metrics (Section 4.4 of the paper).

Per-type F1 is ``2 * precision * recall / (precision + recall)``; the paper
reports the *support-weighted* average (per-type F1 weighted by test-set
support) and the *macro* average (unweighted mean over types), the latter
being more sensitive to rare types.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "TypeMetrics",
    "ClassificationReport",
    "classification_report",
    "f1_scores",
    "macro_f1",
    "support_weighted_f1",
]


@dataclass(frozen=True)
class TypeMetrics:
    """Precision, recall, F1 and support of one semantic type."""

    semantic_type: str
    precision: float
    recall: float
    f1: float
    support: int


@dataclass
class ClassificationReport:
    """Full per-type metrics plus the two paper-level averages."""

    per_type: dict[str, TypeMetrics]
    macro_f1: float
    weighted_f1: float
    accuracy: float
    n_samples: int

    def f1(self, semantic_type: str) -> float:
        """Per-type F1, or 0.0 for unseen types."""
        metrics = self.per_type.get(semantic_type)
        return metrics.f1 if metrics is not None else 0.0


def _validate(y_true: Sequence[str], y_pred: Sequence[str]) -> None:
    if len(y_true) != len(y_pred):
        raise ValueError(
            f"length mismatch: {len(y_true)} true labels vs {len(y_pred)} predictions"
        )


def classification_report(
    y_true: Sequence[str],
    y_pred: Sequence[str],
    types: Sequence[str] | None = None,
) -> ClassificationReport:
    """Compute per-type and averaged metrics.

    Parameters
    ----------
    y_true, y_pred:
        Ground-truth and predicted semantic type labels, aligned.
    types:
        Types to report on.  Defaults to the types present in ``y_true``
        (types never seen in the test set carry no support and are excluded
        from both averages, matching the paper's convention).
    """
    _validate(y_true, y_pred)
    if types is None:
        types = sorted(set(y_true))
    per_type: dict[str, TypeMetrics] = {}
    correct_total = sum(1 for t, p in zip(y_true, y_pred) if t == p)
    for semantic_type in types:
        true_positive = sum(
            1 for t, p in zip(y_true, y_pred) if t == semantic_type and p == semantic_type
        )
        false_positive = sum(
            1 for t, p in zip(y_true, y_pred) if t != semantic_type and p == semantic_type
        )
        false_negative = sum(
            1 for t, p in zip(y_true, y_pred) if t == semantic_type and p != semantic_type
        )
        support = true_positive + false_negative
        precision = (
            true_positive / (true_positive + false_positive)
            if (true_positive + false_positive) > 0
            else 0.0
        )
        recall = true_positive / support if support > 0 else 0.0
        f1 = (
            2 * precision * recall / (precision + recall)
            if (precision + recall) > 0
            else 0.0
        )
        per_type[semantic_type] = TypeMetrics(
            semantic_type=semantic_type,
            precision=precision,
            recall=recall,
            f1=f1,
            support=support,
        )
    supported = [m for m in per_type.values() if m.support > 0]
    macro = sum(m.f1 for m in supported) / len(supported) if supported else 0.0
    total_support = sum(m.support for m in supported)
    weighted = (
        sum(m.f1 * m.support for m in supported) / total_support
        if total_support > 0
        else 0.0
    )
    n_samples = len(y_true)
    accuracy = correct_total / n_samples if n_samples else 0.0
    return ClassificationReport(
        per_type=per_type,
        macro_f1=macro,
        weighted_f1=weighted,
        accuracy=accuracy,
        n_samples=n_samples,
    )


def f1_scores(y_true: Sequence[str], y_pred: Sequence[str]) -> dict[str, float]:
    """Per-type F1 scores as a plain dictionary."""
    report = classification_report(y_true, y_pred)
    return {name: metrics.f1 for name, metrics in report.per_type.items()}


def macro_f1(y_true: Sequence[str], y_pred: Sequence[str]) -> float:
    """Macro-average F1 over the types present in ``y_true``."""
    return classification_report(y_true, y_pred).macro_f1


def support_weighted_f1(y_true: Sequence[str], y_pred: Sequence[str]) -> float:
    """Support-weighted average F1 over the types present in ``y_true``."""
    return classification_report(y_true, y_pred).weighted_f1
