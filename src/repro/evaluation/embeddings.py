"""Column-embedding (Col2Vec) analysis for Figure 10.

Collects final-layer activations of columns whose types belong to a chosen
set (the paper uses organisation-related types), projects embeddings of two
models into a *shared* 2-D space, and quantifies how well each model
separates the types with a silhouette-style cluster-separation score.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.evaluation.tsne import tsne_project
from repro.models.base import ColumnModel
from repro.tables import Table

__all__ = [
    "ORGANIZATION_TYPES",
    "EmbeddingSet",
    "collect_column_embeddings",
    "cluster_separation",
    "project_jointly",
]

#: The organisation-related types highlighted in Figure 10.
ORGANIZATION_TYPES: tuple[str, ...] = ("affiliate", "teamName", "family", "manufacturer")


@dataclass
class EmbeddingSet:
    """Column embeddings with their ground-truth type labels."""

    model_name: str
    embeddings: np.ndarray
    labels: list[str]

    def __len__(self) -> int:
        return self.embeddings.shape[0]


def collect_column_embeddings(
    model: ColumnModel,
    tables: Sequence[Table],
    types: Sequence[str] = ORGANIZATION_TYPES,
    max_columns: int | None = 400,
) -> EmbeddingSet:
    """Collect embeddings of test columns whose ground-truth type is in ``types``."""
    wanted = set(types)
    vectors: list[np.ndarray] = []
    labels: list[str] = []
    for table in tables:
        if not any(c.semantic_type in wanted for c in table.columns):
            continue
        embeddings = model.column_embeddings(table)
        for column, vector in zip(table.columns, embeddings):
            if column.semantic_type in wanted:
                vectors.append(vector)
                labels.append(column.semantic_type)
        if max_columns is not None and len(vectors) >= max_columns:
            break
    matrix = np.stack(vectors) if vectors else np.zeros((0, 2))
    return EmbeddingSet(model_name=model.name, embeddings=matrix, labels=labels)


def project_jointly(
    set_a: EmbeddingSet, set_b: EmbeddingSet, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Project two embedding sets into one shared 2-D t-SNE space.

    Following the paper, a single projection model is fitted to the union of
    both sets so the resulting coordinates are directly comparable.  When the
    two sets have different dimensionalities they are padded to a common
    width before projection.
    """
    width = max(
        set_a.embeddings.shape[1] if set_a.embeddings.size else 0,
        set_b.embeddings.shape[1] if set_b.embeddings.size else 0,
    )

    def pad(matrix: np.ndarray) -> np.ndarray:
        if matrix.size == 0 or matrix.shape[1] == width:
            return matrix
        extra = np.zeros((matrix.shape[0], width - matrix.shape[1]))
        return np.hstack([matrix, extra])

    combined = np.vstack([pad(set_a.embeddings), pad(set_b.embeddings)])
    projected = tsne_project(combined, seed=seed)
    return projected[: len(set_a)], projected[len(set_a):]


def cluster_separation(embeddings: np.ndarray, labels: Sequence[str]) -> float:
    """Silhouette-style separation score of labelled embeddings.

    For each point: ``(b - a) / max(a, b)`` where ``a`` is the mean distance
    to points of the same type and ``b`` the smallest mean distance to points
    of another type.  Higher is better; the paper's claim is that Sato's
    embeddings separate ambiguous organisation-related types more cleanly
    than Sherlock's.
    """
    embeddings = np.asarray(embeddings, dtype=np.float64)
    labels = list(labels)
    if embeddings.shape[0] != len(labels):
        raise ValueError("embeddings and labels length mismatch")
    unique = sorted(set(labels))
    if len(unique) < 2 or embeddings.shape[0] < 3:
        return 0.0
    norms = (embeddings ** 2).sum(axis=1)
    distances = np.sqrt(
        np.maximum(norms[:, None] + norms[None, :] - 2 * embeddings @ embeddings.T, 0.0)
    )
    label_array = np.array(labels)
    scores: list[float] = []
    for i in range(embeddings.shape[0]):
        same = label_array == label_array[i]
        same[i] = False
        if not same.any():
            continue
        a = float(distances[i, same].mean())
        b_values = []
        for other in unique:
            if other == label_array[i]:
                continue
            mask = label_array == other
            if mask.any():
                b_values.append(float(distances[i, mask].mean()))
        if not b_values:
            continue
        b = min(b_values)
        denominator = max(a, b)
        if denominator > 0:
            scores.append((b - a) / denominator)
    return float(np.mean(scores)) if scores else 0.0
