"""Per-type F1 comparison between two models (Figures 7 and 8)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.evaluation.metrics import f1_scores

__all__ = ["PerTypeComparison", "per_type_f1", "per_type_comparison"]


@dataclass
class PerTypeComparison:
    """F1 of two models on every semantic type present in the test data."""

    model_a: str
    model_b: str
    f1_a: dict[str, float]
    f1_b: dict[str, float]

    @property
    def types(self) -> list[str]:
        """All compared types, sorted by model A's F1 (descending)."""
        all_types = set(self.f1_a) | set(self.f1_b)
        return sorted(all_types, key=lambda t: -self.f1_a.get(t, 0.0))

    def delta(self, semantic_type: str) -> float:
        """F1(model A) - F1(model B) for one type."""
        return self.f1_a.get(semantic_type, 0.0) - self.f1_b.get(semantic_type, 0.0)

    @property
    def improved_types(self) -> list[str]:
        """Types where model A beats model B."""
        return [t for t in self.types if self.delta(t) > 1e-9]

    @property
    def degraded_types(self) -> list[str]:
        """Types where model A does worse than model B."""
        return [t for t in self.types if self.delta(t) < -1e-9]

    @property
    def unchanged_types(self) -> list[str]:
        """Types with identical F1 for the two models."""
        return [t for t in self.types if abs(self.delta(t)) <= 1e-9]


def per_type_f1(y_true: Sequence[str], y_pred: Sequence[str]) -> dict[str, float]:
    """Per-type F1 of one prediction set."""
    return f1_scores(y_true, y_pred)


def per_type_comparison(
    y_true_a: Sequence[str],
    y_pred_a: Sequence[str],
    y_true_b: Sequence[str],
    y_pred_b: Sequence[str],
    name_a: str = "A",
    name_b: str = "B",
) -> PerTypeComparison:
    """Compare two models' per-type F1 (the data behind Figures 7-8)."""
    return PerTypeComparison(
        model_a=name_a,
        model_b=name_b,
        f1_a=per_type_f1(y_true_a, y_pred_a),
        f1_b=per_type_f1(y_true_b, y_pred_b),
    )
