"""Qualitative analysis: tables the CRF corrects (Table 4).

Finds test tables where the column-wise model mispredicts at least one
column and the structured model (same unaries + CRF) fixes at least one of
those mispredictions — the "salvaged" predictions discussed in Section 5.7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.models.base import ColumnModel
from repro.tables import Table

__all__ = ["CorrectionExample", "find_corrections"]


@dataclass
class CorrectionExample:
    """One table where structured prediction corrected column-wise errors."""

    table_id: str | None
    true_types: list[str]
    before: list[str]
    after: list[str]

    @property
    def n_corrected(self) -> int:
        """Columns wrong before and right after structured prediction."""
        return sum(
            1
            for truth, b, a in zip(self.true_types, self.before, self.after)
            if b != truth and a == truth
        )

    @property
    def n_broken(self) -> int:
        """Columns right before and wrong after structured prediction."""
        return sum(
            1
            for truth, b, a in zip(self.true_types, self.before, self.after)
            if b == truth and a != truth
        )


def find_corrections(
    column_wise_model: ColumnModel,
    structured_model: ColumnModel,
    tables: Sequence[Table],
    max_examples: int | None = 10,
    require_net_gain: bool = True,
) -> list[CorrectionExample]:
    """Mine tables where the structured model corrects the column-wise model.

    Parameters
    ----------
    column_wise_model:
        The model *without* structured prediction (Base or SatoNoStruct).
    structured_model:
        The model *with* structured prediction (SatoNoTopic or Sato).
    tables:
        Labelled evaluation tables (multi-column ones are the interesting case).
    max_examples:
        Stop after this many examples (None keeps all).
    require_net_gain:
        Only keep tables where more columns are corrected than broken.
    """
    examples: list[CorrectionExample] = []
    for table in tables:
        if table.n_columns < 2 or not table.is_fully_labeled:
            continue
        truth = [c.semantic_type for c in table.columns]
        before = column_wise_model.predict_table(table)
        after = structured_model.predict_table(table)
        example = CorrectionExample(
            table_id=table.table_id,
            true_types=[t for t in truth if t is not None],
            before=before,
            after=after,
        )
        if example.n_corrected == 0:
            continue
        if require_net_gain and example.n_corrected <= example.n_broken:
            continue
        examples.append(example)
        if max_examples is not None and len(examples) >= max_examples:
            break
    return examples
