"""Dimensionality reduction for the column-embedding analysis (Figure 10).

Implements PCA (used for initialisation and as a cheap fallback) and a small
but complete Barnes-Hut-free t-SNE: exact pairwise affinities with per-point
perplexity calibration, symmetrised P, and gradient descent with momentum
and early exaggeration on the Kullback-Leibler divergence.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pca_project", "tsne_project"]


def pca_project(data: np.ndarray, n_components: int = 2) -> np.ndarray:
    """Project data onto its first principal components."""
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError("data must be 2-D")
    centered = data - data.mean(axis=0)
    if centered.shape[0] < 2:
        return np.zeros((centered.shape[0], n_components))
    _, _, vt = np.linalg.svd(centered, full_matrices=False)
    components = vt[:n_components]
    projected = centered @ components.T
    if projected.shape[1] < n_components:
        pad = np.zeros((projected.shape[0], n_components - projected.shape[1]))
        projected = np.hstack([projected, pad])
    return projected


def _conditional_probabilities(distances: np.ndarray, perplexity: float) -> np.ndarray:
    """Per-row conditional probabilities with binary-searched bandwidths."""
    n = distances.shape[0]
    target_entropy = np.log(perplexity)
    probabilities = np.zeros((n, n), dtype=np.float64)
    for i in range(n):
        beta_low, beta_high = 1e-20, 1e20
        beta = 1.0
        row = distances[i].copy()
        row[i] = np.inf
        for _ in range(50):
            weights = np.exp(-row * beta)
            weights[i] = 0.0
            total = weights.sum()
            if total <= 0:
                beta /= 2.0
                continue
            p = weights / total
            entropy = -np.sum(p[p > 0] * np.log(p[p > 0]))
            if abs(entropy - target_entropy) < 1e-4:
                break
            if entropy > target_entropy:
                beta_low = beta
                beta = beta * 2 if beta_high >= 1e19 else (beta + beta_high) / 2
            else:
                beta_high = beta
                beta = beta / 2 if beta_low <= 1e-19 else (beta + beta_low) / 2
        weights = np.exp(-row * beta)
        weights[i] = 0.0
        total = weights.sum()
        probabilities[i] = weights / total if total > 0 else 0.0
    return probabilities


def tsne_project(
    data: np.ndarray,
    n_components: int = 2,
    perplexity: float = 20.0,
    n_iterations: int = 300,
    learning_rate: float = 100.0,
    seed: int = 0,
) -> np.ndarray:
    """Project data to two dimensions with t-SNE.

    Falls back to PCA for degenerate inputs (fewer than 5 points).
    """
    data = np.asarray(data, dtype=np.float64)
    n = data.shape[0]
    if n < 5:
        return pca_project(data, n_components)
    perplexity = min(perplexity, max(2.0, (n - 1) / 3.0))

    squared_norms = (data ** 2).sum(axis=1)
    distances = squared_norms[:, None] + squared_norms[None, :] - 2 * data @ data.T
    np.fill_diagonal(distances, 0.0)
    distances = np.maximum(distances, 0.0)

    conditional = _conditional_probabilities(distances, perplexity)
    joint = (conditional + conditional.T) / (2.0 * n)
    joint = np.maximum(joint, 1e-12)

    rng = np.random.default_rng(seed)
    embedding = pca_project(data, n_components)
    scale = embedding.std(axis=0).max()
    if scale > 0:
        embedding = embedding / scale * 1e-2
    embedding += rng.normal(scale=1e-4, size=embedding.shape)

    velocity = np.zeros_like(embedding)
    exaggeration = 4.0
    for iteration in range(n_iterations):
        p = joint * exaggeration if iteration < 50 else joint
        sq = (embedding ** 2).sum(axis=1)
        num = 1.0 / (1.0 + sq[:, None] + sq[None, :] - 2 * embedding @ embedding.T)
        np.fill_diagonal(num, 0.0)
        q = np.maximum(num / num.sum(), 1e-12)
        pq = (p - q) * num
        gradient = 4.0 * (np.diag(pq.sum(axis=1)) - pq) @ embedding
        momentum = 0.5 if iteration < 100 else 0.8
        velocity = momentum * velocity - learning_rate * gradient
        embedding = embedding + velocity
        embedding = embedding - embedding.mean(axis=0)
    return embedding
