"""K-fold cross-validated evaluation of column models (Table 1 protocol)."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.corpus.splits import kfold_split
from repro.evaluation.metrics import ClassificationReport, classification_report
from repro.models.base import ColumnModel
from repro.tables import Table

__all__ = ["FoldResult", "CrossValidationResult", "evaluate_model_cv", "collect_predictions"]


@dataclass
class FoldResult:
    """Evaluation of one fold: the report plus raw label/prediction pairs."""

    fold: int
    report: ClassificationReport
    y_true: list[str]
    y_pred: list[str]


@dataclass
class CrossValidationResult:
    """Aggregated k-fold evaluation of one model."""

    model_name: str
    folds: list[FoldResult] = field(default_factory=list)

    @property
    def macro_f1_scores(self) -> list[float]:
        """Macro-average F1 of every fold."""
        return [fold.report.macro_f1 for fold in self.folds]

    @property
    def weighted_f1_scores(self) -> list[float]:
        """Support-weighted F1 of every fold."""
        return [fold.report.weighted_f1 for fold in self.folds]

    @property
    def macro_f1(self) -> float:
        """Mean macro-average F1 across folds."""
        return float(np.mean(self.macro_f1_scores)) if self.folds else 0.0

    @property
    def weighted_f1(self) -> float:
        """Mean support-weighted F1 across folds."""
        return float(np.mean(self.weighted_f1_scores)) if self.folds else 0.0

    def confidence_interval(self, which: str = "macro") -> float:
        """Half-width of the 95% confidence interval across folds."""
        scores = self.macro_f1_scores if which == "macro" else self.weighted_f1_scores
        if len(scores) < 2:
            return 0.0
        return 1.96 * float(np.std(scores, ddof=1)) / math.sqrt(len(scores))

    def pooled_true_pred(self) -> tuple[list[str], list[str]]:
        """All (true, predicted) labels pooled over folds (per-type analyses)."""
        y_true: list[str] = []
        y_pred: list[str] = []
        for fold in self.folds:
            y_true.extend(fold.y_true)
            y_pred.extend(fold.y_pred)
        return y_true, y_pred


def collect_predictions(
    model: ColumnModel, tables: Sequence[Table]
) -> tuple[list[str], list[str]]:
    """Run a fitted model over tables and align predictions with labels.

    Only columns carrying a ground-truth label contribute to the output.
    """
    y_true: list[str] = []
    y_pred: list[str] = []
    for table in tables:
        predictions = model.predict_table(table)
        for column, prediction in zip(table.columns, predictions):
            if column.semantic_type is not None:
                y_true.append(column.semantic_type)
                y_pred.append(prediction)
    return y_true, y_pred


def evaluate_model_cv(
    model_factory: Callable[[], ColumnModel],
    tables: Sequence[Table],
    k: int = 5,
    seed: int = 0,
    model_name: str | None = None,
) -> CrossValidationResult:
    """Evaluate a model with table-level k-fold cross-validation.

    ``model_factory`` must return a *fresh, unfitted* model; a new instance
    is trained for every fold so no state leaks across folds.
    """
    splits = kfold_split(list(tables), k=k, seed=seed)
    first_model = model_factory()
    result = CrossValidationResult(model_name=model_name or first_model.name)
    for split in splits:
        model = model_factory() if split.fold > 0 else first_model
        model.fit(split.train)
        y_true, y_pred = collect_predictions(model, split.test)
        report = classification_report(y_true, y_pred)
        result.folds.append(
            FoldResult(fold=split.fold, report=report, y_true=y_true, y_pred=y_pred)
        )
    return result
