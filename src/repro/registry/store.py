"""On-disk model registry: immutable versioned bundles with atomic promotion.

The registry turns the PR-1 artifact bundle into a *managed lifecycle*:

``<root>/<name>/<version>/``
    One immutable published model.  The directory holds the ordinary bundle
    (``manifest.json`` + ``tensors.npz``) plus ``version.json`` — the
    lineage record (parent version, config hash, corpus fingerprint, train
    metrics, bundle fingerprint, creation time).
``<root>/<name>/CURRENT.json``
    The promotion pointer: which version serves live traffic, when it was
    promoted, the gate evidence that let it through, and the promotion
    history that ``rollback`` walks backwards.

Every state transition is a single atomic filesystem rename:

* ``publish`` stages the full bundle into a hidden ``.staging-*`` directory
  and ``os.rename``\\ s it to its final version name — a process killed
  mid-publish leaves only staging garbage (cleaned by :meth:`gc`), never a
  half-written version,
* ``promote`` / ``rollback`` write a temporary pointer file and
  ``os.replace`` it over ``CURRENT.json`` — readers always see either the
  old pointer or the new one, never a torn write.

Versions are immutable once published: nothing ever writes inside a
version directory again, and :meth:`verify` recomputes the bundle
fingerprint recorded at publish time to detect on-disk corruption before a
version is promoted or loaded.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import shutil
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path

from repro.serving.bundle import (
    MANIFEST_NAME,
    TENSORS_NAME,
    load_model,
    save_model,
)

__all__ = [
    "CURRENT_NAME",
    "GATE_LOG_NAME",
    "VERSION_MANIFEST_NAME",
    "ModelRegistry",
    "RegistryError",
    "VersionInfo",
    "bundle_fingerprint",
]

#: The promotion pointer file inside every model directory.
CURRENT_NAME = "CURRENT.json"

#: Append-only log of gate decisions inside every model directory.  The
#: promotion pointer only ever carries the *winning* gate evidence; this
#: log additionally preserves refused attempts (a failed gate aborts the
#: promote before the pointer is touched), so "why didn't v0007 ship?" has
#: an on-disk answer.
GATE_LOG_NAME = "GATE_LOG.json"

#: The per-version lineage record inside every version directory.
VERSION_MANIFEST_NAME = "version.json"

_VERSION_RE = re.compile(r"^v(\d{4,})$")
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")
_STAGING_PREFIX = ".staging-"
_TRASH_PREFIX = ".trash-"


class RegistryError(RuntimeError):
    """Raised for any invalid registry operation or integrity failure."""


def bundle_fingerprint(path: str | Path) -> str:
    """Content hash of a bundle directory's files (manifest + tensors).

    Hashes the raw bytes of ``manifest.json`` and ``tensors.npz`` with each
    file name length-prefixed, so the fingerprint pins both contents and
    layout.  This is the integrity check recorded at publish time and
    re-verified before every promote/load.
    """
    path = Path(path)
    digest = hashlib.blake2b(digest_size=16)
    for name in (MANIFEST_NAME, TENSORS_NAME):
        file_path = path / name
        if not file_path.is_file():
            raise RegistryError(f"bundle at {path} is missing {name}")
        encoded = name.encode("utf-8")
        digest.update(len(encoded).to_bytes(4, "little"))
        digest.update(encoded)
        digest.update(file_path.stat().st_size.to_bytes(8, "little"))
        with file_path.open("rb") as handle:
            for chunk in iter(lambda: handle.read(1 << 20), b""):
                digest.update(chunk)
    return digest.hexdigest()


def _config_hash(bundle_dir: Path) -> str:
    """Hash of the model configuration recorded in the bundle manifest."""
    try:
        manifest = json.loads(
            (bundle_dir / MANIFEST_NAME).read_text(encoding="utf-8")
        )
    except (OSError, json.JSONDecodeError) as error:
        raise RegistryError(f"cannot read bundle manifest in {bundle_dir}: {error}")
    encoded = json.dumps(manifest.get("model"), sort_keys=True).encode("utf-8")
    return hashlib.blake2b(encoded, digest_size=8).hexdigest()


@dataclass(frozen=True)
class VersionInfo:
    """Lineage record of one published version (the ``version.json`` file)."""

    name: str
    version: str
    path: Path
    fingerprint: str
    created_at: float
    parent: str | None = None
    config_hash: str | None = None
    corpus_fingerprint: str | None = None
    train_metrics: dict = field(default_factory=dict)

    @property
    def number(self) -> int:
        """Numeric part of the version tag (``v0003`` -> 3)."""
        match = _VERSION_RE.match(self.version)
        return int(match.group(1)) if match else -1

    def to_manifest(self) -> dict:
        """JSON payload written as ``version.json``."""
        return {
            "name": self.name,
            "version": self.version,
            "fingerprint": self.fingerprint,
            "created_at": self.created_at,
            "parent": self.parent,
            "config_hash": self.config_hash,
            "corpus_fingerprint": self.corpus_fingerprint,
            "train_metrics": dict(self.train_metrics),
        }


def _atomic_write_json(path: Path, payload: dict) -> None:
    """Write JSON so readers see the old file or the new one, never a tear."""
    temporary = path.parent / f".{path.name}.{uuid.uuid4().hex}.tmp"
    with temporary.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temporary, path)


class ModelRegistry:
    """Versioned store of published model bundles with atomic promotion.

    Parameters
    ----------
    root:
        Registry root directory; created on first use.

    Examples:
        >>> import tempfile
        >>> from repro.corpus import CorpusConfig, CorpusGenerator
        >>> from repro.models import SatoConfig, SatoModel, TrainingConfig
        >>> tables = CorpusGenerator(CorpusConfig(n_tables=5, seed=1)).generate()
        >>> config = SatoConfig(use_topic=False, use_struct=False,
        ...                     training=TrainingConfig(n_epochs=1,
        ...                                             subnet_dim=4,
        ...                                             hidden_dim=8))
        >>> model = SatoModel(config=config).fit(tables)
        >>> with tempfile.TemporaryDirectory() as root:
        ...     registry = ModelRegistry(root)
        ...     info = registry.publish(model, "demo")
        ...     promoted = registry.promote("demo", info.version)
        ...     (info.version, registry.current("demo").version)
        ('v0001', 'v0001')
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -------------------------------------------------------------- layout

    def model_dir(self, name: str) -> Path:
        """Directory of one registered model name (validates the name)."""
        if not _NAME_RE.match(name):
            raise RegistryError(
                f"invalid model name {name!r}: use letters, digits, '.', '_', '-'"
            )
        return self.root / name

    def names(self) -> list[str]:
        """Registered model names, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir() and _NAME_RE.match(entry.name)
        )

    def version_dir(self, name: str, version: str) -> Path:
        if not _VERSION_RE.match(version):
            raise RegistryError(
                f"invalid version tag {version!r} (expected e.g. 'v0001')"
            )
        return self.model_dir(name) / version

    # ------------------------------------------------------------- reading

    def _read_version(self, name: str, version_path: Path) -> VersionInfo:
        manifest_path = version_path / VERSION_MANIFEST_NAME
        try:
            payload = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise RegistryError(
                f"unreadable {VERSION_MANIFEST_NAME} for {name}/{version_path.name}: {error}"
            )
        return VersionInfo(
            name=name,
            version=version_path.name,
            path=version_path,
            fingerprint=payload.get("fingerprint", ""),
            created_at=float(payload.get("created_at", 0.0)),
            parent=payload.get("parent"),
            config_hash=payload.get("config_hash"),
            corpus_fingerprint=payload.get("corpus_fingerprint"),
            train_metrics=payload.get("train_metrics") or {},
        )

    def list_versions(self, name: str) -> list[VersionInfo]:
        """Every published version of a model, oldest first."""
        directory = self.model_dir(name)
        if not directory.is_dir():
            return []
        versions = [
            entry
            for entry in directory.iterdir()
            if entry.is_dir() and _VERSION_RE.match(entry.name)
        ]
        versions.sort(key=lambda entry: int(_VERSION_RE.match(entry.name).group(1)))
        return [self._read_version(name, entry) for entry in versions]

    def get(self, name: str, version: str) -> VersionInfo:
        """One version's lineage record (raises if unknown)."""
        path = self.version_dir(name, version)
        if not path.is_dir():
            raise RegistryError(f"unknown version {name}/{version}")
        return self._read_version(name, path)

    def _current_payload(self, name: str) -> dict | None:
        pointer = self.model_dir(name) / CURRENT_NAME
        if not pointer.is_file():
            return None
        try:
            return json.loads(pointer.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise RegistryError(f"corrupt {CURRENT_NAME} for {name}: {error}")

    def current_version(self, name: str) -> str | None:
        """The promoted version tag, or None before any promotion.

        This is the cheap poll the registry-watch serving mode issues every
        interval: one small JSON file read, no bundle I/O.
        """
        payload = self._current_payload(name)
        return payload.get("version") if payload else None

    def current(self, name: str) -> VersionInfo | None:
        """Lineage record of the promoted version, or None."""
        version = self.current_version(name)
        return self.get(name, version) if version else None

    # ------------------------------------------------------------ publish

    def publish(
        self,
        model_or_bundle,
        name: str,
        train_metrics: dict | None = None,
        corpus_fingerprint: str | None = None,
        parent: str | None = None,
    ) -> VersionInfo:
        """Publish a fitted model (or an existing bundle directory).

        The bundle is staged under a hidden directory and atomically renamed
        into place, so a crash mid-publish never leaves a half-written
        version.  Publishing does **not** change what serves traffic —
        :meth:`promote` does.

        Parameters
        ----------
        model_or_bundle:
            A fitted :class:`~repro.models.sato.SatoModel`, or the path of a
            bundle directory produced by ``repro-sato train`` /
            :func:`~repro.serving.bundle.save_model`.
        train_metrics:
            Optional metrics measured at train time (recorded as lineage).
        corpus_fingerprint:
            Optional hash of the training corpus (recorded as lineage).
        parent:
            Lineage parent version; defaults to the currently promoted
            version at publish time.
        """
        directory = self.model_dir(name)
        directory.mkdir(parents=True, exist_ok=True)
        if parent is None:
            parent = self.current_version(name)
        elif not self.version_dir(name, parent).is_dir():
            raise RegistryError(f"parent version {name}/{parent} does not exist")

        staging = directory / f"{_STAGING_PREFIX}{uuid.uuid4().hex}"
        try:
            if isinstance(model_or_bundle, (str, Path)):
                source = Path(model_or_bundle)
                staging.mkdir()
                for file_name in (MANIFEST_NAME, TENSORS_NAME):
                    if not (source / file_name).is_file():
                        raise RegistryError(
                            f"{source} is not a bundle directory (missing {file_name})"
                        )
                    shutil.copy2(source / file_name, staging / file_name)
            else:
                save_model(model_or_bundle, staging)

            fingerprint = bundle_fingerprint(staging)
            info_template = {
                "fingerprint": fingerprint,
                "created_at": time.time(),
                "parent": parent,
                "config_hash": _config_hash(staging),
                "corpus_fingerprint": corpus_fingerprint,
                "train_metrics": dict(train_metrics or {}),
            }

            # Allocate the next version number and atomically rename the
            # staging directory into place.  A concurrent publisher that
            # wins the same number makes our rename fail with EEXIST /
            # ENOTEMPTY; we then re-number and retry.
            for _ in range(100):
                version = f"v{self._next_number(name):04d}"
                info = VersionInfo(
                    name=name,
                    version=version,
                    path=directory / version,
                    **info_template,
                )
                _atomic_write_json(
                    staging / VERSION_MANIFEST_NAME, info.to_manifest()
                )
                try:
                    os.rename(staging, directory / version)
                except OSError:
                    if not (directory / version).exists():
                        raise
                    continue  # lost the race for this number; try the next
                return info
            raise RegistryError(
                f"could not allocate a version number for {name} after 100 attempts"
            )
        finally:
            if staging.is_dir():
                shutil.rmtree(staging, ignore_errors=True)

    def _next_number(self, name: str) -> int:
        directory = self.model_dir(name)
        numbers = [
            int(match.group(1))
            for entry in directory.iterdir()
            if entry.is_dir() and (match := _VERSION_RE.match(entry.name))
        ]
        return max(numbers, default=0) + 1

    # ------------------------------------------------------------ promote

    def verify(self, name: str, version: str) -> VersionInfo:
        """Integrity-check one version (fingerprint must match the record)."""
        info = self.get(name, version)
        actual = bundle_fingerprint(info.path)
        if actual != info.fingerprint:
            raise RegistryError(
                f"integrity check failed for {name}/{version}: bundle hash "
                f"{actual} != recorded {info.fingerprint}"
            )
        return info

    def promote(
        self, name: str, version: str, gate: dict | None = None
    ) -> VersionInfo:
        """Point live traffic at a version (after an integrity check).

        The pointer update is one ``os.replace``: a process killed at any
        instant leaves either the previous promotion or the new one, both
        fully loadable.  ``gate`` (the evidence that justified the
        promotion, e.g. a :class:`~repro.registry.gates.GateResult` as a
        dict) is recorded in the pointer for auditability.
        """
        info = self.verify(name, version)
        payload = self._current_payload(name) or {"history": []}
        history = list(payload.get("history") or [])
        if payload.get("version") and payload["version"] != version:
            history.append(
                {
                    "version": payload["version"],
                    "fingerprint": payload.get("fingerprint"),
                    "promoted_at": payload.get("promoted_at"),
                    "gate": payload.get("gate"),
                }
            )
        _atomic_write_json(
            self.model_dir(name) / CURRENT_NAME,
            {
                "name": name,
                "version": version,
                "fingerprint": info.fingerprint,
                "promoted_at": time.time(),
                "gate": gate,
                "history": history,
            },
        )
        return info

    def rollback(self, name: str) -> VersionInfo:
        """Re-promote the previously promoted version (one step back).

        Atomic in the same way as :meth:`promote`.  Raises when there is no
        promotion history to walk back to, or when the previous version has
        been deleted or corrupted since.
        """
        payload = self._current_payload(name)
        if not payload or not payload.get("version"):
            raise RegistryError(f"{name} has no promoted version to roll back")
        history = list(payload.get("history") or [])
        if not history:
            raise RegistryError(
                f"{name} has no promotion history to roll back to"
            )
        previous = history.pop()
        info = self.verify(name, previous["version"])
        _atomic_write_json(
            self.model_dir(name) / CURRENT_NAME,
            {
                "name": name,
                "version": info.version,
                "fingerprint": info.fingerprint,
                "promoted_at": time.time(),
                "gate": {"rollback_from": payload["version"]},
                "history": history,
            },
        )
        return info

    # ------------------------------------------------------------ gate log

    def record_gate(self, name: str, version: str, gate: dict) -> None:
        """Append one gate decision to the model's ``GATE_LOG.json``.

        Called by the CLI for *every* gated promotion attempt, pass or
        fail, so refused candidates leave evidence even though a failed
        gate aborts before :meth:`promote` runs.  The write is the same
        atomic replace as the promotion pointer.
        """
        directory = self.model_dir(name)
        directory.mkdir(parents=True, exist_ok=True)
        entries = self.gate_log(name)
        entries.append(
            {
                "version": version,
                "recorded_at": time.time(),
                "gate": gate,
            }
        )
        _atomic_write_json(directory / GATE_LOG_NAME, {"entries": entries})

    def gate_log(self, name: str) -> list[dict]:
        """Every recorded gate decision for a model, oldest first."""
        path = self.model_dir(name) / GATE_LOG_NAME
        if not path.is_file():
            return []
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise RegistryError(f"corrupt {GATE_LOG_NAME} for {name}: {error}")
        return list(payload.get("entries") or [])

    # -------------------------------------------------------------- loading

    def load(self, name: str, version: str | None = None):
        """Load a version's model (integrity-checked); default: the current.

        Returns ``(model, info)``.
        """
        if version is None:
            version = self.current_version(name)
            if version is None:
                raise RegistryError(f"{name} has no promoted version")
        info = self.verify(name, version)
        return load_model(info.path), info

    # ------------------------------------------------------------------ gc

    def gc(self, name: str, keep_unpromoted: int = 2) -> list[str]:
        """Delete old unpromoted versions and stale staging directories.

        The promoted version and everything in the promotion history (the
        rollback chain) are never touched; of the remaining *unpromoted*
        versions, the newest ``keep_unpromoted`` are kept.  Deletion renames
        the doomed directory to a hidden trash name first, so a reader that
        raced the GC sees either the intact version or nothing.

        Returns the deleted version tags (staging garbage is cleaned
        silently).
        """
        if keep_unpromoted < 0:
            raise RegistryError("keep_unpromoted must be >= 0")
        directory = self.model_dir(name)
        if not directory.is_dir():
            return []

        for entry in directory.iterdir():
            if entry.is_dir() and entry.name.startswith(
                (_STAGING_PREFIX, _TRASH_PREFIX)
            ):
                shutil.rmtree(entry, ignore_errors=True)

        payload = self._current_payload(name) or {}
        protected = {payload.get("version")}
        protected.update(
            entry.get("version") for entry in payload.get("history") or []
        )
        unpromoted = [
            info
            for info in self.list_versions(name)
            if info.version not in protected
        ]
        unpromoted.sort(key=lambda info: info.number)
        doomed = unpromoted[: max(0, len(unpromoted) - keep_unpromoted)]
        removed: list[str] = []
        for info in doomed:
            trash = directory / f"{_TRASH_PREFIX}{info.version}-{uuid.uuid4().hex}"
            try:
                os.rename(info.path, trash)
            except OSError:
                continue  # someone else removed (or is reading) it; skip
            shutil.rmtree(trash, ignore_errors=True)
            removed.append(info.version)
        return removed
