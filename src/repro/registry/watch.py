"""Registry watching: notice promotions without restarting the server.

A serving process in registry mode should pick up a new promotion on its
own — the operator promotes, every watching server hot-swaps.  The watcher
is deliberately dumb and robust: it polls the registry's promotion pointer
(one small JSON read, no bundle I/O) and reports a change exactly once per
new version.  The caller decides what a change means (the serving server
loads the version and swaps it into its :class:`~repro.serving.Predictor`).

Polling rather than inotify keeps the mechanism portable (NFS, bind
mounts, macOS) and dependency-free; at the default interval the promotion
propagation delay is bounded by a couple of seconds, far below any
drain-and-restart deploy.
"""

from __future__ import annotations

from repro.registry.store import ModelRegistry, RegistryError

__all__ = ["DEFAULT_WATCH_INTERVAL", "RegistryWatcher"]

#: Default seconds between promotion-pointer polls (CLI + ExperimentConfig).
DEFAULT_WATCH_INTERVAL = 2.0


class RegistryWatcher:
    """Detect promotion-pointer changes for one registered model name.

    Examples:
        >>> import tempfile
        >>> from repro.corpus import CorpusConfig, CorpusGenerator
        >>> from repro.models import SatoConfig, SatoModel, TrainingConfig
        >>> from repro.registry import ModelRegistry
        >>> tables = CorpusGenerator(CorpusConfig(n_tables=5, seed=1)).generate()
        >>> config = SatoConfig(use_topic=False, use_struct=False,
        ...                     training=TrainingConfig(n_epochs=1,
        ...                                             subnet_dim=4,
        ...                                             hidden_dim=8))
        >>> model = SatoModel(config=config).fit(tables)
        >>> with tempfile.TemporaryDirectory() as root:
        ...     registry = ModelRegistry(root)
        ...     info = registry.publish(model, "demo")
        ...     watcher = RegistryWatcher(registry, "demo")
        ...     before = watcher.poll()          # nothing promoted yet
        ...     _ = registry.promote("demo", info.version)
        ...     first = watcher.poll()           # change seen exactly once
        ...     second = watcher.poll()
        >>> (before, first, second)
        (None, 'v0001', None)
    """

    def __init__(
        self,
        registry: ModelRegistry,
        name: str,
        seen_version: str | None = None,
    ) -> None:
        self.registry = registry
        self.name = name
        self.seen_version = seen_version
        self.polls = 0
        self.errors = 0

    def resync(self, version: str | None) -> None:
        """Re-baseline change detection to the caller's live version.

        A serving process calls this before every poll with the version
        it *actually* serves, so the watcher reports a change relative to
        live state — even when admin reloads (or a fleet-wide two-phase
        swap) moved the server somewhere else between polls.
        """
        self.seen_version = version

    def poll(self) -> str | None:
        """One poll: the newly promoted version tag, or None if unchanged.

        Registry read errors (e.g. a registry directory briefly unreachable
        on a network mount) are counted and swallowed — a watcher must
        never take the serving process down.
        """
        self.polls += 1
        try:
            current = self.registry.current_version(self.name)
        except (RegistryError, OSError):
            self.errors += 1
            return None
        if current is None or current == self.seen_version:
            return None
        self.seen_version = current
        return current
