"""Quantitative promotion gates: no model takes traffic on vibes.

``repro-sato registry promote --gate`` refuses to flip the promotion
pointer unless the candidate clears two thresholds:

* **macro-F1 on a held-out eval set** — absolute quality, measured by
  running the candidate over a labelled table set that was never part of
  training (:func:`holdout_report`),
* **agreement with the incumbent** — behavioural drift, measured by
  replaying the same eval tables through both the candidate and the
  currently promoted version and comparing per-column predictions
  (:func:`replay_agreement`).  This is the offline twin of the live
  :class:`~repro.registry.shadow.ShadowEvaluator`; live shadow stats from a
  running server's ``/metrics`` can be supplied instead via the CLI.

Both checks produce one :class:`GateResult` that is recorded in the
registry's promotion pointer, so every promotion carries its evidence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.evaluation.metrics import ClassificationReport, classification_report
from repro.tables import Table, tables_from_jsonl

__all__ = [
    "DEFAULT_GATE_MIN_AGREEMENT",
    "DEFAULT_GATE_MIN_F1",
    "GateResult",
    "holdout_report",
    "load_eval_tables",
    "replay_agreement",
    "run_gate",
]

#: Default promotion-gate thresholds, shared by the CLI and
#: ``ExperimentConfig.gate_*`` so one edit retunes both.  The F1 floor is
#: deliberately modest (the tiny synthetic corpora of tests/benchmarks top
#: out well below paper-scale accuracy); production deployments should set
#: their own via ``promote --min-f1/--min-agreement``.
DEFAULT_GATE_MIN_F1 = 0.5
DEFAULT_GATE_MIN_AGREEMENT = 0.85


def load_eval_tables(path, labeled_only: bool = True) -> list[Table]:
    """Load a held-out eval set (corpus JSONL), keeping labelled tables.

    Tables without a single ground-truth column label cannot contribute to
    F1 and are dropped when ``labeled_only`` is set.  The same loader backs
    ``repro-sato evaluate --model`` and the promotion gate, so the two
    paths can never disagree about what "the eval set" means.
    """
    tables = tables_from_jsonl(path)
    if labeled_only:
        tables = [
            table
            for table in tables
            if any(column.semantic_type is not None for column in table.columns)
        ]
    if not tables:
        raise ValueError(f"eval set {path} holds no labelled tables")
    return tables


def holdout_report(predictor, tables: list[Table]) -> ClassificationReport:
    """Classification report of a predictor over labelled eval tables.

    ``predictor`` needs only ``predict_tables``; batched prediction keeps
    this fast enough to run inside a promotion.
    """
    predictions = predictor.predict_tables(tables)
    y_true: list[str] = []
    y_pred: list[str] = []
    for table, labels in zip(tables, predictions):
        for column, label in zip(table.columns, labels):
            if column.semantic_type is not None:
                y_true.append(column.semantic_type)
                y_pred.append(label)
    return classification_report(y_true, y_pred)


def replay_agreement(candidate, incumbent, tables: list[Table]) -> float:
    """Column-level agreement between two predictors on the same tables."""
    candidate_labels = candidate.predict_tables(tables)
    incumbent_labels = incumbent.predict_tables(tables)
    compared = 0
    agreed = 0
    for ours, theirs in zip(candidate_labels, incumbent_labels):
        for a, b in zip(ours, theirs):
            compared += 1
            agreed += a == b
    return agreed / compared if compared else 1.0


@dataclass
class GateResult:
    """Outcome of a gated promotion check (recorded with the promotion)."""

    passed: bool
    macro_f1: float
    weighted_f1: float
    agreement: float | None
    min_macro_f1: float
    min_agreement: float
    n_eval_tables: int
    reasons: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "passed": self.passed,
            "macro_f1": self.macro_f1,
            "weighted_f1": self.weighted_f1,
            "agreement": self.agreement,
            "min_macro_f1": self.min_macro_f1,
            "min_agreement": self.min_agreement,
            "n_eval_tables": self.n_eval_tables,
            "reasons": list(self.reasons),
        }


def run_gate(
    candidate,
    eval_tables: list[Table],
    min_macro_f1: float,
    min_agreement: float,
    incumbent=None,
    shadow_agreement: float | None = None,
) -> GateResult:
    """Evaluate every promotion gate for a candidate predictor.

    ``incumbent`` (the currently promoted version's predictor) enables the
    replay-agreement gate; ``shadow_agreement`` — an agreement rate already
    measured on live traffic — takes precedence over the replay when
    given.  With neither, only the F1 gate applies (first promotion).
    """
    report = holdout_report(candidate, eval_tables)
    agreement: float | None = shadow_agreement
    if agreement is None and incumbent is not None:
        agreement = replay_agreement(candidate, incumbent, eval_tables)

    reasons: list[str] = []
    if report.macro_f1 < min_macro_f1:
        reasons.append(
            f"macro-F1 {report.macro_f1:.3f} below gate {min_macro_f1:.3f}"
        )
    if agreement is not None and agreement < min_agreement:
        reasons.append(
            f"agreement {agreement:.3f} below gate {min_agreement:.3f}"
        )
    return GateResult(
        passed=not reasons,
        macro_f1=report.macro_f1,
        weighted_f1=report.weighted_f1,
        agreement=agreement,
        min_macro_f1=min_macro_f1,
        min_agreement=min_agreement,
        n_eval_tables=len(eval_tables),
        reasons=reasons,
    )
