"""Quantitative promotion gates: no model takes traffic on vibes.

``repro-sato registry promote --gate`` refuses to flip the promotion
pointer unless the candidate clears two thresholds:

* **macro-F1 on a held-out eval set** — absolute quality, measured by
  running the candidate over a labelled table set that was never part of
  training (:func:`holdout_report`),
* **agreement with the incumbent** — behavioural drift, measured by
  replaying the same eval tables through both the candidate and the
  currently promoted version and comparing per-column predictions
  (:func:`replay_agreement`).  This is the offline twin of the live
  :class:`~repro.registry.shadow.ShadowEvaluator`; live shadow stats from a
  running server's ``/metrics`` can be supplied instead via the CLI.

Both checks produce one :class:`GateResult` that is recorded in the
registry's promotion pointer, so every promotion carries its evidence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.evaluation.metrics import ClassificationReport, classification_report
from repro.tables import Table, tables_from_jsonl

__all__ = [
    "DEFAULT_GATE_MIN_AGREEMENT",
    "DEFAULT_GATE_MIN_F1",
    "DEFAULT_SUITE_GATE_MIN_F1",
    "DEFAULT_SUITE_REGRESSION_TOLERANCE",
    "GateResult",
    "SuiteGate",
    "SuiteGateResult",
    "holdout_report",
    "load_eval_tables",
    "parse_suite_gate",
    "replay_agreement",
    "run_gate",
    "run_suite_gates",
]

#: Default promotion-gate thresholds, shared by the CLI and
#: ``ExperimentConfig.gate_*`` so one edit retunes both.  The F1 floor is
#: deliberately modest (the tiny synthetic corpora of tests/benchmarks top
#: out well below paper-scale accuracy); production deployments should set
#: their own via ``promote --min-f1/--min-agreement``.
DEFAULT_GATE_MIN_F1 = 0.5
DEFAULT_GATE_MIN_AGREEMENT = 0.85

#: Absolute per-suite floor used when neither the gate configuration nor
#: the suite spec's ``difficulty.suggested_floor`` names one.  Deliberately
#: near zero: the useful per-suite criterion is usually the
#: no-regression-vs-incumbent check; explicit floors are a policy choice.
DEFAULT_SUITE_GATE_MIN_F1 = 0.02

#: How far a candidate's per-suite macro-F1 may fall below the incumbent's
#: before the promotion is refused.  The tiny suite presets make F1 exactly
#: reproducible (deterministic corpora, deterministic inference), so the
#: tolerance absorbs genuine model-to-model variation only.
DEFAULT_SUITE_REGRESSION_TOLERANCE = 0.05


def load_eval_tables(path, labeled_only: bool = True) -> list[Table]:
    """Load a held-out eval set (corpus JSONL), keeping labelled tables.

    Tables without a single ground-truth column label cannot contribute to
    F1 and are dropped when ``labeled_only`` is set.  The same loader backs
    ``repro-sato evaluate --model`` and the promotion gate, so the two
    paths can never disagree about what "the eval set" means.
    """
    tables = tables_from_jsonl(path)
    if labeled_only:
        tables = [
            table
            for table in tables
            if any(column.semantic_type is not None for column in table.columns)
        ]
    if not tables:
        raise ValueError(f"eval set {path} holds no labelled tables")
    return tables


def holdout_report(predictor, tables: list[Table]) -> ClassificationReport:
    """Classification report of a predictor over labelled eval tables.

    ``predictor`` needs only ``predict_tables``; batched prediction keeps
    this fast enough to run inside a promotion.
    """
    predictions = predictor.predict_tables(tables)
    y_true: list[str] = []
    y_pred: list[str] = []
    for table, labels in zip(tables, predictions):
        for column, label in zip(table.columns, labels):
            if column.semantic_type is not None:
                y_true.append(column.semantic_type)
                y_pred.append(label)
    return classification_report(y_true, y_pred)


def replay_agreement(candidate, incumbent, tables: list[Table]) -> float:
    """Column-level agreement between two predictors on the same tables."""
    candidate_labels = candidate.predict_tables(tables)
    incumbent_labels = incumbent.predict_tables(tables)
    compared = 0
    agreed = 0
    for ours, theirs in zip(candidate_labels, incumbent_labels):
        for a, b in zip(ours, theirs):
            compared += 1
            agreed += a == b
    return agreed / compared if compared else 1.0


@dataclass(frozen=True)
class SuiteGate:
    """One configured per-suite promotion criterion.

    ``min_f1`` of ``None`` defers to the suite spec's
    ``difficulty.suggested_floor`` (falling back to
    :data:`DEFAULT_SUITE_GATE_MIN_F1`), so shipped suites carry their own
    review-able default policy.
    """

    suite: str
    min_f1: float | None = None


def parse_suite_gate(text: str) -> SuiteGate:
    """Parse the CLI form ``name`` or ``name:0.25`` into a :class:`SuiteGate`."""
    suite, separator, floor = text.partition(":")
    if not suite:
        raise ValueError(f"--suite expects NAME or NAME:MIN_F1, got {text!r}")
    if not separator:
        return SuiteGate(suite=suite)
    try:
        return SuiteGate(suite=suite, min_f1=float(floor))
    except ValueError:
        raise ValueError(
            f"--suite expects NAME or NAME:MIN_F1, got {text!r}"
        ) from None


@dataclass
class SuiteGateResult:
    """Outcome of one per-suite criterion (part of the gate evidence)."""

    suite: str
    preset: str
    macro_f1: float
    min_f1: float
    incumbent_f1: float | None
    tolerance: float
    passed: bool
    n_columns: int
    reasons: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "suite": self.suite,
            "preset": self.preset,
            "macro_f1": self.macro_f1,
            "min_f1": self.min_f1,
            "incumbent_f1": self.incumbent_f1,
            "tolerance": self.tolerance,
            "passed": self.passed,
            "n_columns": self.n_columns,
            "reasons": list(self.reasons),
        }


def run_suite_gates(
    candidate,
    suite_gates: list[SuiteGate],
    incumbent=None,
    preset: str = "tiny",
    tolerance: float = DEFAULT_SUITE_REGRESSION_TOLERANCE,
) -> list[SuiteGateResult]:
    """Evaluate every configured per-suite criterion.

    Each suite imposes two conditions on the candidate's macro-F1 over the
    deterministically built suite corpus:

    * **absolute floor** — at least the gate's ``min_f1`` (or the suite's
      suggested floor),
    * **no regression** — when an incumbent predictor is given, at least
      ``incumbent_f1 - tolerance``: "handles more scenarios" must never
      silently become "handles fewer".
    """
    from repro.corpus.suites import load_suite_spec
    from repro.evaluation.suites import evaluate_suite

    results: list[SuiteGateResult] = []
    for gate in suite_gates:
        spec = load_suite_spec(gate.suite)
        min_f1 = gate.min_f1
        if min_f1 is None:
            min_f1 = float(
                spec.difficulty.get("suggested_floor", DEFAULT_SUITE_GATE_MIN_F1)
            )
        report = evaluate_suite(candidate, gate.suite, preset)
        incumbent_f1 = None
        if incumbent is not None:
            incumbent_f1 = evaluate_suite(incumbent, gate.suite, preset).macro_f1
        reasons: list[str] = []
        if report.macro_f1 < min_f1:
            reasons.append(
                f"suite {gate.suite}: macro-F1 {report.macro_f1:.3f} below "
                f"floor {min_f1:.3f}"
            )
        if incumbent_f1 is not None and report.macro_f1 < incumbent_f1 - tolerance:
            reasons.append(
                f"suite {gate.suite}: macro-F1 {report.macro_f1:.3f} regressed "
                f"vs incumbent {incumbent_f1:.3f} (tolerance {tolerance:.3f})"
            )
        results.append(
            SuiteGateResult(
                suite=gate.suite,
                preset=preset,
                macro_f1=report.macro_f1,
                min_f1=min_f1,
                incumbent_f1=incumbent_f1,
                tolerance=tolerance,
                passed=not reasons,
                n_columns=report.n_columns,
                reasons=reasons,
            )
        )
    return results


@dataclass
class GateResult:
    """Outcome of a gated promotion check (recorded with the promotion)."""

    passed: bool
    macro_f1: float
    weighted_f1: float
    agreement: float | None
    min_macro_f1: float
    min_agreement: float
    n_eval_tables: int
    reasons: list[str] = field(default_factory=list)
    suites: list[SuiteGateResult] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "passed": self.passed,
            "macro_f1": self.macro_f1,
            "weighted_f1": self.weighted_f1,
            "agreement": self.agreement,
            "min_macro_f1": self.min_macro_f1,
            "min_agreement": self.min_agreement,
            "n_eval_tables": self.n_eval_tables,
            "reasons": list(self.reasons),
            "suites": [suite.to_dict() for suite in self.suites],
        }


def run_gate(
    candidate,
    eval_tables: list[Table],
    min_macro_f1: float,
    min_agreement: float,
    incumbent=None,
    shadow_agreement: float | None = None,
    suite_gates: list[SuiteGate] | None = None,
    suite_preset: str = "tiny",
    suite_tolerance: float = DEFAULT_SUITE_REGRESSION_TOLERANCE,
) -> GateResult:
    """Evaluate every promotion gate for a candidate predictor.

    ``incumbent`` (the currently promoted version's predictor) enables the
    replay-agreement gate and the per-suite no-regression checks;
    ``shadow_agreement`` — an agreement rate already measured on live
    traffic — takes precedence over the replay when given.  With neither,
    only the F1 gate (plus any ``suite_gates`` floors) applies (first
    promotion).  ``suite_gates`` adds one hard-case scenario criterion per
    entry (see :func:`run_suite_gates`); every configured suite must pass
    for the promotion to pass.
    """
    report = holdout_report(candidate, eval_tables)
    agreement: float | None = shadow_agreement
    if agreement is None and incumbent is not None:
        agreement = replay_agreement(candidate, incumbent, eval_tables)

    reasons: list[str] = []
    if report.macro_f1 < min_macro_f1:
        reasons.append(
            f"macro-F1 {report.macro_f1:.3f} below gate {min_macro_f1:.3f}"
        )
    if agreement is not None and agreement < min_agreement:
        reasons.append(
            f"agreement {agreement:.3f} below gate {min_agreement:.3f}"
        )
    suites: list[SuiteGateResult] = []
    if suite_gates:
        suites = run_suite_gates(
            candidate,
            suite_gates,
            incumbent=incumbent,
            preset=suite_preset,
            tolerance=suite_tolerance,
        )
        for suite in suites:
            reasons.extend(suite.reasons)
    return GateResult(
        passed=not reasons,
        macro_f1=report.macro_f1,
        weighted_f1=report.weighted_f1,
        agreement=agreement,
        min_macro_f1=min_macro_f1,
        min_agreement=min_agreement,
        n_eval_tables=len(eval_tables),
        reasons=reasons,
        suites=suites,
    )
