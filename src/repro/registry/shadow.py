"""Shadow/canary evaluation: mirror live traffic to a candidate model.

Before a retrained model takes live traffic, it should be judged on the
*actual* request distribution, not only on a held-out eval set.  The
:class:`ShadowEvaluator` does that without touching the hot path: for a
configurable fraction of served requests, the table plus the primary
model's labels are handed to a single background thread, which runs the
candidate model and accumulates agreement/disagreement statistics —
overall column agreement rate plus a per-type divergence table showing
*which* predictions the candidate changes.

The hot path pays one pseudo-random draw and (for sampled requests) one
executor submission; candidate inference happens entirely on the shadow
thread against the candidate's own :class:`~repro.serving.Predictor`
(separate caches, separate model).  When the shadow thread falls behind,
excess samples are *dropped* (counted, never queued unboundedly) so a slow
candidate can never build a backlog that outlives the traffic spike.

The accumulated :meth:`snapshot` is surfaced by the serving server under
the ``shadow`` key of ``GET /metrics`` and is the live counterpart of the
offline agreement check in :mod:`repro.registry.gates`.
"""

from __future__ import annotations

import random
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.tables import Table

__all__ = ["ShadowEvaluator"]

#: Bound on distinct (primary, candidate) divergence pairs kept; beyond it
#: further novel pairs are folded into an overflow bucket.
MAX_DIVERGENCE_PAIRS = 256


class ShadowEvaluator:
    """Mirror a fraction of live requests to a candidate model, off hot path.

    Parameters
    ----------
    candidate:
        Any object with ``predict_table(table) -> list[str]`` — normally a
        :class:`~repro.serving.Predictor` over the candidate version.
    fraction:
        Probability that a served request is mirrored (0.0 disables
        sampling but keeps the evaluator attachable).
    version:
        Candidate version tag, echoed in :meth:`snapshot`.
    max_pending:
        Bound on mirrored requests waiting for the shadow thread; beyond it
        samples are dropped (and counted) instead of queued.
    seed:
        Seed of the sampling RNG (deterministic tests).

    Examples:
        >>> from repro.tables import Column, Table
        >>> class Flip:
        ...     def predict_table(self, table):
        ...         return ["b"] * table.n_columns
        >>> shadow = ShadowEvaluator(Flip(), fraction=1.0, version="v0002")
        >>> table = Table(columns=[Column(values=["x"]), Column(values=["y"])])
        >>> shadow.submit(table, ["a", "b"])
        True
        >>> shadow.close()          # waits for the shadow thread to finish
        >>> snap = shadow.snapshot()
        >>> (snap["mirrored"], snap["columns_compared"], snap["columns_agreed"])
        (1, 2, 1)
        >>> snap["divergence"]
        {'a->b': 1}
    """

    def __init__(
        self,
        candidate,
        fraction: float = 0.1,
        version: str | None = None,
        max_pending: int = 64,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.candidate = candidate
        self.fraction = fraction
        self.version = version
        self.max_pending = max_pending
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._executor: ThreadPoolExecutor | None = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="shadow-eval"
        )
        self._pending = 0
        # Accumulated statistics (all guarded by _lock).
        self._sampled = 0
        self._skipped = 0
        self._dropped = 0
        self._completed = 0
        self._errors = 0
        self._tables_compared = 0
        self._columns_compared = 0
        self._columns_agreed = 0
        self._tables_identical = 0
        self._divergence: dict[str, int] = {}

    # ------------------------------------------------------------- hot path

    def submit(self, table: Table, primary_labels: list[str]) -> bool:
        """Maybe mirror one served request; never blocks on the candidate.

        Returns True when the request was sampled and handed to the shadow
        thread.  Thread-safe; called from the serving request handlers.
        """
        if self._rng.random() >= self.fraction:
            with self._lock:
                self._skipped += 1
            return False
        with self._lock:
            if self._executor is None or self._pending >= self.max_pending:
                self._dropped += 1
                return False
            self._pending += 1
            self._sampled += 1
            executor = self._executor
        executor.submit(self._evaluate, table, list(primary_labels))
        return True

    # -------------------------------------------------------- shadow thread

    def _evaluate(self, table: Table, primary_labels: list[str]) -> None:
        try:
            candidate_labels = self.candidate.predict_table(table)
        except Exception:
            with self._lock:
                self._pending -= 1
                self._errors += 1
            return
        agreed = sum(
            1 for p, c in zip(primary_labels, candidate_labels) if p == c
        )
        compared = min(len(primary_labels), len(candidate_labels))
        with self._lock:
            self._pending -= 1
            self._completed += 1
            self._tables_compared += 1
            self._columns_compared += compared
            self._columns_agreed += agreed
            if agreed == compared:
                self._tables_identical += 1
            for p, c in zip(primary_labels, candidate_labels):
                if p == c:
                    continue
                key = f"{p}->{c}"
                if key not in self._divergence and (
                    len(self._divergence) >= MAX_DIVERGENCE_PAIRS
                ):
                    key = "...->..."
                self._divergence[key] = self._divergence.get(key, 0) + 1

    # ------------------------------------------------------------- reporting

    @property
    def agreement_rate(self) -> float:
        """Fraction of compared columns where candidate == primary."""
        with self._lock:
            if self._columns_compared == 0:
                return 1.0
            return self._columns_agreed / self._columns_compared

    def snapshot(self) -> dict:
        """JSON-friendly statistics (the ``shadow`` key of ``/metrics``)."""
        with self._lock:
            compared = self._columns_compared
            divergence = dict(
                sorted(
                    self._divergence.items(), key=lambda item: -item[1]
                )
            )
            return {
                "version": self.version,
                "fraction": self.fraction,
                "mirrored": self._sampled,
                "skipped": self._skipped,
                "dropped": self._dropped,
                "pending": self._pending,
                "completed": self._completed,
                "errors": self._errors,
                "tables_compared": self._tables_compared,
                "tables_identical": self._tables_identical,
                "columns_compared": compared,
                "columns_agreed": self._columns_agreed,
                "agreement_rate": (
                    self._columns_agreed / compared if compared else 1.0
                ),
                "divergence": divergence,
            }

    def close(self) -> None:
        """Stop sampling, finish in-flight shadow work, release the thread."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)
        close = getattr(self.candidate, "close", None)
        if close is not None:
            close()
