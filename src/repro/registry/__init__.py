"""Model registry: versioned lifecycle management for serving (PR 5).

The serving stack (PRs 1–4) made one trained model cheap to serve; this
package makes *which* model serves a managed, observable, reversible
decision.  HTAP systems isolate the update path from the query path so
neither blocks the other — the same split applied here means training,
publication and promotion proceed concurrently with prediction traffic:

* :class:`~repro.registry.store.ModelRegistry` — on-disk store of
  immutable, versioned bundles with lineage, integrity checks, atomic
  ``publish`` / ``promote`` / ``rollback`` (every transition is one
  filesystem rename) and retention GC,
* :class:`~repro.registry.shadow.ShadowEvaluator` — mirrors a fraction of
  live requests to a candidate version off the hot path and accumulates
  agreement / per-type divergence statistics into ``/metrics``,
* :mod:`~repro.registry.gates` — quantitative promotion gates (held-out
  macro-F1, incumbent agreement) recorded with every promotion,
* :class:`~repro.registry.watch.RegistryWatcher` — promotion-pointer
  polling that lets a running server hot-swap on promote, no restart.

See ``docs/registry.md`` for the layout specification, the promotion
gates, and the rollback runbook.
"""

from repro.registry.store import (
    CURRENT_NAME,
    GATE_LOG_NAME,
    VERSION_MANIFEST_NAME,
    ModelRegistry,
    RegistryError,
    VersionInfo,
    bundle_fingerprint,
)
from repro.registry.shadow import ShadowEvaluator
from repro.registry.gates import (
    DEFAULT_GATE_MIN_AGREEMENT,
    DEFAULT_GATE_MIN_F1,
    DEFAULT_SUITE_GATE_MIN_F1,
    DEFAULT_SUITE_REGRESSION_TOLERANCE,
    GateResult,
    SuiteGate,
    SuiteGateResult,
    holdout_report,
    load_eval_tables,
    parse_suite_gate,
    replay_agreement,
    run_gate,
    run_suite_gates,
)
from repro.registry.watch import DEFAULT_WATCH_INTERVAL, RegistryWatcher

__all__ = [
    "CURRENT_NAME",
    "GATE_LOG_NAME",
    "VERSION_MANIFEST_NAME",
    "ModelRegistry",
    "RegistryError",
    "VersionInfo",
    "bundle_fingerprint",
    "ShadowEvaluator",
    "DEFAULT_GATE_MIN_AGREEMENT",
    "DEFAULT_GATE_MIN_F1",
    "DEFAULT_SUITE_GATE_MIN_F1",
    "DEFAULT_SUITE_REGRESSION_TOLERANCE",
    "DEFAULT_WATCH_INTERVAL",
    "GateResult",
    "SuiteGate",
    "SuiteGateResult",
    "holdout_report",
    "load_eval_tables",
    "parse_suite_gate",
    "replay_agreement",
    "run_gate",
    "run_suite_gates",
    "RegistryWatcher",
]
