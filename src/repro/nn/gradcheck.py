"""Numerical gradient checking utilities (used by the test-suite)."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.layers import Layer

__all__ = ["numerical_gradient", "check_layer_gradients"]


def numerical_gradient(
    function: Callable[[np.ndarray], float],
    point: np.ndarray,
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Central-difference numerical gradient of a scalar function."""
    point = np.asarray(point, dtype=np.float64)
    grad = np.zeros_like(point)
    flat = point.ravel()
    grad_flat = grad.ravel()
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        upper = function(point)
        flat[index] = original - epsilon
        lower = function(point)
        flat[index] = original
        grad_flat[index] = (upper - lower) / (2 * epsilon)
    return grad


def check_layer_gradients(
    layer: Layer,
    inputs: np.ndarray,
    epsilon: float = 1e-6,
) -> tuple[float, dict[str, float]]:
    """Compare analytic and numerical gradients of a layer.

    The scalar objective is ``0.5 * sum(output ** 2)``, whose gradient with
    respect to the output is the output itself.  Returns the maximum relative
    error for the input gradient and for each parameter.
    """
    inputs = np.asarray(inputs, dtype=np.float64)

    def objective_wrt_input(x: np.ndarray) -> float:
        output = layer.forward(x, training=False)
        return 0.5 * float((output ** 2).sum())

    output = layer.forward(inputs, training=False)
    for parameter in layer.parameters():
        parameter.zero_grad()
    analytic_input_grad = layer.backward(output)
    numeric_input_grad = numerical_gradient(objective_wrt_input, inputs.copy(), epsilon)
    input_error = _relative_error(analytic_input_grad, numeric_input_grad)

    parameter_errors: dict[str, float] = {}
    for parameter in layer.parameters():
        analytic = parameter.grad.copy()

        def objective_wrt_param(values: np.ndarray, parameter=parameter) -> float:
            original = parameter.data
            parameter.data = values
            output = layer.forward(inputs, training=False)
            parameter.data = original
            return 0.5 * float((output ** 2).sum())

        numeric = numerical_gradient(objective_wrt_param, parameter.data.copy(), epsilon)
        parameter_errors[parameter.name] = _relative_error(analytic, numeric)
    return input_error, parameter_errors


def _relative_error(a: np.ndarray, b: np.ndarray) -> float:
    numerator = np.abs(a - b).max() if a.size else 0.0
    denominator = max(np.abs(a).max() if a.size else 0.0, np.abs(b).max() if b.size else 0.0, 1e-8)
    return float(numerator / denominator)
