"""Neural network layers with explicit forward/backward passes.

Every layer operates on 2-D arrays of shape ``(batch, features)`` and caches
whatever the backward pass needs during ``forward``.  Layers expose their
trainable parameters through :meth:`Layer.parameters`.
"""

from __future__ import annotations

import numpy as np

from repro.nn.parameter import Parameter

__all__ = ["Layer", "Linear", "ReLU", "Tanh", "Dropout", "BatchNorm1d"]


class Layer:
    """Base class for all layers."""

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output, caching values needed by backward."""
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate ``grad_output``; accumulates parameter gradients."""
        raise NotImplementedError

    def parameters(self) -> list[Parameter]:
        """Trainable parameters of the layer."""
        return []

    def state_dict(self) -> dict[str, np.ndarray]:
        """Serialisable state (parameters plus running statistics)."""
        return {p.name: p.data.copy() for p in self.parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore state produced by :meth:`state_dict`."""
        for parameter in self.parameters():
            if parameter.name in state:
                parameter.data = np.asarray(state[parameter.name], dtype=np.float64)

    def __call__(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(inputs, training=training)


class Linear(Layer):
    """Fully connected layer: ``y = x W + b`` with He initialisation."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator | None = None, name: str = "linear") -> None:
        if in_features < 1 or out_features < 1:
            raise ValueError("feature sizes must be positive")
        rng = rng or np.random.default_rng(0)
        scale = np.sqrt(2.0 / in_features)
        self.weight = Parameter(
            rng.normal(scale=scale, size=(in_features, out_features)),
            name=f"{name}.weight",
        )
        self.bias = Parameter(np.zeros(out_features), name=f"{name}.bias")
        self._inputs: np.ndarray | None = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        self._inputs = inputs
        return inputs @ self.weight.data + self.bias.data

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        assert self._inputs is not None, "forward must be called before backward"
        self.weight.grad += self._inputs.T @ grad_output
        self.bias.grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.data.T

    def parameters(self) -> list[Parameter]:
        return [self.weight, self.bias]


class ReLU(Layer):
    """Rectified linear unit."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        self._mask = inputs > 0
        return inputs * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        assert self._mask is not None
        return grad_output * self._mask


class Tanh(Layer):
    """Hyperbolic tangent activation."""

    def __init__(self) -> None:
        self._output: np.ndarray | None = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        self._output = np.tanh(inputs)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        assert self._output is not None
        return grad_output * (1.0 - self._output ** 2)


class Dropout(Layer):
    """Inverted dropout: active only during training."""

    def __init__(self, rate: float = 0.3, rng: np.random.Generator | None = None) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self._rng = rng or np.random.default_rng(0)
        self._mask: np.ndarray | None = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return inputs
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(inputs.shape) < keep) / keep
        return inputs * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask


class BatchNorm1d(Layer):
    """Batch normalisation over the batch dimension with running statistics."""

    def __init__(self, n_features: int, momentum: float = 0.1, eps: float = 1e-5, name: str = "bn") -> None:
        self.gamma = Parameter(np.ones(n_features), name=f"{name}.gamma")
        self.beta = Parameter(np.zeros(n_features), name=f"{name}.beta")
        self.momentum = momentum
        self.eps = eps
        self.running_mean = np.zeros(n_features)
        self.running_var = np.ones(n_features)
        self._name = name
        self._cache: tuple | None = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        if training and inputs.shape[0] > 1:
            mean = inputs.mean(axis=0)
            var = inputs.var(axis=0)
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * var
            )
        else:
            mean = self.running_mean
            var = self.running_var
        std = np.sqrt(var + self.eps)
        normalized = (inputs - mean) / std
        self._cache = (normalized, std, training and inputs.shape[0] > 1)
        return self.gamma.data * normalized + self.beta.data

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        assert self._cache is not None
        normalized, std, used_batch_stats = self._cache
        self.gamma.grad += (grad_output * normalized).sum(axis=0)
        self.beta.grad += grad_output.sum(axis=0)
        grad_normalized = grad_output * self.gamma.data
        if not used_batch_stats:
            return grad_normalized / std
        return (
            grad_normalized
            - grad_normalized.mean(axis=0)
            - normalized * (grad_normalized * normalized).mean(axis=0)
        ) / std

    def parameters(self) -> list[Parameter]:
        return [self.gamma, self.beta]

    def state_dict(self) -> dict[str, np.ndarray]:
        state = super().state_dict()
        state[f"{self._name}.running_mean"] = self.running_mean.copy()
        state[f"{self._name}.running_var"] = self.running_var.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        super().load_state_dict(state)
        if f"{self._name}.running_mean" in state:
            self.running_mean = np.asarray(state[f"{self._name}.running_mean"], dtype=np.float64)
        if f"{self._name}.running_var" in state:
            self.running_var = np.asarray(state[f"{self._name}.running_var"], dtype=np.float64)
