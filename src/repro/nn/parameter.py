"""Trainable parameter container."""

from __future__ import annotations

import numpy as np

__all__ = ["Parameter"]


class Parameter:
    """A named numpy array with an accumulated gradient."""

    def __init__(self, data: np.ndarray, name: str = "param") -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero."""
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"
