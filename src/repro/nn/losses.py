"""Softmax, log-softmax and cross-entropy loss."""

from __future__ import annotations

import numpy as np

__all__ = ["softmax", "log_softmax", "cross_entropy_loss"]


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    logits = np.asarray(logits, dtype=np.float64)
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax."""
    logits = np.asarray(logits, dtype=np.float64)
    shifted = logits - logits.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


def cross_entropy_loss(
    logits: np.ndarray,
    targets: np.ndarray,
    class_weights: np.ndarray | None = None,
) -> tuple[float, np.ndarray]:
    """Mean cross-entropy loss and its gradient with respect to the logits.

    Parameters
    ----------
    logits:
        ``(batch, n_classes)`` unnormalised scores.
    targets:
        ``(batch,)`` integer class indices.
    class_weights:
        Optional per-class weights (used to counteract class imbalance).

    Returns
    -------
    (loss, grad):
        The scalar loss and the gradient of the same shape as ``logits``.
    """
    logits = np.asarray(logits, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError("logits must be 2-D (batch, n_classes)")
    if targets.shape[0] != logits.shape[0]:
        raise ValueError("targets and logits batch sizes differ")
    batch = logits.shape[0]
    log_probs = log_softmax(logits, axis=1)
    picked = log_probs[np.arange(batch), targets]
    if class_weights is not None:
        weights = np.asarray(class_weights, dtype=np.float64)[targets]
    else:
        weights = np.ones(batch, dtype=np.float64)
    total_weight = max(weights.sum(), 1e-12)
    loss = float(-(weights * picked).sum() / total_weight)

    probs = np.exp(log_probs)
    grad = probs * weights[:, None]
    grad[np.arange(batch), targets] -= weights
    grad /= total_weight
    return loss, grad
