"""Layer composition."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Layer
from repro.nn.parameter import Parameter

__all__ = ["Sequential"]


class Sequential(Layer):
    """A stack of layers applied in order."""

    def __init__(self, *layers: Layer) -> None:
        self.layers = list(layers)

    def add(self, layer: Layer) -> "Sequential":
        """Append a layer."""
        self.layers.append(layer)
        return self

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        output = inputs
        for layer in self.layers:
            output = layer.forward(output, training=training)
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameters(self) -> list[Parameter]:
        parameters: list[Parameter] = []
        for layer in self.layers:
            parameters.extend(layer.parameters())
        return parameters

    def state_dict(self) -> dict[str, np.ndarray]:
        state: dict[str, np.ndarray] = {}
        for index, layer in enumerate(self.layers):
            for key, value in layer.state_dict().items():
                state[f"{index}:{key}"] = value
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        for index, layer in enumerate(self.layers):
            prefix = f"{index}:"
            layer_state = {
                key[len(prefix):]: value
                for key, value in state.items()
                if key.startswith(prefix)
            }
            layer.load_state_dict(layer_state)
