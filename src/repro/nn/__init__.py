"""A small from-scratch neural network library (numpy only).

This replaces PyTorch for the reproduction: layers implement explicit
``forward``/``backward`` passes, :class:`~repro.nn.network.Sequential`
composes them, and the optimisers update :class:`~repro.nn.parameter.Parameter`
objects in place.  The library is deliberately small but complete enough for
the Sherlock/Sato architectures: Linear, ReLU, Dropout, BatchNorm1d, softmax
cross-entropy, SGD and Adam with decoupled weight decay, plus serialisation
and gradient-checking helpers used by the test-suite.
"""

from repro.nn.parameter import Parameter
from repro.nn.layers import BatchNorm1d, Dropout, Linear, ReLU, Tanh
from repro.nn.losses import cross_entropy_loss, log_softmax, softmax
from repro.nn.network import Sequential
from repro.nn.optim import SGD, Adam
from repro.nn.gradcheck import numerical_gradient, check_layer_gradients

__all__ = [
    "Parameter",
    "Linear",
    "ReLU",
    "Tanh",
    "Dropout",
    "BatchNorm1d",
    "Sequential",
    "softmax",
    "log_softmax",
    "cross_entropy_loss",
    "SGD",
    "Adam",
    "numerical_gradient",
    "check_layer_gradients",
]
