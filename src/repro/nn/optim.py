"""Optimisers: SGD with momentum and Adam with decoupled weight decay."""

from __future__ import annotations

import numpy as np

from repro.nn.parameter import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimiser over a list of parameters."""

    def __init__(self, parameters: list[Parameter], learning_rate: float) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.parameters = list(parameters)
        self.learning_rate = learning_rate

    def zero_grad(self) -> None:
        """Reset every parameter's gradient."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        """Apply one update using the accumulated gradients."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: list[Parameter],
        learning_rate: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, learning_rate)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for parameter, velocity in zip(self.parameters, self._velocity):
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            velocity *= self.momentum
            velocity -= self.learning_rate * grad
            parameter.data += velocity


class Adam(Optimizer):
    """Adam optimiser with decoupled weight decay (AdamW-style).

    The paper trains the Base network with Adam at learning rate 1e-4 and
    weight decay 1e-4, and the CRF layer with Adam at learning rate 1e-2.
    """

    def __init__(
        self,
        parameters: list[Parameter],
        learning_rate: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, learning_rate)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        beta1, beta2 = self.betas
        bias_correction1 = 1.0 - beta1 ** self._step
        bias_correction2 = 1.0 - beta2 ** self._step
        for parameter, m, v in zip(self.parameters, self._m, self._v):
            grad = parameter.grad
            m *= beta1
            m += (1.0 - beta1) * grad
            v *= beta2
            v += (1.0 - beta2) * grad ** 2
            m_hat = m / bias_correction1
            v_hat = v / bias_correction2
            update = m_hat / (np.sqrt(v_hat) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * parameter.data
            parameter.data -= self.learning_rate * update
