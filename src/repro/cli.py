"""Command line interface.

Subcommands::

    repro-sato generate  --n-tables 500 --out corpus.jsonl
    repro-sato generate  --spec specs/unicode_heavy.json --out suite.jsonl \
                         --split-out suite.split.json
    repro-sato train     --corpus corpus.jsonl --out model/
    repro-sato predict   --model model/ --csv mytable.csv \
                         --feature-backend vectorized --workers 4
    repro-sato annotate  data/ --model model/ --out schemas.jsonl
    repro-sato annotate  warehouse.sqlite --registry registry/ \
                         --model-name sato --chunk-rows 8192
    repro-sato serve     --model model/ --port 8080 \
                         --max-batch-size 32 --max-wait-ms 2 \
                         --model-backend batched
    repro-sato serve     --registry registry/ --model-name sato \
                         --watch-interval 2
    repro-sato profile   --model model/ --suite clean_baseline \
                         --suite-preset tiny --json profile_report.json
    repro-sato evaluate  --corpus corpus.jsonl --variant Sato --k 3
    repro-sato evaluate  --model model/ --corpus eval.jsonl
    repro-sato evaluate  --model model/ --suite all --suite-preset tiny
    repro-sato suites    --json
    repro-sato registry  publish --registry registry/ --name sato --model model/
    repro-sato registry  promote --registry registry/ --name sato \
                         --version v0002 --gate --eval-set eval.jsonl \
                         --suite unicode_heavy --suite dirty_columns:0.1
    repro-sato registry  rollback --registry registry/ --name sato
    repro-sato registry  list --registry registry/
    repro-sato registry  gc --registry registry/ --name sato --keep 2
    repro-sato report    --preset tiny

``generate`` writes a synthetic corpus — either from the knob-based
generator or, with ``--spec``, deterministically from a declarative corpus
spec (``docs/corpus_spec.md``).  ``train`` fits a model variant on a
corpus and saves it as an artifact bundle, after which ``predict --model``
loads the bundle and serves per-column predictions for CSV tables without
retraining.  When ``--model`` is absent, ``predict --corpus`` falls back to
the legacy retrain-per-call behaviour.  ``serve`` exposes a bundle — or, in
registry mode, the *promoted version* of a registered model, hot-swapping
on promotion — over HTTP with micro-batched online inference (see
``docs/http_api.md`` and ``docs/operations.md``).  ``evaluate`` either
cross-validates one model variant (legacy), evaluates a saved bundle on a
held-out corpus with ``--model``, or scores a bundle on shipped hard-case
suites with ``--suite``.  ``annotate`` bulk-annotates external
sources (CSV/NDJSON/SQLite/JSONL files, directories of them, Parquet with
``pyarrow``) as typed schemas on JSONL output, streaming every source in
bounded-memory chunks (``docs/ingest.md``); corrupt sources are reported
on stderr and skipped, and the exit code is non-zero if any source
failed.  ``profile`` replays a shipped suite
through a saved bundle under the tracing instrumentation and prints a
per-stage flame table (``docs/observability.md``).  ``suites`` lists the
shipped suites and their
difficulty manifests.  ``registry`` manages the versioned model lifecycle
(``docs/registry.md``); gated promotions may add per-suite criteria via
``--suite`` and every gate decision is appended to the model's
``GATE_LOG.json``.  ``report`` regenerates the Table 1 summary for a
configuration preset.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Sequence

from repro.corpus import CorpusConfig, CorpusGenerator
from repro.corpus.suites import SUITE_PRESETS
from repro.evaluation import evaluate_model_cv
from repro.experiments import ExperimentConfig, reporting, run_main_results
from repro.experiments.pipeline import make_model_factories
from repro.registry.gates import (
    DEFAULT_GATE_MIN_AGREEMENT,
    DEFAULT_GATE_MIN_F1,
    DEFAULT_SUITE_REGRESSION_TOLERANCE,
)
from repro.registry.watch import DEFAULT_WATCH_INTERVAL
from repro.serving import BundleFormatError, Predictor, save_model
from repro.serving.scheduler import (
    DEFAULT_MAX_BATCH_SIZE,
    DEFAULT_MAX_QUEUE,
    DEFAULT_MAX_WAIT_MS,
)
from repro.tables import table_from_csv, tables_from_jsonl, tables_to_jsonl

__all__ = ["main", "build_parser"]

MODEL_VARIANTS = ("Base", "Sato", "SatoNoStruct", "SatoNoTopic")


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-sato",
        description="Sato reproduction: semantic type detection in tables",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a synthetic corpus")
    generate.add_argument("--n-tables", type=int, default=500)
    generate.add_argument("--seed", type=int, default=13)
    generate.add_argument("--singleton-rate", type=float, default=0.4)
    generate.add_argument(
        "--spec",
        help="declarative corpus spec (JSON/YAML): build this spec "
        "deterministically instead of using the knob-based generator",
    )
    generate.add_argument(
        "--split-out",
        help="with --spec: also write the spec's train/test split "
        "assignment as JSON",
    )
    generate.add_argument("--out", required=True, help="output JSONL path")

    train = subparsers.add_parser(
        "train", help="train a model on a corpus and save it as a bundle"
    )
    train.add_argument("--corpus", required=True, help="training corpus JSONL path")
    train.add_argument("--out", required=True, help="output bundle directory")
    train.add_argument("--variant", choices=MODEL_VARIANTS, default="Sato")
    train.add_argument("--epochs", type=int, default=15)
    _add_backend_arguments(train)

    evaluate = subparsers.add_parser(
        "evaluate",
        help="evaluate a saved bundle on a held-out corpus, or cross-validate a variant",
    )
    evaluate.add_argument(
        "--model",
        help="saved model bundle directory: evaluate it on --corpus as a "
        "held-out set (no retraining)",
    )
    evaluate.add_argument(
        "--corpus",
        help="corpus JSONL path (the eval set with --model, the CV corpus "
        "without; not used with --suite)",
    )
    evaluate.add_argument(
        "--suite",
        help="score --model on a shipped hard-case suite by name, or 'all' "
        "(see `repro-sato suites`); replaces --corpus",
    )
    evaluate.add_argument(
        "--suite-preset",
        choices=sorted(SUITE_PRESETS),
        default="tiny",
        help="suite size preset: 'tiny' for CI-speed runs, 'full' as specced",
    )
    evaluate.add_argument(
        "--json",
        dest="json_out",
        help="with --suite: also write the per-suite reports as JSON",
    )
    evaluate.add_argument("--variant", choices=MODEL_VARIANTS, default="Sato")
    evaluate.add_argument("--k", type=int, default=3)
    evaluate.add_argument("--multi-column-only", action="store_true")
    evaluate.add_argument("--epochs", type=int, default=15)

    suites = subparsers.add_parser(
        "suites", help="list the shipped hard-case eval suites"
    )
    suites.add_argument(
        "--json",
        dest="json_out",
        action="store_true",
        help="emit the full difficulty manifests as JSON",
    )

    predict = subparsers.add_parser("predict", help="predict column types of CSV tables")
    predict.add_argument(
        "--model", help="saved model bundle directory (serve without retraining)"
    )
    predict.add_argument(
        "--corpus",
        help="training corpus JSONL path (legacy fallback: retrains per call)",
    )
    predict.add_argument(
        "--csv", required=True, nargs="+", help="CSV table(s) to annotate"
    )
    predict.add_argument(
        "--variant",
        choices=MODEL_VARIANTS,
        default=None,
        help="variant for the --corpus fallback (default Sato); bundles fix theirs at train time",
    )
    predict.add_argument(
        "--epochs",
        type=int,
        default=None,
        help="epochs for the --corpus fallback (default 15)",
    )
    _add_backend_arguments(predict)
    _add_model_backend_argument(predict)
    _add_sketch_arguments(predict)

    annotate = subparsers.add_parser(
        "annotate",
        help="bulk-annotate data sources (files, directories, SQLite "
        "databases) as typed schemas, streaming in bounded memory",
    )
    annotate.add_argument(
        "sources",
        nargs="+",
        metavar="SOURCE",
        help="source files, directories or SQLite databases",
    )
    annotate_model = annotate.add_mutually_exclusive_group(required=True)
    annotate_model.add_argument("--model", help="saved model bundle directory")
    annotate_model.add_argument(
        "--registry",
        help="registry root: annotate with the promoted version of --model-name",
    )
    annotate.add_argument(
        "--model-name", help="registered model name (registry mode)"
    )
    annotate.add_argument(
        "--model-version",
        help="pin a registry version (default: the promoted one)",
    )
    annotate.add_argument(
        "--out",
        default="-",
        help="output JSONL path, one record per ingested table "
        "(default '-': stdout)",
    )
    annotate.add_argument(
        "--chunk-rows",
        type=int,
        default=None,
        help="rows per streamed chunk (default: the experiment config's "
        "ingest_chunk_rows)",
    )
    annotate.add_argument(
        "--format",
        default=None,
        help="force a registered source format (csv, ndjson, sqlite, "
        "tables-jsonl, parquet) instead of dispatching on file suffix",
    )
    _add_sketch_arguments(annotate)
    annotate.add_argument(
        "--sketch-gc",
        action="store_true",
        help="after annotating, compact the sketch-store logs down to the "
        "live LRU entries and purge sections from stale configurations",
    )

    serve = subparsers.add_parser(
        "serve",
        help="serve a model bundle (or a registry's promoted version) over "
        "HTTP with micro-batching and zero-downtime hot swap",
    )
    serve_source = serve.add_mutually_exclusive_group(required=True)
    serve_source.add_argument("--model", help="saved model bundle directory")
    serve_source.add_argument(
        "--registry",
        help="registry root: serve the promoted version of --model-name and "
        "enable admin reload/shadow endpoints",
    )
    serve.add_argument(
        "--model-name",
        help="registered model name to serve (registry mode)",
    )
    serve.add_argument(
        "--model-version",
        help="pin a registry version instead of the promoted one "
        "(disables promotion watching; admin reloads stay available)",
    )
    serve.add_argument(
        "--watch-interval",
        type=float,
        default=DEFAULT_WATCH_INTERVAL,
        help="seconds between promotion-pointer polls in registry mode "
        "(0 disables watching; reloads stay available via the admin API)",
    )
    serve.add_argument(
        "--shadow-version",
        help="start mirroring traffic to this registry version immediately",
    )
    serve.add_argument(
        "--shadow-fraction",
        type=float,
        default=0.1,
        help="fraction of requests mirrored to the shadow candidate",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument(
        "--max-batch-size",
        type=int,
        default=DEFAULT_MAX_BATCH_SIZE,
        help="largest number of tables dispatched in one model call",
    )
    serve.add_argument(
        "--max-wait-ms",
        type=float,
        default=DEFAULT_MAX_WAIT_MS,
        help="how long a request may wait for batch companions",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=DEFAULT_MAX_QUEUE,
        help="admission bound on pending requests (excess gets HTTP 429)",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=4096,
        help="capacity of the column-feature LRU cache",
    )
    serve.add_argument(
        "--fleet-workers",
        type=int,
        default=0,
        help="serve through N prefork worker processes sharing one "
        "in-memory copy of the model weights (0 = single process)",
    )
    serve.add_argument(
        "--worker-queue",
        type=int,
        help="fleet mode: per-worker in-flight bound before a request "
        "spills to the next worker on the routing ring "
        "(default: max-queue / fleet-workers)",
    )
    serve.add_argument(
        "--log-format",
        choices=("text", "json"),
        default="text",
        help="request logging: terse text on stderr (default) or one "
        "structured JSON line per request (trace id, outcome, timings)",
    )
    _add_backend_arguments(serve)
    _add_model_backend_argument(serve)
    _add_sketch_arguments(serve)

    profile = subparsers.add_parser(
        "profile",
        help="replay a suite through a saved bundle and break wall time "
        "down per pipeline stage",
    )
    profile.add_argument(
        "--model", required=True, help="model bundle directory (from `train`)"
    )
    profile.add_argument(
        "--suite",
        default="clean_baseline",
        help="shipped corpus suite to replay (see `repro-sato suites`)",
    )
    profile.add_argument(
        "--suite-preset",
        choices=("tiny", "full"),
        default="tiny",
        help="suite size preset",
    )
    profile.add_argument(
        "--batch-size",
        type=int,
        default=8,
        help="tables per replayed request batch",
    )
    profile.add_argument(
        "--json",
        dest="json_out",
        default=None,
        help="also write the full profile report to this JSON file",
    )
    _add_backend_arguments(profile)
    _add_model_backend_argument(profile)

    registry = subparsers.add_parser(
        "registry",
        help="versioned model lifecycle: publish, promote (gated), rollback, gc",
    )
    registry_sub = registry.add_subparsers(dest="registry_command", required=True)

    publish = registry_sub.add_parser(
        "publish", help="publish a trained bundle as a new immutable version"
    )
    publish.add_argument("--registry", required=True, help="registry root directory")
    publish.add_argument("--name", required=True, help="registered model name")
    publish.add_argument(
        "--model", required=True, help="bundle directory to publish (from `train`)"
    )
    publish.add_argument(
        "--parent", help="lineage parent version (default: the promoted version)"
    )
    publish.add_argument(
        "--corpus-fingerprint", help="hash/identifier of the training corpus"
    )
    publish.add_argument(
        "--metric",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="train-time metric to record as lineage (repeatable)",
    )

    promote = registry_sub.add_parser(
        "promote", help="point live traffic at a published version (atomic)"
    )
    promote.add_argument("--registry", required=True)
    promote.add_argument("--name", required=True)
    promote.add_argument("--version", required=True)
    promote.add_argument(
        "--gate",
        action="store_true",
        help="refuse promotion unless the candidate clears the eval gates",
    )
    promote.add_argument(
        "--eval-set", help="held-out labelled corpus JSONL (required with --gate)"
    )
    promote.add_argument(
        "--min-f1",
        type=float,
        default=DEFAULT_GATE_MIN_F1,
        help="minimum held-out macro-F1 the candidate must reach",
    )
    promote.add_argument(
        "--min-agreement",
        type=float,
        default=DEFAULT_GATE_MIN_AGREEMENT,
        help="minimum column agreement with the incumbent (replay or --shadow-agreement)",
    )
    promote.add_argument(
        "--shadow-agreement",
        type=float,
        help="live shadow agreement rate measured by a serving instance "
        "(overrides the offline replay agreement)",
    )
    promote.add_argument(
        "--suite",
        action="append",
        default=[],
        metavar="NAME[:MIN_F1]",
        help="with --gate: also require the candidate to clear this "
        "hard-case suite (floor defaults to the suite's suggested_floor; "
        "repeatable)",
    )
    promote.add_argument(
        "--suite-preset",
        choices=sorted(SUITE_PRESETS),
        default="tiny",
        help="suite size preset used by the per-suite gates",
    )
    promote.add_argument(
        "--suite-tolerance",
        type=float,
        default=DEFAULT_SUITE_REGRESSION_TOLERANCE,
        help="how far a suite's macro-F1 may fall below the incumbent's",
    )

    rollback = registry_sub.add_parser(
        "rollback", help="re-promote the previously promoted version"
    )
    rollback.add_argument("--registry", required=True)
    rollback.add_argument("--name", required=True)

    registry_list = registry_sub.add_parser(
        "list", help="list registered models and their versions"
    )
    registry_list.add_argument("--registry", required=True)
    registry_list.add_argument("--name", help="limit to one registered name")

    gc = registry_sub.add_parser(
        "gc", help="delete old unpromoted versions and staging garbage"
    )
    gc.add_argument("--registry", required=True)
    gc.add_argument("--name", required=True)
    gc.add_argument(
        "--keep", type=int, default=2, help="newest unpromoted versions to keep"
    )

    report = subparsers.add_parser("report", help="regenerate the Table 1 summary")
    report.add_argument("--preset", choices=["tiny", "fast", "large"], default="tiny")
    return parser


def _add_backend_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--feature-backend",
        choices=("loop", "vectorized"),
        default="vectorized",
        help="featurization backend: vectorized array ops (default) or the "
        "per-value Python reference loop",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="shard featurization batches across N worker processes "
        "(vectorized backend only; 0 = in-process)",
    )


def _add_model_backend_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--model-backend",
        choices=("loop", "batched"),
        default="batched",
        help="batch inference backend: one padded/masked forward + Viterbi "
        "over the whole batch (default) or the per-table reference loop",
    )


def _add_sketch_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sketch-store",
        default=None,
        help="persistent column-sketch store directory: columns whose "
        "content fingerprint hits the store skip featurization with "
        "bit-identical output (single-process only)",
    )
    parser.add_argument(
        "--sketch-sample-rows",
        type=int,
        default=None,
        metavar="N",
        help="featurize sketch misses from each column's first N values "
        "only (bounded-sample accuracy-vs-speed dial for huge columns)",
    )


def _check_sketch_arguments(args: argparse.Namespace) -> int:
    if args.sketch_sample_rows is not None and args.sketch_sample_rows < 1:
        print("--sketch-sample-rows must be >= 1", file=sys.stderr)
        return 2
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.spec is not None:
        from repro.corpus import SpecError, build_corpus, load_spec

        try:
            spec = load_spec(args.spec)
        except (OSError, SpecError) as error:
            print(f"cannot load spec {args.spec}: {error}", file=sys.stderr)
            return 2
        bundle = build_corpus(spec)
        count = tables_to_jsonl(bundle.tables, args.out)
        if args.split_out is not None:
            with open(args.split_out, "w", encoding="utf-8") as handle:
                json.dump(bundle.split, handle, indent=2, sort_keys=True)
                handle.write("\n")
        print(
            f"wrote {count} tables to {args.out} "
            f"(spec {spec.name}, seed {spec.seed})"
        )
        return 0
    if args.split_out is not None:
        print("--split-out requires --spec", file=sys.stderr)
        return 2
    config = CorpusConfig(
        n_tables=args.n_tables, seed=args.seed, singleton_rate=args.singleton_rate
    )
    tables = CorpusGenerator(config).generate()
    count = tables_to_jsonl(tables, args.out)
    print(f"wrote {count} tables to {args.out}")
    return 0


def _experiment_config(epochs: int) -> ExperimentConfig:
    return ExperimentConfig(nn_epochs=epochs)


def _build_variant(variant: str, epochs: int):
    return make_model_factories(_experiment_config(epochs))[variant]()


def _cmd_train(args: argparse.Namespace) -> int:
    tables = tables_from_jsonl(args.corpus)
    model = _build_variant(args.variant, args.epochs)
    model.set_feature_backend(args.feature_backend, args.workers)
    started = time.perf_counter()
    model.fit(tables)
    elapsed = time.perf_counter() - started
    save_model(model, args.out)
    print(
        f"trained {model.name} on {len(tables)} tables in {elapsed:.1f}s; "
        f"bundle saved to {args.out}"
    )
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    if args.suite is not None:
        from repro.corpus.suites import available_suites
        from repro.evaluation.suites import evaluate_suites

        if args.model is None:
            print("--suite requires --model (a trained bundle)", file=sys.stderr)
            return 2
        if args.corpus is not None:
            print(
                "--suite and --corpus are mutually exclusive: a suite is "
                "its own eval set",
                file=sys.stderr,
            )
            return 2
        try:
            predictor = Predictor.from_bundle(args.model)
        except BundleFormatError as error:
            print(f"cannot load model bundle: {error}", file=sys.stderr)
            return 2
        names = None if args.suite == "all" else [args.suite]
        if names is not None and names[0] not in available_suites():
            print(
                f"unknown suite {args.suite!r} "
                f"(available: {', '.join(available_suites())})",
                file=sys.stderr,
            )
            return 2
        reports = evaluate_suites(predictor, names, preset=args.suite_preset)
        for name, report in sorted(reports.items()):
            print(
                f"{name:<18} macro F1={report.macro_f1:.3f} "
                f"weighted F1={report.weighted_f1:.3f} "
                f"accuracy={report.accuracy:.3f} "
                f"({report.n_tables} tables, {report.n_columns} columns, "
                f"{report.difficulty.get('expected', '?')})"
            )
        if args.json_out is not None:
            payload = {name: report.to_dict() for name, report in reports.items()}
            with open(args.json_out, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
        return 0
    if args.corpus is None:
        print("evaluate requires --corpus (or --suite with --model)", file=sys.stderr)
        return 2
    if args.model is not None:
        # Bundle path: load once, evaluate on the corpus as a held-out set.
        # No retraining — the seed-era behaviour of refitting per invocation
        # only applies to the legacy cross-validation path below.
        from repro.registry import holdout_report, load_eval_tables

        try:
            predictor = Predictor.from_bundle(args.model)
        except BundleFormatError as error:
            print(f"cannot load model bundle: {error}", file=sys.stderr)
            return 2
        try:
            tables = load_eval_tables(args.corpus)
        except (OSError, ValueError) as error:
            print(f"cannot load eval set {args.corpus}: {error}", file=sys.stderr)
            return 2
        if args.multi_column_only:
            tables = [t for t in tables if t.n_columns > 1]
        report = holdout_report(predictor, tables)
        print(
            f"{predictor.model.name} ({args.model}): "
            f"macro F1={report.macro_f1:.3f}, "
            f"weighted F1={report.weighted_f1:.3f}, "
            f"accuracy={report.accuracy:.3f} "
            f"on {len(tables)} held-out tables ({report.n_samples} columns)"
        )
        return 0
    tables = tables_from_jsonl(args.corpus)
    if args.multi_column_only:
        tables = [t for t in tables if t.n_columns > 1]
    factories = make_model_factories(_experiment_config(args.epochs))
    result = evaluate_model_cv(
        factories[args.variant], tables, k=args.k, model_name=args.variant
    )
    print(
        f"{args.variant}: macro F1={result.macro_f1:.3f} "
        f"(+/-{result.confidence_interval('macro'):.3f}), "
        f"weighted F1={result.weighted_f1:.3f} "
        f"(+/-{result.confidence_interval('weighted'):.3f})"
    )
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    if args.model is None and args.corpus is None:
        print(
            "predict requires --model (bundle) or --corpus (retrain fallback)",
            file=sys.stderr,
        )
        return 2
    if _check_sketch_arguments(args):
        return 2
    if args.model is not None:
        if args.corpus is not None:
            print(
                "--model and --corpus are mutually exclusive: a bundle is "
                "already trained, the corpus would be ignored",
                file=sys.stderr,
            )
            return 2
        if args.variant is not None or args.epochs is not None:
            print(
                "--variant/--epochs only apply to the --corpus retrain fallback; "
                "a bundle's variant is fixed at train time",
                file=sys.stderr,
            )
            return 2
        try:
            predictor = Predictor.from_bundle(
                args.model,
                feature_backend=args.feature_backend,
                workers=args.workers,
                model_backend=args.model_backend,
                sketch_store=args.sketch_store,
                sketch_sample_rows=args.sketch_sample_rows,
            )
        except BundleFormatError as error:
            print(f"cannot load model bundle: {error}", file=sys.stderr)
            return 2
    else:
        variant = "Sato" if args.variant is None else args.variant
        epochs = 15 if args.epochs is None else args.epochs
        model = _build_variant(variant, epochs)
        model.set_feature_backend(args.feature_backend, args.workers)
        model.fit(tables_from_jsonl(args.corpus))
        predictor = Predictor(
            model,
            model_backend=args.model_backend,
            sketch_store=args.sketch_store,
            sketch_sample_rows=args.sketch_sample_rows,
        )
    tables = [table_from_csv(path) for path in args.csv]
    predictions = predictor.predict_tables(tables)
    predictor.close()
    for path, table, labels in zip(args.csv, tables, predictions):
        if len(args.csv) > 1:
            print(f"# {path}")
        for index, (column, label) in enumerate(zip(table.columns, labels)):
            header = column.header or f"column {index}"
            print(f"{header:<24} -> {label}")
    return 0


def _cmd_annotate(args: argparse.Namespace) -> int:
    from repro.ingest import IngestError, StreamingAnnotator, discover_sources
    from repro.serving import load_model

    if args.chunk_rows is not None and args.chunk_rows < 1:
        print("--chunk-rows must be >= 1", file=sys.stderr)
        return 2
    if _check_sketch_arguments(args):
        return 2
    if args.sketch_gc and args.sketch_store is None:
        print("--sketch-gc requires --sketch-store", file=sys.stderr)
        return 2
    chunk_rows = (
        args.chunk_rows
        if args.chunk_rows is not None
        else ExperimentConfig().ingest_chunk_rows
    )
    if args.registry is not None:
        from repro.registry import ModelRegistry, RegistryError

        if args.model_name is None:
            print("--registry requires --model-name", file=sys.stderr)
            return 2
        try:
            model, _ = ModelRegistry(args.registry).load(
                args.model_name, args.model_version
            )
        except (RegistryError, BundleFormatError) as error:
            print(f"cannot load from registry: {error}", file=sys.stderr)
            return 2
    else:
        if args.model_name is not None or args.model_version is not None:
            print(
                "--model-name/--model-version require --registry", file=sys.stderr
            )
            return 2
        try:
            model = load_model(args.model)
        except BundleFormatError as error:
            print(f"cannot load model bundle: {error}", file=sys.stderr)
            return 2
    annotator = StreamingAnnotator(
        model,
        sketch_store=args.sketch_store,
        sample_rows=args.sketch_sample_rows,
    )

    # Resolve every source file up front: a missing path or unknown format
    # is reported once, and the remaining sources still get annotated
    # (partial output + non-zero exit).
    sources = []
    failures = 0
    for raw_path in args.sources:
        try:
            sources.extend(discover_sources(raw_path, args.format))
        except IngestError as error:
            print(f"annotate: {error}", file=sys.stderr)
            failures += 1

    handle = (
        sys.stdout if args.out == "-" else open(args.out, "w", encoding="utf-8")
    )
    annotated = 0
    try:
        for path, adapter in sources:
            try:
                for stream in adapter.streams(path, chunk_rows):
                    record = annotator.annotate_stream(stream)
                    handle.write(json.dumps(record, ensure_ascii=False))
                    handle.write("\n")
                    annotated += 1
            except IngestError as error:
                # One corrupt source must not sink the batch: report it,
                # keep whatever this file already produced, move on.
                print(f"annotate: {error}", file=sys.stderr)
                failures += 1
    finally:
        handle.flush()
        if handle is not sys.stdout:
            handle.close()
    if annotator.sketch_store is not None:
        stats = annotator.sketch_store.stats()
        if args.sketch_gc:
            summary = annotator.sketch_store.gc(purge_stale=True)
            print(
                f"sketch-gc: kept {summary['live_entries']} entr"
                f"{'y' if summary['live_entries'] == 1 else 'ies'} in "
                f"{summary['sections']} section(s), reclaimed "
                f"{summary['reclaimed_bytes']} bytes, purged "
                f"{summary['purged_files']} stale file(s)",
                file=sys.stderr,
            )
        print(
            f"sketch-store: {stats['hits']} hit(s), {stats['misses']} "
            f"miss(es)",
            file=sys.stderr,
        )
        annotator.close()
    print(
        f"annotated {annotated} table(s) from {len(sources)} source file(s)"
        + (f", {failures} failed" if failures else ""),
        file=sys.stderr,
    )
    return 1 if failures else 0


def _cmd_suites(args: argparse.Namespace) -> int:
    from repro.corpus.suites import available_suites, suite_manifest

    names = available_suites()
    if not names:
        print("no suites shipped (specs/ is empty)", file=sys.stderr)
        return 1
    if args.json_out:
        payload = {name: suite_manifest(name) for name in names}
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    for name in names:
        manifest = suite_manifest(name)
        difficulty = manifest.get("difficulty") or {}
        axes = ", ".join(difficulty.get("axes") or []) or "-"
        print(
            f"{name:<18} {difficulty.get('expected', '?'):<8} "
            f"floor={difficulty.get('suggested_floor', '-')}  axes: {axes}"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.serving.server import ServingServer

    from repro.registry import RegistryError
    from repro.serving.fleet import FleetError, ServingFleet

    if args.fleet_workers < 0:
        print("--fleet-workers must be >= 0", file=sys.stderr)
        return 2
    fleet_mode = args.fleet_workers > 0
    if _check_sketch_arguments(args):
        return 2
    if fleet_mode and (
        args.sketch_store is not None or args.sketch_sample_rows is not None
    ):
        # The store is single-writer: prefork workers appending to one
        # directory would interleave records.
        print(
            "--sketch-store/--sketch-sample-rows require a single-process "
            "server (prefork workers cannot share one store)",
            file=sys.stderr,
        )
        return 2

    registry = None
    shadow = None
    if args.registry is not None:
        from repro.registry import ModelRegistry, RegistryError, ShadowEvaluator

        if args.model_name is None:
            print("--registry requires --model-name", file=sys.stderr)
            return 2
        if not 0.0 <= args.shadow_fraction <= 1.0:
            print("--shadow-fraction must be within [0, 1]", file=sys.stderr)
            return 2
        registry = ModelRegistry(args.registry)
        if fleet_mode:
            predictor = None
        else:
            try:
                predictor = Predictor.from_registry(
                    registry,
                    args.model_name,
                    version=args.model_version,
                    cache_size=args.cache_size,
                    feature_backend=args.feature_backend,
                    workers=args.workers,
                    model_backend=args.model_backend,
                    sketch_store=args.sketch_store,
                    sketch_sample_rows=args.sketch_sample_rows,
                )
            except (RegistryError, BundleFormatError) as error:
                print(f"cannot load from registry: {error}", file=sys.stderr)
                return 2
        if args.shadow_version is not None:
            try:
                candidate = Predictor.from_registry(
                    registry, args.model_name, version=args.shadow_version
                )
            except (RegistryError, BundleFormatError) as error:
                print(f"cannot load shadow candidate: {error}", file=sys.stderr)
                return 2
            shadow = ShadowEvaluator(
                candidate,
                fraction=args.shadow_fraction,
                version=args.shadow_version,
            )
    else:
        if args.model_name or args.model_version or args.shadow_version:
            print(
                "--model-name/--model-version/--shadow-version require "
                "--registry",
                file=sys.stderr,
            )
            return 2
        if fleet_mode:
            predictor = None
        else:
            try:
                predictor = Predictor.from_bundle(
                    args.model,
                    cache_size=args.cache_size,
                    feature_backend=args.feature_backend,
                    workers=args.workers,
                    model_backend=args.model_backend,
                    sketch_store=args.sketch_store,
                    sketch_sample_rows=args.sketch_sample_rows,
                )
            except BundleFormatError as error:
                print(f"cannot load model bundle: {error}", file=sys.stderr)
                return 2

    if fleet_mode:
        # The fleet is both halves of the serving stack: the predictor
        # facade (model identity, promote/reload) and the batcher (request
        # routing across its worker processes).  Model loading happens
        # inside start(), once per worker, over one shared tensor store.
        predictor = ServingFleet(
            args.fleet_workers,
            bundle_path=args.model,
            registry=registry,
            model_name=args.model_name if registry is not None else None,
            model_version=args.model_version,
            cache_size=args.cache_size,
            feature_backend=args.feature_backend,
            model_backend=args.model_backend,
            max_batch_size=args.max_batch_size,
            max_wait_ms=args.max_wait_ms,
            max_queue=args.max_queue,
            worker_queue=args.worker_queue,
        )

    async def _serve() -> None:
        server = ServingServer(
            predictor,
            host=args.host,
            port=args.port,
            max_batch_size=args.max_batch_size,
            max_wait_ms=args.max_wait_ms,
            max_queue=args.max_queue,
            registry=registry,
            model_name=args.model_name if registry is not None else None,
            # A pinned --model-version must stay pinned: the watcher would
            # otherwise converge the server back to the promoted version.
            watch_interval=(
                args.watch_interval
                if registry is not None
                and args.model_version is None
                and args.watch_interval > 0
                else None
            ),
            bundle_path=args.model,
            shadow=shadow,
            batcher=predictor if fleet_mode else None,
            log_format=args.log_format,
        )
        await server.start()
        # Handle shutdown signals inside the loop: the drain then runs to
        # completion in the main task on every Python version, instead of
        # racing asyncio.run's teardown (which on 3.10 cancels all tasks,
        # dispatch loop included, dropping the queue mid-drain).
        loop = asyncio.get_running_loop()
        shutdown = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, shutdown.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX loops
                pass
        source = (
            f"{args.registry}:{args.model_name}@{predictor.model_version}"
            if registry is not None
            else args.model
        )
        fleet_note = (
            f", fleet_workers={args.fleet_workers}" if fleet_mode else ""
        )
        print(
            f"serving {source} on http://{args.host}:{server.port} "
            f"(max_batch_size={args.max_batch_size}, "
            f"max_wait_ms={args.max_wait_ms}, max_queue={args.max_queue}"
            f"{fleet_note})"
        )
        try:
            await shutdown.wait()
        finally:
            print("draining...", file=sys.stderr)
            await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass  # signal handler unavailable on this platform; exit plainly
    except (FleetError, RegistryError, BundleFormatError) as error:
        print(f"cannot start serving: {error}", file=sys.stderr)
        return 2
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.corpus.suites import build_suite
    from repro.obs import profile_predictor, render_flame

    if args.batch_size < 1:
        print("--batch-size must be >= 1", file=sys.stderr)
        return 2
    try:
        bundle = build_suite(args.suite, args.suite_preset)
    except (KeyError, ValueError) as error:
        print(f"cannot build suite: {error}", file=sys.stderr)
        return 2
    try:
        predictor = Predictor.from_bundle(
            args.model,
            feature_backend=args.feature_backend,
            workers=args.workers,
            model_backend=args.model_backend,
        )
    except BundleFormatError as error:
        print(f"cannot load model bundle: {error}", file=sys.stderr)
        return 2
    report = profile_predictor(
        predictor,
        bundle.tables,
        batch_size=args.batch_size,
        model=args.model,
        suite=args.suite,
    )
    print(render_flame(report))
    if args.json_out is not None:
        out = Path(args.json_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"report written to {out}", file=sys.stderr)
    return 0


def _parse_metrics(pairs: list[str]) -> dict:
    metrics: dict[str, float | str] = {}
    for pair in pairs:
        key, separator, value = pair.partition("=")
        if not separator or not key:
            raise ValueError(f"--metric expects KEY=VALUE, got {pair!r}")
        try:
            metrics[key] = float(value)
        except ValueError:
            metrics[key] = value
    return metrics


def _cmd_registry(args: argparse.Namespace) -> int:
    from repro.corpus.suites import available_suites
    from repro.registry import (
        ModelRegistry,
        RegistryError,
        load_eval_tables,
        parse_suite_gate,
        run_gate,
    )

    registry = ModelRegistry(args.registry)
    try:
        if args.registry_command == "publish":
            try:
                metrics = _parse_metrics(args.metric)
            except ValueError as error:
                print(str(error), file=sys.stderr)
                return 2
            info = registry.publish(
                args.model,
                args.name,
                train_metrics=metrics,
                corpus_fingerprint=args.corpus_fingerprint,
                parent=args.parent,
            )
            print(
                f"published {args.name}/{info.version} "
                f"(fingerprint {info.fingerprint}, parent {info.parent or '-'})"
            )
            return 0

        if args.registry_command == "promote":
            gate_record = None
            if args.suite and not args.gate:
                print("--suite requires --gate", file=sys.stderr)
                return 2
            if args.gate:
                if args.eval_set is None:
                    print("--gate requires --eval-set", file=sys.stderr)
                    return 2
                try:
                    suite_gates = [parse_suite_gate(text) for text in args.suite]
                except ValueError as error:
                    print(str(error), file=sys.stderr)
                    return 2
                unknown = [
                    gate.suite
                    for gate in suite_gates
                    if gate.suite not in available_suites()
                ]
                if unknown:
                    print(
                        f"unknown suite(s): {', '.join(unknown)} "
                        f"(available: {', '.join(available_suites())})",
                        file=sys.stderr,
                    )
                    return 2
                try:
                    eval_tables = load_eval_tables(args.eval_set)
                except (OSError, ValueError) as error:
                    print(
                        f"cannot load eval set {args.eval_set}: {error}",
                        file=sys.stderr,
                    )
                    return 2
                candidate = Predictor.from_registry(
                    registry, args.name, version=args.version
                )
                incumbent = None
                current = registry.current_version(args.name)
                if current is not None and current != args.version:
                    incumbent = Predictor.from_registry(
                        registry, args.name, version=current
                    )
                result = run_gate(
                    candidate,
                    eval_tables,
                    min_macro_f1=args.min_f1,
                    min_agreement=args.min_agreement,
                    incumbent=incumbent,
                    shadow_agreement=args.shadow_agreement,
                    suite_gates=suite_gates,
                    suite_preset=args.suite_preset,
                    suite_tolerance=args.suite_tolerance,
                )
                agreement = (
                    f"{result.agreement:.3f}" if result.agreement is not None else "n/a"
                )
                print(
                    f"gate: macro F1={result.macro_f1:.3f} "
                    f"(min {args.min_f1:.3f}), agreement={agreement} "
                    f"(min {args.min_agreement:.3f})"
                )
                for suite in result.suites:
                    incumbent_f1 = (
                        f"{suite.incumbent_f1:.3f}"
                        if suite.incumbent_f1 is not None
                        else "n/a"
                    )
                    verdict = "ok" if suite.passed else "FAIL"
                    print(
                        f"gate suite {suite.suite} ({suite.preset}): "
                        f"macro F1={suite.macro_f1:.3f} "
                        f"(floor {suite.min_f1:.3f}, "
                        f"incumbent {incumbent_f1}) {verdict}"
                    )
                gate_record = result.to_dict()
                # Win or lose, the decision is appended to GATE_LOG.json so
                # a refused candidate leaves auditable evidence even though
                # the promotion below never runs.
                registry.record_gate(args.name, args.version, gate_record)
                if not result.passed:
                    for reason in result.reasons:
                        print(f"REFUSED: {reason}", file=sys.stderr)
                    return 1
            info = registry.promote(args.name, args.version, gate=gate_record)
            print(f"promoted {args.name}/{info.version}")
            return 0

        if args.registry_command == "rollback":
            info = registry.rollback(args.name)
            print(f"rolled back {args.name} to {info.version}")
            return 0

        if args.registry_command == "list":
            names = [args.name] if args.name else registry.names()
            if not names:
                print("registry is empty")
                return 0
            for name in names:
                current = registry.current_version(name)
                print(f"{name}:")
                for info in registry.list_versions(name):
                    marker = " *" if info.version == current else "  "
                    metrics = (
                        json.dumps(info.train_metrics, sort_keys=True)
                        if info.train_metrics
                        else "-"
                    )
                    print(
                        f" {marker} {info.version}  parent={info.parent or '-'}  "
                        f"fingerprint={info.fingerprint[:12]}  metrics={metrics}"
                    )
            return 0

        if args.registry_command == "gc":
            removed = registry.gc(args.name, keep_unpromoted=args.keep)
            if removed:
                print(f"removed {', '.join(removed)}")
            else:
                print("nothing to remove")
            return 0
    except RegistryError as error:
        print(f"registry error: {error}", file=sys.stderr)
        return 1
    raise AssertionError(f"unhandled registry command {args.registry_command!r}")


def _cmd_report(args: argparse.Namespace) -> int:
    presets = {
        "tiny": ExperimentConfig.tiny,
        "fast": ExperimentConfig.fast,
        "large": ExperimentConfig.large,
    }
    results = run_main_results(presets[args.preset]())
    print(reporting.format_table1(results))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "train": _cmd_train,
        "evaluate": _cmd_evaluate,
        "suites": _cmd_suites,
        "predict": _cmd_predict,
        "annotate": _cmd_annotate,
        "serve": _cmd_serve,
        "profile": _cmd_profile,
        "registry": _cmd_registry,
        "report": _cmd_report,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
