"""Command line interface.

Subcommands::

    repro-sato generate  --n-tables 500 --out corpus.jsonl
    repro-sato evaluate  --corpus corpus.jsonl --variant Sato --k 3
    repro-sato predict   --corpus corpus.jsonl --csv mytable.csv
    repro-sato report    --preset tiny

``generate`` writes a synthetic corpus, ``evaluate`` cross-validates one
model variant on it, ``predict`` trains the full Sato model on a corpus and
prints per-column predictions for a CSV table, and ``report`` regenerates
the Table 1 summary for a configuration preset.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.corpus import CorpusConfig, CorpusGenerator
from repro.evaluation import evaluate_model_cv
from repro.experiments import ExperimentConfig, reporting, run_main_results
from repro.experiments.pipeline import make_model_factories
from repro.tables import table_from_csv, tables_from_jsonl, tables_to_jsonl

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-sato",
        description="Sato reproduction: semantic type detection in tables",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a synthetic corpus")
    generate.add_argument("--n-tables", type=int, default=500)
    generate.add_argument("--seed", type=int, default=13)
    generate.add_argument("--singleton-rate", type=float, default=0.4)
    generate.add_argument("--out", required=True, help="output JSONL path")

    evaluate = subparsers.add_parser("evaluate", help="cross-validate a model variant")
    evaluate.add_argument("--corpus", required=True, help="corpus JSONL path")
    evaluate.add_argument(
        "--variant",
        choices=["Base", "Sato", "SatoNoStruct", "SatoNoTopic"],
        default="Sato",
    )
    evaluate.add_argument("--k", type=int, default=3)
    evaluate.add_argument("--multi-column-only", action="store_true")
    evaluate.add_argument("--epochs", type=int, default=15)

    predict = subparsers.add_parser("predict", help="predict column types of a CSV table")
    predict.add_argument("--corpus", required=True, help="training corpus JSONL path")
    predict.add_argument("--csv", required=True, help="CSV table to annotate")
    predict.add_argument("--epochs", type=int, default=15)

    report = subparsers.add_parser("report", help="regenerate the Table 1 summary")
    report.add_argument("--preset", choices=["tiny", "fast", "large"], default="tiny")
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    config = CorpusConfig(
        n_tables=args.n_tables, seed=args.seed, singleton_rate=args.singleton_rate
    )
    tables = CorpusGenerator(config).generate()
    count = tables_to_jsonl(tables, args.out)
    print(f"wrote {count} tables to {args.out}")
    return 0


def _experiment_config(epochs: int) -> ExperimentConfig:
    return ExperimentConfig(nn_epochs=epochs)


def _cmd_evaluate(args: argparse.Namespace) -> int:
    tables = tables_from_jsonl(args.corpus)
    if args.multi_column_only:
        tables = [t for t in tables if t.n_columns > 1]
    factories = make_model_factories(_experiment_config(args.epochs))
    result = evaluate_model_cv(
        factories[args.variant], tables, k=args.k, model_name=args.variant
    )
    print(
        f"{args.variant}: macro F1={result.macro_f1:.3f} "
        f"(+/-{result.confidence_interval('macro'):.3f}), "
        f"weighted F1={result.weighted_f1:.3f} "
        f"(+/-{result.confidence_interval('weighted'):.3f})"
    )
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    tables = tables_from_jsonl(args.corpus)
    factories = make_model_factories(_experiment_config(args.epochs))
    model = factories["Sato"]()
    model.fit(tables)
    table = table_from_csv(args.csv)
    predictions = model.predict_table(table)
    for index, (column, prediction) in enumerate(zip(table.columns, predictions)):
        header = column.header or f"column {index}"
        print(f"{header:<24} -> {prediction}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    presets = {
        "tiny": ExperimentConfig.tiny,
        "fast": ExperimentConfig.fast,
        "large": ExperimentConfig.large,
    }
    results = run_main_results(presets[args.preset]())
    print(reporting.format_table1(results))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "evaluate": _cmd_evaluate,
        "predict": _cmd_predict,
        "report": _cmd_report,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
