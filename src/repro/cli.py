"""Command line interface.

Subcommands::

    repro-sato generate  --n-tables 500 --out corpus.jsonl
    repro-sato train     --corpus corpus.jsonl --out model/
    repro-sato predict   --model model/ --csv mytable.csv \
                         --feature-backend vectorized --workers 4
    repro-sato serve     --model model/ --port 8080 \
                         --max-batch-size 32 --max-wait-ms 2 \
                         --model-backend batched
    repro-sato evaluate  --corpus corpus.jsonl --variant Sato --k 3
    repro-sato report    --preset tiny

``generate`` writes a synthetic corpus.  ``train`` fits a model variant on a
corpus and saves it as an artifact bundle, after which ``predict --model``
loads the bundle and serves per-column predictions for CSV tables without
retraining.  When ``--model`` is absent, ``predict --corpus`` falls back to
the legacy retrain-per-call behaviour.  ``serve`` exposes a bundle over
HTTP with micro-batched online inference (see ``docs/http_api.md`` and
``docs/operations.md``).  ``evaluate`` cross-validates one model variant
and ``report`` regenerates the Table 1 summary for a configuration preset.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro.corpus import CorpusConfig, CorpusGenerator
from repro.evaluation import evaluate_model_cv
from repro.experiments import ExperimentConfig, reporting, run_main_results
from repro.experiments.pipeline import make_model_factories
from repro.serving import BundleFormatError, Predictor, save_model
from repro.serving.scheduler import (
    DEFAULT_MAX_BATCH_SIZE,
    DEFAULT_MAX_QUEUE,
    DEFAULT_MAX_WAIT_MS,
)
from repro.tables import table_from_csv, tables_from_jsonl, tables_to_jsonl

__all__ = ["main", "build_parser"]

MODEL_VARIANTS = ("Base", "Sato", "SatoNoStruct", "SatoNoTopic")


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-sato",
        description="Sato reproduction: semantic type detection in tables",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a synthetic corpus")
    generate.add_argument("--n-tables", type=int, default=500)
    generate.add_argument("--seed", type=int, default=13)
    generate.add_argument("--singleton-rate", type=float, default=0.4)
    generate.add_argument("--out", required=True, help="output JSONL path")

    train = subparsers.add_parser(
        "train", help="train a model on a corpus and save it as a bundle"
    )
    train.add_argument("--corpus", required=True, help="training corpus JSONL path")
    train.add_argument("--out", required=True, help="output bundle directory")
    train.add_argument("--variant", choices=MODEL_VARIANTS, default="Sato")
    train.add_argument("--epochs", type=int, default=15)
    _add_backend_arguments(train)

    evaluate = subparsers.add_parser("evaluate", help="cross-validate a model variant")
    evaluate.add_argument("--corpus", required=True, help="corpus JSONL path")
    evaluate.add_argument("--variant", choices=MODEL_VARIANTS, default="Sato")
    evaluate.add_argument("--k", type=int, default=3)
    evaluate.add_argument("--multi-column-only", action="store_true")
    evaluate.add_argument("--epochs", type=int, default=15)

    predict = subparsers.add_parser("predict", help="predict column types of CSV tables")
    predict.add_argument(
        "--model", help="saved model bundle directory (serve without retraining)"
    )
    predict.add_argument(
        "--corpus",
        help="training corpus JSONL path (legacy fallback: retrains per call)",
    )
    predict.add_argument(
        "--csv", required=True, nargs="+", help="CSV table(s) to annotate"
    )
    predict.add_argument(
        "--variant",
        choices=MODEL_VARIANTS,
        default=None,
        help="variant for the --corpus fallback (default Sato); bundles fix theirs at train time",
    )
    predict.add_argument(
        "--epochs",
        type=int,
        default=None,
        help="epochs for the --corpus fallback (default 15)",
    )
    _add_backend_arguments(predict)
    _add_model_backend_argument(predict)

    serve = subparsers.add_parser(
        "serve", help="serve a model bundle over HTTP with micro-batching"
    )
    serve.add_argument(
        "--model", required=True, help="saved model bundle directory"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument(
        "--max-batch-size",
        type=int,
        default=DEFAULT_MAX_BATCH_SIZE,
        help="largest number of tables dispatched in one model call",
    )
    serve.add_argument(
        "--max-wait-ms",
        type=float,
        default=DEFAULT_MAX_WAIT_MS,
        help="how long a request may wait for batch companions",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=DEFAULT_MAX_QUEUE,
        help="admission bound on pending requests (excess gets HTTP 429)",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=4096,
        help="capacity of the column-feature LRU cache",
    )
    _add_backend_arguments(serve)
    _add_model_backend_argument(serve)

    report = subparsers.add_parser("report", help="regenerate the Table 1 summary")
    report.add_argument("--preset", choices=["tiny", "fast", "large"], default="tiny")
    return parser


def _add_backend_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--feature-backend",
        choices=("loop", "vectorized"),
        default="vectorized",
        help="featurization backend: vectorized array ops (default) or the "
        "per-value Python reference loop",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="shard featurization batches across N worker processes "
        "(vectorized backend only; 0 = in-process)",
    )


def _add_model_backend_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--model-backend",
        choices=("loop", "batched"),
        default="batched",
        help="batch inference backend: one padded/masked forward + Viterbi "
        "over the whole batch (default) or the per-table reference loop",
    )


def _cmd_generate(args: argparse.Namespace) -> int:
    config = CorpusConfig(
        n_tables=args.n_tables, seed=args.seed, singleton_rate=args.singleton_rate
    )
    tables = CorpusGenerator(config).generate()
    count = tables_to_jsonl(tables, args.out)
    print(f"wrote {count} tables to {args.out}")
    return 0


def _experiment_config(epochs: int) -> ExperimentConfig:
    return ExperimentConfig(nn_epochs=epochs)


def _build_variant(variant: str, epochs: int):
    return make_model_factories(_experiment_config(epochs))[variant]()


def _cmd_train(args: argparse.Namespace) -> int:
    tables = tables_from_jsonl(args.corpus)
    model = _build_variant(args.variant, args.epochs)
    model.set_feature_backend(args.feature_backend, args.workers)
    started = time.perf_counter()
    model.fit(tables)
    elapsed = time.perf_counter() - started
    save_model(model, args.out)
    print(
        f"trained {model.name} on {len(tables)} tables in {elapsed:.1f}s; "
        f"bundle saved to {args.out}"
    )
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    tables = tables_from_jsonl(args.corpus)
    if args.multi_column_only:
        tables = [t for t in tables if t.n_columns > 1]
    factories = make_model_factories(_experiment_config(args.epochs))
    result = evaluate_model_cv(
        factories[args.variant], tables, k=args.k, model_name=args.variant
    )
    print(
        f"{args.variant}: macro F1={result.macro_f1:.3f} "
        f"(+/-{result.confidence_interval('macro'):.3f}), "
        f"weighted F1={result.weighted_f1:.3f} "
        f"(+/-{result.confidence_interval('weighted'):.3f})"
    )
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    if args.model is None and args.corpus is None:
        print("predict requires --model (bundle) or --corpus (retrain fallback)", file=sys.stderr)
        return 2
    if args.model is not None:
        if args.corpus is not None:
            print(
                "--model and --corpus are mutually exclusive: a bundle is "
                "already trained, the corpus would be ignored",
                file=sys.stderr,
            )
            return 2
        if args.variant is not None or args.epochs is not None:
            print(
                "--variant/--epochs only apply to the --corpus retrain fallback; "
                "a bundle's variant is fixed at train time",
                file=sys.stderr,
            )
            return 2
        try:
            predictor = Predictor.from_bundle(
                args.model,
                feature_backend=args.feature_backend,
                workers=args.workers,
                model_backend=args.model_backend,
            )
        except BundleFormatError as error:
            print(f"cannot load model bundle: {error}", file=sys.stderr)
            return 2
    else:
        variant = "Sato" if args.variant is None else args.variant
        epochs = 15 if args.epochs is None else args.epochs
        model = _build_variant(variant, epochs)
        model.set_feature_backend(args.feature_backend, args.workers)
        model.fit(tables_from_jsonl(args.corpus))
        predictor = Predictor(model, model_backend=args.model_backend)
    tables = [table_from_csv(path) for path in args.csv]
    predictions = predictor.predict_tables(tables)
    for path, table, labels in zip(args.csv, tables, predictions):
        if len(args.csv) > 1:
            print(f"# {path}")
        for index, (column, label) in enumerate(zip(table.columns, labels)):
            header = column.header or f"column {index}"
            print(f"{header:<24} -> {label}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.serving.server import ServingServer

    try:
        predictor = Predictor.from_bundle(
            args.model,
            cache_size=args.cache_size,
            feature_backend=args.feature_backend,
            workers=args.workers,
            model_backend=args.model_backend,
        )
    except BundleFormatError as error:
        print(f"cannot load model bundle: {error}", file=sys.stderr)
        return 2

    async def _serve() -> None:
        server = ServingServer(
            predictor,
            host=args.host,
            port=args.port,
            max_batch_size=args.max_batch_size,
            max_wait_ms=args.max_wait_ms,
            max_queue=args.max_queue,
        )
        await server.start()
        # Handle shutdown signals inside the loop: the drain then runs to
        # completion in the main task on every Python version, instead of
        # racing asyncio.run's teardown (which on 3.10 cancels all tasks,
        # dispatch loop included, dropping the queue mid-drain).
        loop = asyncio.get_running_loop()
        shutdown = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, shutdown.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX loops
                pass
        print(
            f"serving {args.model} on http://{args.host}:{server.port} "
            f"(max_batch_size={args.max_batch_size}, "
            f"max_wait_ms={args.max_wait_ms}, max_queue={args.max_queue})"
        )
        try:
            await shutdown.wait()
        finally:
            print("draining...", file=sys.stderr)
            await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass  # signal handler unavailable on this platform; exit plainly
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    presets = {
        "tiny": ExperimentConfig.tiny,
        "fast": ExperimentConfig.fast,
        "large": ExperimentConfig.large,
    }
    results = run_main_results(presets[args.preset]())
    print(reporting.format_table1(results))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "train": _cmd_train,
        "evaluate": _cmd_evaluate,
        "predict": _cmd_predict,
        "serve": _cmd_serve,
        "report": _cmd_report,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
