"""Dirty-data injection.

Real WebTables are messy; these helpers make the synthetic corpus messy in
the same ways (missing values, typos, case and whitespace noise, header
formatting variation) so that models cannot rely on clean value formats.
"""

from __future__ import annotations

import numpy as np

from repro.corpus.config import NoiseConfig
from repro.corpus.rng import pick

__all__ = ["apply_cell_noise", "apply_header_noise", "corrupt_value"]

_MISSING_TOKENS = ["", "", "", "N/A", "-", "null", "unknown"]
_TYPO_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


def corrupt_value(value: str, rng: np.random.Generator) -> str:
    """Introduce a single-character typo (substitute, delete or duplicate)."""
    if not value:
        return value
    position = int(rng.integers(0, len(value)))
    operation = int(rng.integers(0, 3))
    if operation == 0:
        replacement = pick(rng, _TYPO_ALPHABET)
        return value[:position] + replacement + value[position + 1:]
    if operation == 1 and len(value) > 1:
        return value[:position] + value[position + 1:]
    return value[:position] + value[position] + value[position:]


def apply_cell_noise(value: str, noise: NoiseConfig, rng: np.random.Generator) -> str:
    """Apply the configured cell-level noise to a single value."""
    if rng.random() < noise.missing_cell_rate:
        return pick(rng, _MISSING_TOKENS)
    if rng.random() < noise.typo_rate:
        value = corrupt_value(value, rng)
    if rng.random() < noise.case_noise_rate:
        choice = int(rng.integers(0, 3))
        if choice == 0:
            value = value.upper()
        elif choice == 1:
            value = value.lower()
        else:
            value = value.title()
    if rng.random() < noise.whitespace_rate:
        value = f" {value} " if rng.random() < 0.5 else f"{value} "
    return value


def apply_header_noise(header: str, noise: NoiseConfig, rng: np.random.Generator) -> str:
    """Vary the surface form of a header without changing its canonical form.

    The canonicalisation rules of Section 4.1 map all the produced variants
    back to the same label, which is exactly how the paper recovers labels
    from messy real-world headers.
    """
    if rng.random() >= noise.header_noise_rate:
        return header
    # Split camelCase into words first so that re-casing keeps the word
    # boundaries the canonicaliser needs (``birthPlace`` -> ``birth place``).
    spaced = _split_camel_case(header)
    choice = int(rng.integers(0, 4))
    if choice == 0:
        return spaced.upper()
    if choice == 1:
        return spaced.capitalize()
    if choice == 2:
        return f"{spaced} (first occurrence)"
    return f" {spaced} "


def _split_camel_case(text: str) -> str:
    parts: list[str] = []
    current = ""
    for char in text:
        if char.isupper() and current:
            parts.append(current)
            current = char.lower()
        else:
            current += char
    if current:
        parts.append(current)
    return " ".join(parts)
