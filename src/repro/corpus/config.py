"""Corpus generation configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["NoiseConfig", "CorpusConfig"]


@dataclass
class NoiseConfig:
    """Dirty-data injection rates.

    The WebTables corpus the paper uses is noisy: missing cells, typos,
    inconsistent capitalisation and formatting.  These rates control how much
    of that noise the synthetic corpus reproduces.
    """

    #: Probability that a cell is replaced by a missing value.
    missing_cell_rate: float = 0.03
    #: Probability that a cell suffers a single-character typo.
    typo_rate: float = 0.02
    #: Probability that a cell's capitalisation is randomised.
    case_noise_rate: float = 0.05
    #: Probability that surrounding whitespace is added to a cell.
    whitespace_rate: float = 0.02
    #: Probability that a column header receives formatting noise
    #: (upper-casing, parenthesised suffix, extra spaces).  Ground-truth
    #: labels are derived *before* header noise, so noise only affects what a
    #: downstream user would see.
    header_noise_rate: float = 0.3

    def validate(self) -> None:
        """Raise ``ValueError`` when any rate is outside [0, 1]."""
        for name in (
            "missing_cell_rate",
            "typo_rate",
            "case_noise_rate",
            "whitespace_rate",
            "header_noise_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {value}")


@dataclass
class CorpusConfig:
    """Configuration of the synthetic WebTables-style corpus."""

    #: Number of tables to generate (the paper's D has 80K; tests use tens).
    n_tables: int = 1000
    #: Minimum and maximum number of data rows per table.
    min_rows: int = 4
    max_rows: int = 25
    #: Fraction of tables that are singletons (one column only); the paper's
    #: D contains ~59% singletons (80K total vs 33K multi-column).
    singleton_rate: float = 0.4
    #: Random seed.
    seed: int = 13
    #: Noise configuration.
    noise: NoiseConfig = field(default_factory=NoiseConfig)
    #: Dirichlet-ish concentration over the schema weights: 1.0 keeps the
    #: default long-tail, larger values flatten it.
    schema_weight_power: float = 1.0

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent settings."""
        if self.n_tables <= 0:
            raise ValueError("n_tables must be positive")
        if self.min_rows <= 0 or self.max_rows < self.min_rows:
            raise ValueError("row bounds must satisfy 0 < min_rows <= max_rows")
        if not 0.0 <= self.singleton_rate < 1.0:
            raise ValueError("singleton_rate must be in [0, 1)")
        if self.schema_weight_power <= 0:
            raise ValueError("schema_weight_power must be positive")
        self.noise.validate()
